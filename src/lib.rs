//! # SkinnerDB-rs
//!
//! A Rust reproduction of *"SkinnerDB: Regret-Bounded Query Evaluation
//! via Reinforcement Learning"* (Trummer et al., SIGMOD 2019).
//!
//! SkinnerDB maintains no data statistics and no cost or cardinality
//! models. It slices query execution into many small time slices,
//! executes a possibly different join order in each slice, measures
//! progress, and uses the UCT algorithm to converge onto near-optimal
//! left-deep join orders *while the query runs* — with formal regret
//! bounds relative to the optimal join order.
//!
//! Start with the repository docs: `README.md` (crate map, quick start,
//! paper mapping) and `ARCHITECTURE.md` (the slice → reward → UCT loop,
//! `OrderPlan` plan-time specialization, and how the offset-range-
//! partitioned parallel join phase threads through all of it).
//!
//! ## Quick start
//!
//! ```
//! use skinnerdb::prelude::*;
//!
//! // 1. Build a catalog.
//! let mut catalog = Catalog::new();
//! catalog.register(Table::new(
//!     "users",
//!     Schema::new([
//!         ColumnDef::new("id", ValueType::Int),
//!         ColumnDef::new("age", ValueType::Int),
//!     ]),
//!     vec![
//!         Column::from_ints(vec![1, 2, 3]),
//!         Column::from_ints(vec![25, 35, 45]),
//!     ],
//! ).unwrap());
//! catalog.register(Table::new(
//!     "orders",
//!     Schema::new([
//!         ColumnDef::new("user_id", ValueType::Int),
//!         ColumnDef::new("amount", ValueType::Int),
//!     ]),
//!     vec![
//!         Column::from_ints(vec![1, 1, 3]),
//!         Column::from_ints(vec![10, 20, 30]),
//!     ],
//! ).unwrap());
//!
//! // 2. Parse SQL.
//! let query = parse(
//!     "SELECT u.age, SUM(o.amount) AS total \
//!      FROM users u, orders o \
//!      WHERE u.id = o.user_id AND u.age > 20 \
//!      GROUP BY u.age ORDER BY total DESC",
//!     &catalog,
//!     &UdfRegistry::new(),
//! ).unwrap();
//!
//! // 3. Execute with Skinner-C (regret-bounded, learning join orders
//! //    during execution).
//! let db = SkinnerDB::skinner_c(SkinnerCConfig::default());
//! let result = db.execute(&query);
//! assert_eq!(result.table.num_rows(), 2);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`storage`] | column store, catalog, hash indexes |
//! | [`query`] | expressions, UDFs, SQL parser, join graphs |
//! | [`uct`] | the UCT bandit-tree learner |
//! | [`engine`] | Skinner-C: specialized multi-way join, three-tier kernel dispatch, parallel partitioned slices, progress sharing (§4.5) |
//! | [`codegen`] | per-query compiled join kernels (§6): shape keys, const-generic kernels, cross-query kernel cache |
//! | [`simdb`] | simulated traditional engines + optimizer + C_out oracle |
//! | [`core`] | Skinner-G/H, pyramid timeouts, post-processing, facade |
//! | [`baselines`] | Eddies, re-optimizer, random orders |
//! | [`workloads`] | JOB-like, TPC-H dbgen-lite, torture + NULL/string + wide/Float benchmarks |
//! | [`knowledge`] | cross-query knowledge store: fingerprinted selectivity/join-edge statistics seeding cold UCT trees |
//! | [`service`] | concurrent query service: sessions, core-budget admission, cross-query learning cache, `skinner-repl` |
//!
//! (`crates/bench` regenerates the paper's tables/figures and records
//! kernel benchmarks; `crates/vendor` holds offline dependency shims.)

#![forbid(unsafe_code)]

pub use skinner_baselines as baselines;
pub use skinner_codegen as codegen;
pub use skinner_core as core;
pub use skinner_engine as engine;
pub use skinner_knowledge as knowledge;
pub use skinner_query as query;
pub use skinner_service as service;
pub use skinner_simdb as simdb;
pub use skinner_storage as storage;
pub use skinner_uct as uct;
pub use skinner_workloads as workloads;

/// Common imports for applications.
pub mod prelude {
    pub use skinner_core::{
        postprocess, run_engine, QueryResult, ResultTable, SkinnerDB, SkinnerGConfig,
        SkinnerHConfig, Variant,
    };
    pub use skinner_engine::{RewardKind, SkinnerC, SkinnerCConfig, SkinnerOutcome};
    pub use skinner_query::{parse, AggFunc, Expr, Query, QueryBuilder, Udf, UdfRegistry};
    pub use skinner_service::{QueryService, ServiceConfig, Session};
    pub use skinner_simdb::exec::ExecOptions;
    pub use skinner_simdb::{AdaptiveEngine, ColEngine, Engine, RowEngine};
    pub use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, Value, ValueType};
}
