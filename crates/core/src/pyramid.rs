//! The pyramid timeout scheme of Skinner-G (§4.3, Algorithm 1).
//!
//! The optimal per-batch timeout is unknown a priori: too low and no batch
//! ever completes, too high and bad join orders waste time. Skinner-G
//! therefore iterates over timeout *levels* (timeout = 2^L abstract
//! units), always choosing "the highest timeout for the next iteration
//! such that the accumulated execution time for that timeout does not
//! exceed time allocated to any lower timeout":
//!
//! `L ← max{L | ∀l < L : n_l ≥ n_L + 2^L}`, then `n_L += 2^L`.
//!
//! Lemma 5.4: the number of levels used is ≤ log2(total time).
//! Lemma 5.5: per-level totals never differ by more than factor two.
//! Both are verified by the tests below (including a property test).

/// Timeout-level allocator implementing the pyramid scheme.
#[derive(Debug, Clone, Default)]
pub struct PyramidTimeouts {
    /// `n[l]` = total units given to level `l` so far.
    n: Vec<u64>,
}

impl PyramidTimeouts {
    /// Fresh allocator.
    pub fn new() -> PyramidTimeouts {
        PyramidTimeouts::default()
    }

    /// Pick the level for the next iteration and charge its 2^L units.
    /// Returns `(level, timeout_units)`.
    pub fn next_timeout(&mut self) -> (usize, u64) {
        // Find the largest L satisfying ∀ l < L: n_l ≥ n_L + 2^L.
        // L is bounded: a fresh level L needs every lower level to hold at
        // least 2^L units, so L never exceeds len(n).
        let mut chosen = 0usize;
        for level in (1..=self.n.len()).rev() {
            let n_level = self.n.get(level).copied().unwrap_or(0);
            let needed = n_level + (1u64 << level);
            if (0..level).all(|l| self.n.get(l).copied().unwrap_or(0) >= needed) {
                chosen = level;
                break;
            }
        }
        if chosen >= self.n.len() {
            self.n.resize(chosen + 1, 0);
        }
        let units = 1u64 << chosen;
        self.n[chosen] += units;
        (chosen, units)
    }

    /// Units charged to each level so far.
    pub fn per_level(&self) -> &[u64] {
        &self.n
    }

    /// Total units charged.
    pub fn total(&self) -> u64 {
        self.n.iter().sum()
    }

    /// Number of levels in use.
    pub fn levels(&self) -> usize {
        self.n.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_iterations_match_algorithm() {
        // Hand-simulated from Algorithm 1:
        // it1 L0(n0=1), it2 L0(n0=2), it3 L1(n1=2), it4 L0, it5 L0,
        // it6 L1(n1=4), it7 L2(n2=4), ...
        let mut p = PyramidTimeouts::new();
        let levels: Vec<usize> = (0..7).map(|_| p.next_timeout().0).collect();
        assert_eq!(levels, vec![0, 0, 1, 0, 0, 1, 2]);
        assert_eq!(p.per_level(), &[4, 4, 4]);
    }

    #[test]
    fn lemma_5_5_factor_two_balance() {
        let mut p = PyramidTimeouts::new();
        for _ in 0..10_000 {
            p.next_timeout();
            let used: Vec<u64> = p.per_level().iter().copied().filter(|&x| x > 0).collect();
            let max = *used.iter().max().unwrap();
            let min = *used.iter().min().unwrap();
            assert!(max <= 2 * min, "levels unbalanced: {:?}", p.per_level());
        }
    }

    #[test]
    fn lemma_5_4_level_count_logarithmic() {
        let mut p = PyramidTimeouts::new();
        for _ in 0..5_000 {
            p.next_timeout();
        }
        let total = p.total();
        let bound = (total as f64).log2().ceil() as usize + 1;
        assert!(
            p.levels() <= bound,
            "{} levels for total {total}",
            p.levels()
        );
    }

    #[test]
    fn timeouts_are_powers_of_two() {
        let mut p = PyramidTimeouts::new();
        for _ in 0..200 {
            let (level, units) = p.next_timeout();
            assert_eq!(units, 1u64 << level);
        }
    }
}
