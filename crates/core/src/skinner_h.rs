//! Skinner-H: the hybrid of traditional optimization and learning (§4.4).
//!
//! "We iteratively execute the query using the plan chosen by the
//! traditional query optimizer, using a timeout of 2^i [...]. In between
//! two traditional optimizer invocations, we execute the learning based
//! algorithm [...] for the same amount of time. We save the state of the
//! UCT search trees between different invocations."
//!
//! Theorem 5.8: compared to pure traditional execution, the hybrid's
//! regret is bounded (≤ 4/5 · n); Theorem 5.7 keeps the learning regret
//! bound within a constant factor. Skinner-H therefore trades a bounded
//! constant overhead on easy queries for robustness on hard ones —
//! exactly the Figure 12 / Figure 9 trade-off.

use skinner_query::Query;
use skinner_simdb::exec::ExecOptions;
use skinner_simdb::Engine;
use skinner_storage::RowId;
use std::time::{Duration, Instant};

use crate::skinner_g::{SkinnerGConfig, SkinnerGSession};

/// Which execution path produced the final result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// The engine's own optimizer plan finished first.
    Traditional,
    /// The learned (Skinner-G) execution finished first.
    Learned,
}

/// Configuration of Skinner-H.
#[derive(Debug, Clone, Copy)]
pub struct SkinnerHConfig {
    /// Skinner-G settings for the learning half.
    pub g: SkinnerGConfig,
    /// Base timeout for the first traditional invocation (doubles each
    /// round).
    pub base_timeout: Duration,
    /// Hard cap on doubling rounds (2^30 × base ≈ forever).
    pub max_rounds: u32,
}

impl Default for SkinnerHConfig {
    fn default() -> Self {
        SkinnerHConfig {
            g: SkinnerGConfig::default(),
            base_timeout: Duration::from_millis(2),
            max_rounds: 40,
        }
    }
}

/// Outcome of a Skinner-H run.
#[derive(Debug)]
pub struct HOutcome {
    /// Result tuples, flat row-major (stride = num tables, FROM order).
    pub tuples: Vec<RowId>,
    /// Number of query tables.
    pub num_tables: usize,
    /// Result tuple count.
    pub result_count: u64,
    /// Which path finished.
    pub source: PlanSource,
    /// Traditional-plan attempts (timed out + the final one, if any).
    pub traditional_attempts: u32,
    /// Learning iterations executed.
    pub learning_iterations: u64,
    /// Total wall time.
    pub wall: Duration,
}

/// Skinner-H driver.
pub struct SkinnerH<'e> {
    engine: &'e dyn Engine,
    cfg: SkinnerHConfig,
}

impl<'e> SkinnerH<'e> {
    /// Bind Skinner-H to an engine.
    pub fn new(engine: &'e dyn Engine, cfg: SkinnerHConfig) -> SkinnerH<'e> {
        SkinnerH { engine, cfg }
    }

    /// Run to completion.
    pub fn run(&self, query: &Query) -> HOutcome {
        let start = Instant::now();
        let m = query.num_tables();
        let mut session = SkinnerGSession::new(self.engine, query, self.cfg.g);
        let mut traditional_attempts = 0u32;
        let mut learning_iterations = 0u64;

        for round in 0..self.cfg.max_rounds {
            let timeout = self.cfg.base_timeout * 2u32.saturating_pow(round);

            // Phase 1: the traditional optimizer plan under a timeout.
            traditional_attempts += 1;
            let opts = ExecOptions {
                deadline: Some(Instant::now() + timeout),
                ..Default::default()
            };
            let out = self.engine.execute(query, &opts);
            if out.completed() {
                return HOutcome {
                    tuples: out.tuples,
                    num_tables: m,
                    result_count: out.result_count,
                    source: PlanSource::Traditional,
                    traditional_attempts,
                    learning_iterations,
                    wall: start.elapsed(),
                };
            }

            // Phase 2: learning for (at least) the same amount of time.
            // UCT trees, batch offsets and partial results persist inside
            // the session across rounds.
            let learn_deadline = Instant::now() + timeout;
            while !session.finished() && Instant::now() < learn_deadline {
                session.step();
                learning_iterations += 1;
            }
            if session.finished() {
                let out = session.outcome();
                return HOutcome {
                    tuples: out.tuples,
                    num_tables: m,
                    result_count: out.result_count,
                    source: PlanSource::Learned,
                    traditional_attempts,
                    learning_iterations,
                    wall: start.elapsed(),
                };
            }
        }

        // Safety valve: run the learning side to completion.
        while !session.finished() {
            session.step();
            learning_iterations += 1;
        }
        let out = session.outcome();
        HOutcome {
            tuples: out.tuples,
            num_tables: m,
            result_count: out.result_count,
            source: PlanSource::Learned,
            traditional_attempts,
            learning_iterations,
            wall: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_simdb::ColEngine;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>| {
            Table::new(
                name,
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(keys)],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..50).map(|i| i % 5).collect()));
        cat.register(mk("b", (0..30).map(|i| i % 5).collect()));
        cat
    }

    fn query(cat: &Catalog) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_col("a.k").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn easy_query_finishes_via_traditional() {
        let cat = catalog();
        let q = query(&cat);
        let engine = ColEngine::new();
        let expected = engine.execute(&q, &ExecOptions::default()).result_count;
        let cfg = SkinnerHConfig {
            base_timeout: Duration::from_millis(50),
            ..Default::default()
        };
        let out = SkinnerH::new(&engine, cfg).run(&q);
        assert_eq!(out.result_count, expected);
        assert_eq!(out.source, PlanSource::Traditional);
        assert_eq!(out.traditional_attempts, 1);
    }

    #[test]
    fn tiny_timeouts_still_terminate_correctly() {
        let cat = catalog();
        let q = query(&cat);
        let engine = ColEngine::new();
        let expected = engine.execute(&q, &ExecOptions::default()).result_count;
        // With a 0ns base timeout the traditional path always times out in
        // round 0; doubling eventually lets one of the two paths finish.
        let cfg = SkinnerHConfig {
            base_timeout: Duration::from_nanos(1),
            ..Default::default()
        };
        let out = SkinnerH::new(&engine, cfg).run(&q);
        assert_eq!(out.result_count, expected);
        assert!(out.traditional_attempts >= 1);
    }
}
