//! The unified SkinnerDB facade.
//!
//! Bundles a variant (Skinner-C / Skinner-G / Skinner-H) with the shared
//! post-processor behind one `execute` call, and provides [`run_engine`]
//! to run a plain simulated engine end-to-end for baseline comparisons.

use crate::postprocess::postprocess;
use crate::result::ResultTable;
use crate::skinner_g::{SkinnerG, SkinnerGConfig};
use crate::skinner_h::{PlanSource, SkinnerH, SkinnerHConfig};
use skinner_engine::{ExecMetrics, RunOptions, SkinnerC, SkinnerCConfig, StopReason};
use skinner_query::{Query, TableId};
use skinner_simdb::exec::ExecOptions;
use skinner_simdb::Engine;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which SkinnerDB variant executes the join phase.
pub enum Variant {
    /// Skinner-C: the customized execution engine (§4.5).
    C(SkinnerCConfig),
    /// Skinner-G on top of a generic engine (§4.3).
    G(Arc<dyn Engine>, SkinnerGConfig),
    /// Skinner-H hybrid on top of a generic engine (§4.4).
    H(Arc<dyn Engine>, SkinnerHConfig),
}

/// Statistics of one query execution.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// End-to-end wall time.
    pub total: Duration,
    /// Join-phase wall time (incl. pre-processing).
    pub join_phase: Duration,
    /// Post-processing wall time.
    pub postprocess: Duration,
    /// Distinct join result tuples (before post-processing).
    pub result_count: u64,
    /// Time slices (C) or engine invocations (G/H).
    pub slices: u64,
    /// Final/learned join order, when available.
    pub final_order: Option<Vec<TableId>>,
    /// Which path finished (H only).
    pub plan_source: Option<PlanSource>,
    /// Measured intermediate-result cardinality (engines only; Skinner-C
    /// has no materialized intermediates by construction).
    pub cout: Option<u64>,
    /// Why the Skinner-C join phase stopped (C only): `Completed`, or
    /// `RowTarget` when LIMIT pushdown ended the join early.
    pub stop: Option<StopReason>,
    /// Served through the service layer's template cache (the query's
    /// normalized template had a live cache entry).
    pub cache_hit: bool,
    /// The execution warm-started from cached learned state (UCT tree
    /// snapshot + pre-bound orders) instead of exploring from scratch.
    pub warm_start: bool,
    /// The execution had no exact-template cache entry but its cold UCT
    /// tree was seeded with cross-query knowledge priors (mutually
    /// exclusive with `warm_start`).
    pub prior_seeded: bool,
    /// Detailed Skinner-C metrics (C only).
    pub metrics: Option<ExecMetrics>,
}

/// A materialized result plus execution statistics.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result table.
    pub table: ResultTable,
    /// Execution statistics.
    pub stats: RunStats,
}

/// SkinnerDB: regret-bounded query evaluation.
pub struct SkinnerDB {
    variant: Variant,
}

impl Default for SkinnerDB {
    fn default() -> Self {
        SkinnerDB::skinner_c(SkinnerCConfig::default())
    }
}

impl SkinnerDB {
    /// Skinner-C instance.
    pub fn skinner_c(cfg: SkinnerCConfig) -> SkinnerDB {
        SkinnerDB {
            variant: Variant::C(cfg),
        }
    }

    /// Skinner-G instance over `engine`.
    pub fn skinner_g(engine: Arc<dyn Engine>, cfg: SkinnerGConfig) -> SkinnerDB {
        SkinnerDB {
            variant: Variant::G(engine, cfg),
        }
    }

    /// Skinner-H instance over `engine`.
    pub fn skinner_h(engine: Arc<dyn Engine>, cfg: SkinnerHConfig) -> SkinnerDB {
        SkinnerDB {
            variant: Variant::H(engine, cfg),
        }
    }

    /// Execute `query` end to end (join phase + post-processing).
    pub fn execute(&self, query: &Query) -> QueryResult {
        let start = Instant::now();
        let (tuples, stride, mut stats) = match &self.variant {
            Variant::C(cfg) => {
                // LIMIT pushdown: when each distinct join tuple maps to
                // exactly one output row, the join phase stops as soon as
                // `limit` tuples exist instead of materializing fully.
                let opts = RunOptions {
                    target_rows: query.join_limit(),
                    ..Default::default()
                };
                let out = SkinnerC::new(*cfg).run_with(query, &opts);
                let stats = RunStats {
                    join_phase: out.metrics.preprocess_time + out.metrics.join_time,
                    result_count: out.result_count,
                    slices: out.metrics.slices,
                    final_order: Some(out.final_order.clone()),
                    stop: Some(out.stop),
                    metrics: Some(out.metrics),
                    ..Default::default()
                };
                (out.tuples, out.num_tables, stats)
            }
            Variant::G(engine, cfg) => {
                let out = SkinnerG::new(engine.as_ref(), *cfg).run(query);
                let stats = RunStats {
                    join_phase: out.wall,
                    result_count: out.result_count,
                    slices: out.iterations,
                    ..Default::default()
                };
                (out.tuples, out.num_tables, stats)
            }
            Variant::H(engine, cfg) => {
                let out = SkinnerH::new(engine.as_ref(), *cfg).run(query);
                let stats = RunStats {
                    join_phase: out.wall,
                    result_count: out.result_count,
                    slices: out.learning_iterations + out.traditional_attempts as u64,
                    plan_source: Some(out.source),
                    ..Default::default()
                };
                (out.tuples, out.num_tables, stats)
            }
        };

        let post_start = Instant::now();
        let table = postprocess(query, &tuples, (tuples.len() / stride.max(1)) as u64);
        stats.postprocess = post_start.elapsed();
        stats.total = start.elapsed();
        QueryResult { table, stats }
    }
}

/// Run a plain engine end to end (its own optimizer, full execution,
/// shared post-processing). The baseline path for every experiment.
pub fn run_engine(engine: &dyn Engine, query: &Query, opts: &ExecOptions) -> QueryResult {
    let start = Instant::now();
    let out = engine.execute(query, opts);
    let join_phase = start.elapsed();
    let post_start = Instant::now();
    let table = postprocess(query, &out.tuples, out.result_count);
    let postprocess_time = post_start.elapsed();
    QueryResult {
        table,
        stats: RunStats {
            total: start.elapsed(),
            join_phase,
            postprocess: postprocess_time,
            result_count: out.result_count,
            slices: 1,
            final_order: Some(out.join_order),
            cout: Some(out.intermediate_cardinality),
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{AggFunc, QueryBuilder};
    use skinner_simdb::{ColEngine, RowEngine};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, Value, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>, vals: Vec<i64>| {
            Table::new(
                name,
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![Column::from_ints(keys), Column::from_ints(vals)],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..40).map(|i| i % 4).collect(), (0..40).collect()));
        cat.register(mk(
            "b",
            (0..20).map(|i| i % 4).collect(),
            (100..120).collect(),
        ));
        cat
    }

    fn agg_query(cat: &Catalog) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        let k = qb.col("a.k").unwrap();
        qb.select_expr(k.clone(), "k");
        qb.select_agg(AggFunc::Count, None, "n");
        qb.group_by(k);
        qb.order_by("k", true);
        qb.build().unwrap()
    }

    #[test]
    fn all_variants_agree_with_engine_baseline() {
        let cat = catalog();
        let q = agg_query(&cat);
        let col = Arc::new(ColEngine::new());
        let baseline = run_engine(col.as_ref(), &q, &ExecOptions::default());
        assert_eq!(baseline.table.num_rows(), 4);
        // each key: 10 a-rows × 5 b-rows = 50
        assert_eq!(baseline.table.rows[0][1], Value::Int(50));

        let c = SkinnerDB::skinner_c(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .execute(&q);
        assert!(c.table.same_rows(&baseline.table), "Skinner-C mismatch");
        assert!(c.stats.final_order.is_some());

        let g = SkinnerDB::skinner_g(col.clone(), SkinnerGConfig::default()).execute(&q);
        assert!(g.table.same_rows(&baseline.table), "Skinner-G mismatch");

        let h = SkinnerDB::skinner_h(col, SkinnerHConfig::default()).execute(&q);
        assert!(h.table.same_rows(&baseline.table), "Skinner-H mismatch");
        assert!(h.stats.plan_source.is_some());
    }

    #[test]
    fn parallel_skinner_c_matches_sequential_end_to_end() {
        // Full pipeline (pre-process → partitioned join → post-process):
        // a parallel join phase must be invisible to the result table,
        // and the per-chunk step accounting must surface in the metrics.
        let cat = catalog();
        let q = agg_query(&cat);
        let seq = SkinnerDB::skinner_c(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .execute(&q);
        let par = SkinnerDB::skinner_c(SkinnerCConfig {
            budget: 50,
            threads: 4,
            ..Default::default()
        })
        .execute(&q);
        assert!(par.table.same_rows(&seq.table), "parallel mismatch");
        let m = par.stats.metrics.as_ref().expect("C metrics");
        assert_eq!(m.join_threads, 4);
        assert!(m.join_chunks >= m.slices);
        assert!(m.steps > 0);
    }

    #[test]
    fn limit_pushdown_stops_join_early() {
        let cat = catalog();
        // Plain projection + LIMIT: eligible for pushdown.
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_col("a.v").unwrap();
        qb.limit(5);
        let q = qb.build().unwrap();
        assert_eq!(q.join_limit(), Some(5));
        let r = SkinnerDB::skinner_c(SkinnerCConfig {
            budget: 16,
            ..Default::default()
        })
        .execute(&q);
        assert_eq!(r.table.num_rows(), 5);
        assert_eq!(r.stats.stop, Some(StopReason::RowTarget));
        // 200 total join tuples exist; the join phase stopped well short.
        assert!(r.stats.result_count < 200);

        // Aggregation disables pushdown: the full join must run.
        let q = agg_query(&cat);
        assert_eq!(q.join_limit(), None);
        let r = SkinnerDB::skinner_c(SkinnerCConfig::default()).execute(&q);
        assert_eq!(r.stats.stop, Some(StopReason::Completed));
        assert_eq!(r.stats.result_count, 200);
    }

    #[test]
    fn row_engine_baseline_matches_col_engine() {
        let cat = catalog();
        let q = agg_query(&cat);
        let a = run_engine(&RowEngine::new(), &q, &ExecOptions::default());
        let b = run_engine(&ColEngine::new(), &q, &ExecOptions::default());
        assert!(a.table.same_rows(&b.table));
        assert!(a.stats.cout.is_some());
    }
}
