//! Post-processing: projection, aggregation, grouping, sorting (§3).
//!
//! The join phase (any variant) produces distinct result tuples as base
//! row ids per table. This module materializes the SELECT list on top:
//! plain expression projection, aggregates (COUNT/SUM/MIN/MAX/AVG) with
//! optional GROUP BY, DISTINCT, ORDER BY, LIMIT — covering every query
//! shape in the paper's benchmarks (JOB uses MIN aggregates, TPC-H adds
//! grouping and ordering).

use crate::result::ResultTable;
use skinner_query::{Agg, AggFunc, Query, SelectItem, TupleContext};
use skinner_storage::table::TableRef;
use skinner_storage::{FxHashMap, RowId, Value};
use std::cmp::Ordering;

/// Hashable normalization of a `Value` for grouping and DISTINCT.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Null,
    Int(i64),
    Float(u64),
    Str(String),
    Date(i64),
    Interval(i64),
}

fn key_of(v: &Value) -> Key {
    match v {
        Value::Null => Key::Null,
        Value::Int(i) => Key::Int(*i),
        // Distinct variants: DATE '1970-01-06' must not group with the
        // integer 5 (Value's own equality keeps them apart too).
        Value::Date(d) => Key::Date(*d),
        Value::Interval(d) => Key::Interval(*d),
        // Normalize -0.0/0.0 and NaN payloads.
        Value::Float(f) => {
            if *f == 0.0 {
                Key::Float(0)
            } else if f.is_nan() {
                Key::Float(u64::MAX)
            } else {
                Key::Float(f.to_bits())
            }
        }
        Value::Str(s) => Key::Str(s.to_string()),
    }
}

/// Aggregate accumulator.
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    SumFloat(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(f64, u64),
}

impl Acc {
    fn new(agg: &Agg) -> Acc {
        match agg.func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::SumFloat(0.0, false),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg(0.0, 0),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            Acc::Count(n) => {
                // COUNT(*) counts rows; COUNT(expr) counts non-NULL.
                match v {
                    None => *n += 1,
                    Some(x) if !x.is_null() => *n += 1,
                    _ => {}
                }
            }
            Acc::SumFloat(s, seen) => {
                if let Some(x) = v {
                    if let Some(f) = x.as_f64() {
                        *s += f;
                        *seen = true;
                    }
                }
            }
            Acc::Min(cur) => {
                if let Some(x) = v {
                    if !x.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| x.sql_cmp(c) == Some(Ordering::Less))
                    {
                        *cur = Some(x.clone());
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(x) = v {
                    if !x.is_null()
                        && cur
                            .as_ref()
                            .is_none_or(|c| x.sql_cmp(c) == Some(Ordering::Greater))
                    {
                        *cur = Some(x.clone());
                    }
                }
            }
            Acc::Avg(s, n) => {
                if let Some(x) = v {
                    if let Some(f) = x.as_f64() {
                        *s += f;
                        *n += 1;
                    }
                }
            }
        }
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n as i64),
            Acc::SumFloat(s, seen) => {
                if *seen {
                    // Integral sums display as integers.
                    if s.fract() == 0.0 && s.abs() < 9e15 {
                        Value::Int(*s as i64)
                    } else {
                        Value::Float(*s)
                    }
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
            Acc::Avg(s, n) => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(s / *n as f64)
                }
            }
        }
    }
}

/// Materialize the final result from distinct join tuples.
///
/// `tuples` is flat row-major with stride `query.num_tables()`; each slot
/// holds a base row id of the corresponding FROM table.
pub fn postprocess(query: &Query, tuples: &[RowId], _result_count: u64) -> ResultTable {
    let tables: Vec<TableRef> = query.tables.iter().map(|b| b.table.clone()).collect();
    let m = query.num_tables().max(1);
    let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
    let grouped = query.has_aggregates() || !query.group_by.is_empty();

    let mut rows: Vec<Vec<Value>> = if grouped {
        aggregate_rows(query, tuples, &tables, m)
    } else {
        tuples
            .chunks_exact(m)
            .map(|tup| project_tuple(query, tup, &tables))
            .collect()
    };

    if query.distinct {
        let mut seen: FxHashMap<Vec<Key>, ()> = FxHashMap::default();
        rows.retain(|row| {
            let k: Vec<Key> = row.iter().map(key_of).collect();
            seen.insert(k, ()).is_none()
        });
    }

    if !query.order_by.is_empty() {
        rows.sort_by(|a, b| {
            for k in &query.order_by {
                let (x, y) = (&a[k.output], &b[k.output]);
                // NULLs last regardless of direction.
                let ord = match (x.is_null(), y.is_null()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (false, true) => Ordering::Less,
                    (false, false) => {
                        let o = x.sql_cmp(y).unwrap_or(Ordering::Equal);
                        if k.asc {
                            o
                        } else {
                            o.reverse()
                        }
                    }
                };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }

    ResultTable { columns, rows }
}

/// Project one join tuple (base row ids in FROM order) into an output
/// row of the SELECT list. Only valid for non-aggregated queries — the
/// building block of both full materialization and streaming delivery
/// (`skinner-service` projects tuples one at a time through this when a
/// consumer stops early).
pub fn project_tuple(query: &Query, tup: &[RowId], tables: &[TableRef]) -> Vec<Value> {
    let ctx = TupleContext { rows: tup, tables };
    query
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, .. } => expr.eval(&ctx),
            SelectItem::Agg { .. } => unreachable!("aggregates go through grouping"),
        })
        .collect()
}

fn aggregate_rows(
    query: &Query,
    tuples: &[RowId],
    tables: &[TableRef],
    m: usize,
) -> Vec<Vec<Value>> {
    // group key → (representative tuple context values for plain exprs,
    // accumulators)
    struct Group {
        first_row: Vec<Value>,
        accs: Vec<Acc>,
    }
    let agg_items: Vec<&Agg> = query
        .select
        .iter()
        .filter_map(|s| match s {
            SelectItem::Agg { agg, .. } => Some(agg),
            _ => None,
        })
        .collect();

    let mut groups: FxHashMap<Vec<Key>, Group> = FxHashMap::default();
    let mut group_order: Vec<Vec<Key>> = Vec::new();

    for tup in tuples.chunks_exact(m) {
        let ctx = TupleContext { rows: tup, tables };
        let gk: Vec<Key> = query
            .group_by
            .iter()
            .map(|e| key_of(&e.eval(&ctx)))
            .collect();
        let group = groups.entry(gk.clone()).or_insert_with(|| {
            group_order.push(gk);
            Group {
                first_row: query
                    .select
                    .iter()
                    .map(|item| match item {
                        SelectItem::Expr { expr, .. } => expr.eval(&ctx),
                        SelectItem::Agg { .. } => Value::Null, // placeholder
                    })
                    .collect(),
                accs: agg_items.iter().map(|a| Acc::new(a)).collect(),
            }
        });
        for (acc, agg) in group.accs.iter_mut().zip(&agg_items) {
            match &agg.arg {
                Some(e) => acc.update(Some(&e.eval(&ctx))),
                None => acc.update(None),
            }
        }
    }

    // Global aggregate over empty input still yields one row.
    if groups.is_empty() && query.group_by.is_empty() && query.has_aggregates() {
        let accs: Vec<Acc> = agg_items.iter().map(|a| Acc::new(a)).collect();
        let mut row = Vec::with_capacity(query.select.len());
        let mut ai = 0;
        for item in &query.select {
            match item {
                SelectItem::Expr { .. } => row.push(Value::Null),
                SelectItem::Agg { .. } => {
                    row.push(accs[ai].finish());
                    ai += 1;
                }
            }
        }
        return vec![row];
    }

    group_order
        .into_iter()
        .map(|gk| {
            let g = &groups[&gk];
            let mut row = Vec::with_capacity(query.select.len());
            let mut ai = 0;
            for (i, item) in query.select.iter().enumerate() {
                match item {
                    SelectItem::Expr { .. } => row.push(g.first_row[i].clone()),
                    SelectItem::Agg { .. } => {
                        row.push(g.accs[ai].finish());
                        ai += 1;
                    }
                }
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{AggFunc, Expr, QueryBuilder};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "sales",
                Schema::new([
                    ColumnDef::new("region", ValueType::Str),
                    ColumnDef::new("amount", ValueType::Int),
                ]),
                vec![
                    Column::from_strs(["east", "west", "east", "west", "east"]),
                    Column::from_ints(vec![10, 20, 30, 40, 50]),
                ],
            )
            .unwrap(),
        );
        cat
    }

    /// Join tuples = all 5 rows of the single table.
    fn all_tuples() -> Vec<RowId> {
        vec![0, 1, 2, 3, 4]
    }

    #[test]
    fn plain_projection() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("sales").unwrap();
        let amt = qb.col("sales.amount").unwrap();
        qb.select_expr(amt.clone().mul(Expr::lit(2)), "double");
        let q = qb.build().unwrap();
        let t = postprocess(&q, &all_tuples(), 5);
        assert_eq!(t.columns, vec!["double"]);
        assert_eq!(t.rows[0], vec![Value::Int(20)]);
        assert_eq!(t.num_rows(), 5);
    }

    #[test]
    fn group_by_with_aggregates() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("sales").unwrap();
        let region = qb.col("sales.region").unwrap();
        let amount = qb.col("sales.amount").unwrap();
        qb.select_expr(region.clone(), "region");
        qb.select_agg(AggFunc::Sum, Some(amount.clone()), "total");
        qb.select_agg(AggFunc::Count, None, "n");
        qb.select_agg(AggFunc::Avg, Some(amount.clone()), "avg");
        qb.select_agg(AggFunc::Min, Some(amount.clone()), "lo");
        qb.select_agg(AggFunc::Max, Some(amount), "hi");
        qb.group_by(region);
        qb.order_by("region", true);
        let q = qb.build().unwrap();
        let t = postprocess(&q, &all_tuples(), 5);
        assert_eq!(t.num_rows(), 2);
        // east: 10+30+50=90, n=3, avg=30, min=10, max=50
        assert_eq!(
            t.rows[0],
            vec![
                Value::str("east"),
                Value::Int(90),
                Value::Int(3),
                Value::Float(30.0),
                Value::Int(10),
                Value::Int(50)
            ]
        );
        assert_eq!(t.rows[1][1], Value::Int(60));
    }

    #[test]
    fn global_aggregate_empty_input() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("sales").unwrap();
        let amount = qb.col("sales.amount").unwrap();
        qb.select_agg(AggFunc::Count, None, "n");
        qb.select_agg(AggFunc::Sum, Some(amount), "total");
        let q = qb.build().unwrap();
        let t = postprocess(&q, &[], 0);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.rows[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn distinct_and_limit() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("sales").unwrap();
        qb.select_col("sales.region").unwrap();
        qb.distinct();
        let q = qb.build().unwrap();
        let t = postprocess(&q, &all_tuples(), 5);
        assert_eq!(t.num_rows(), 2);

        let mut qb = QueryBuilder::new(&cat);
        qb.table("sales").unwrap();
        qb.select_col("sales.amount").unwrap();
        qb.limit(3);
        let q = qb.build().unwrap();
        let t = postprocess(&q, &all_tuples(), 5);
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn order_by_desc_with_nulls_last() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("sales").unwrap();
        qb.select_col("sales.amount").unwrap();
        qb.order_by("amount", false);
        let q = qb.build().unwrap();
        let t = postprocess(&q, &all_tuples(), 5);
        let vals: Vec<i64> = t.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![50, 40, 30, 20, 10]);
    }

    #[test]
    fn count_expr_skips_nulls() {
        let mut cat = Catalog::new();
        let mut b = skinner_storage::column::ColumnBuilder::new(ValueType::Int);
        b.push(&Value::Int(1));
        b.push(&Value::Null);
        b.push(&Value::Int(3));
        cat.register(
            Table::new(
                "t",
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![b.finish()],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table("t").unwrap();
        let x = qb.col("t.x").unwrap();
        qb.select_agg(AggFunc::Count, Some(x), "n");
        let q = qb.build().unwrap();
        let t = postprocess(&q, &[0, 1, 2], 3);
        assert_eq!(t.rows[0], vec![Value::Int(2)]);
    }
}
