//! Materialized query results.

use skinner_storage::Value;
use std::fmt;

/// A fully materialized query result: named columns, value rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Output column names (from the SELECT list).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultTable {
    /// Empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> ResultTable {
        ResultTable {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Rows sorted canonically (for order-insensitive comparisons in
    /// tests and experiment validation).
    pub fn canonical_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let ord = x
                    .sql_cmp(y)
                    .unwrap_or_else(|| x.is_null().cmp(&y.is_null()));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    /// True if both results contain the same multiset of rows.
    pub fn same_rows(&self, other: &ResultTable) -> bool {
        self.num_rows() == other.num_rows() && self.canonical_rows() == other.canonical_rows()
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in self.rows.iter().take(20) {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.rows.len() > 20 {
            writeln!(f, "... ({} rows total)", self.rows.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_rows_order_insensitive() {
        let a = ResultTable {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let b = ResultTable {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert!(a.same_rows(&b));
        let c = ResultTable {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(2)]],
        };
        assert!(!a.same_rows(&c));
    }

    #[test]
    fn display_truncates() {
        let t = ResultTable {
            columns: vec!["v".into()],
            rows: (0..30).map(|i| vec![Value::Int(i)]).collect(),
        };
        let s = t.to_string();
        assert!(s.contains("30 rows total"));
    }
}
