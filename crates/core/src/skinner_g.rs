//! Skinner-G: regret-bounded evaluation on a generic engine (§4.3,
//! Algorithm 1).
//!
//! The engine is a black box with an SQL interface ("this approach can be
//! used on top of existing DBMS without changing a single line of their
//! code"). Skinner-G divides each table into `b` batches, and each
//! iteration asks the engine to join *one batch of the left-most table*
//! with the remaining batches of all other tables under a forced join
//! order and a timeout from the [pyramid scheme](crate::pyramid). Success
//! (batch completed before timeout) earns reward 1, failure reward 0; a
//! separate UCT tree is kept per timeout level so that failures at low
//! timeouts don't poison decisions at higher ones.
//!
//! Timed-out invocations lose all their work — intermediate results
//! cannot be recovered from a black-box engine — which is exactly the
//! overhead Skinner-C's custom engine eliminates.

use skinner_query::{compile_predicates, Query, TableId};
use skinner_simdb::exec::ExecOptions;
use skinner_simdb::{Engine, Prefiltered};
use skinner_storage::{FxHashMap, RowId};
use skinner_uct::{JoinOrderSpace, UctConfig, UctTree};
use std::time::{Duration, Instant};

use crate::pyramid::PyramidTimeouts;

/// Configuration of Skinner-G.
#[derive(Debug, Clone, Copy)]
pub struct SkinnerGConfig {
    /// Number of batches `b` per table.
    pub batches: usize,
    /// Atomic time unit: a level-L timeout is `2^L` units. Real
    /// deployments use tens of milliseconds to seconds; the simulated
    /// engines support much finer units.
    pub unit: Duration,
    /// UCT exploration weight (paper: √2 for Skinner-G).
    pub exploration: f64,
    /// RNG seed.
    pub seed: u64,
    /// Replace UCT selection with uniform-random valid orders (the
    /// Table 5 "Random" ablation).
    pub random_orders: bool,
}

impl Default for SkinnerGConfig {
    fn default() -> Self {
        SkinnerGConfig {
            batches: 10,
            unit: Duration::from_millis(2),
            exploration: std::f64::consts::SQRT_2,
            seed: 0x5EED,
            random_orders: false,
        }
    }
}

/// Final outcome of a Skinner-G run.
#[derive(Debug)]
pub struct GOutcome {
    /// Result tuples, flat row-major (stride = num tables, FROM order).
    pub tuples: Vec<RowId>,
    /// Number of query tables.
    pub num_tables: usize,
    /// Result tuple count.
    pub result_count: u64,
    /// Engine invocations.
    pub iterations: u64,
    /// Invocations that completed before their timeout.
    pub successes: u64,
    /// Timeout levels used.
    pub levels: usize,
    /// Wall time in the driver loop (includes engine time).
    pub wall: Duration,
}

/// Resumable Skinner-G execution state (Skinner-H drives this a few
/// iterations at a time and persists it across its own invocations).
pub struct SkinnerGSession<'e> {
    engine: &'e dyn Engine,
    query: &'e Query,
    cfg: SkinnerGConfig,
    /// Filtered cardinality per table (computed once, Skinner's own
    /// pre-processing step).
    cards: Vec<usize>,
    batch_size: Vec<usize>,
    num_batches: Vec<usize>,
    /// Completed batches per table (the paper's offset vector `o`).
    offsets: Vec<usize>,
    pyramid: PyramidTimeouts,
    trees: FxHashMap<usize, UctTree<JoinOrderSpace>>,
    space: JoinOrderSpace,
    tuples: Vec<RowId>,
    iterations: u64,
    successes: u64,
    finished: bool,
    started: Instant,
    rng: rand::rngs::SmallRng,
}

impl<'e> SkinnerGSession<'e> {
    /// Start a session (runs Skinner's pre-processing to size batches).
    pub fn new(
        engine: &'e dyn Engine,
        query: &'e Query,
        cfg: SkinnerGConfig,
    ) -> SkinnerGSession<'e> {
        let preds = compile_predicates(query);
        let pre = Prefiltered::compute(query, &preds);
        let m = query.num_tables();
        let cards: Vec<usize> = (0..m).map(|t| pre.card(t)).collect();
        let batch_size: Vec<usize> = cards
            .iter()
            .map(|&c| c.div_ceil(cfg.batches).max(1))
            .collect();
        let num_batches: Vec<usize> = cards
            .iter()
            .zip(&batch_size)
            .map(|(&c, &bs)| c.div_ceil(bs))
            .collect();
        let finished = cards.contains(&0);
        SkinnerGSession {
            engine,
            query,
            cfg,
            cards,
            batch_size,
            num_batches,
            offsets: vec![0; m],
            pyramid: PyramidTimeouts::new(),
            trees: FxHashMap::default(),
            space: JoinOrderSpace::new(query),
            tuples: Vec::new(),
            iterations: 0,
            successes: 0,
            finished,
            started: Instant::now(),
            rng: {
                use rand::SeedableRng;
                rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0xDA7A)
            },
        }
    }

    /// Has some table been fully processed (query result complete)?
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Distinct result tuples accumulated so far.
    pub fn result_count(&self) -> u64 {
        (self.tuples.len() / self.query.num_tables().max(1)) as u64
    }

    /// Execute one iteration of Algorithm 1. Returns the wall time spent.
    pub fn step(&mut self) -> Duration {
        if self.finished {
            return Duration::ZERO;
        }
        let step_start = Instant::now();
        self.iterations += 1;

        // Select timeout level via the pyramid scheme.
        let (level, units) = self.pyramid.next_timeout();
        let timeout = self.cfg.unit * units as u32;

        // Per-level UCT tree (or uniform-random selection for the
        // Table 5 ablation).
        let order = if self.cfg.random_orders {
            use rand::Rng;
            use skinner_uct::SearchSpace;
            let mut path = Vec::with_capacity(self.space.depth());
            while path.len() < self.space.depth() {
                let actions = self.space.actions(&path);
                path.push(actions[self.rng.gen_range(0..actions.len())]);
            }
            path
        } else {
            let cfg = &self.cfg;
            let space = &self.space;
            self.trees
                .entry(level)
                .or_insert_with(|| {
                    UctTree::new(
                        space.clone(),
                        UctConfig {
                            exploration: cfg.exploration,
                            seed: cfg.seed ^ (level as u64).wrapping_mul(0x9e37),
                        },
                    )
                })
                .choose()
        };

        // Batch ranges: one batch of the left-most table, the remaining
        // batches of every other table.
        let t0 = order[0];
        let mut ranges = Vec::with_capacity(self.query.num_tables());
        for t in 0..self.query.num_tables() {
            let lo = self.offsets[t] * self.batch_size[t];
            if t == t0 {
                ranges.push(lo..lo + self.batch_size[t]);
            } else {
                ranges.push(lo..usize::MAX);
            }
        }

        let opts = ExecOptions {
            join_order: Some(order.clone()),
            deadline: Some(Instant::now() + timeout),
            ranges: Some(ranges),
            ..Default::default()
        };
        let out = self.engine.execute(self.query, &opts);

        let reward = if out.completed() { 1.0 } else { 0.0 };
        if out.completed() {
            self.successes += 1;
            self.tuples.extend(out.tuples);
            self.offsets[t0] += 1;
            if self.offsets[t0] >= self.num_batches[t0] {
                self.finished = true;
            }
        }
        if !self.cfg.random_orders {
            if let Some(tree) = self.trees.get_mut(&level) {
                tree.update(&order, reward);
            }
        }
        step_start.elapsed()
    }

    /// Finish into an outcome (callable any time; `finished` tells
    /// whether the result is complete).
    pub fn outcome(self) -> GOutcome {
        let m = self.query.num_tables();
        GOutcome {
            result_count: (self.tuples.len() / m.max(1)) as u64,
            tuples: self.tuples,
            num_tables: m,
            iterations: self.iterations,
            successes: self.successes,
            levels: self.pyramid.levels(),
            wall: self.started.elapsed(),
        }
    }

    /// Filtered cardinalities (exposed for tests).
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// The most promising join order learned so far (from the highest
    ///-level tree with any visits).
    pub fn best_order(&mut self) -> Option<Vec<TableId>> {
        let level = *self.trees.keys().max()?;
        Some(self.trees.get_mut(&level)?.best_path())
    }
}

/// One-shot Skinner-G runner (Algorithm 1's outer loop).
pub struct SkinnerG<'e> {
    engine: &'e dyn Engine,
    cfg: SkinnerGConfig,
}

impl<'e> SkinnerG<'e> {
    /// Bind Skinner-G to an engine.
    pub fn new(engine: &'e dyn Engine, cfg: SkinnerGConfig) -> SkinnerG<'e> {
        SkinnerG { engine, cfg }
    }

    /// Run to completion.
    pub fn run(&self, query: &Query) -> GOutcome {
        let mut session = SkinnerGSession::new(self.engine, query, self.cfg);
        while !session.finished() {
            session.step();
        }
        session.outcome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_simdb::{ColEngine, RowEngine};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>| {
            Table::new(
                name,
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(keys)],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..60).map(|i| i % 6).collect()));
        cat.register(mk("b", (0..40).map(|i| i % 6).collect()));
        cat.register(mk("c", (0..20).map(|i| i % 6).collect()));
        cat
    }

    fn query(cat: &Catalog) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        qb.table("c").unwrap();
        let j1 = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let j2 = qb.col("b.k").unwrap().eq(qb.col("c.k").unwrap());
        qb.filter(j1);
        qb.filter(j2);
        qb.select_col("a.k").unwrap();
        qb.build().unwrap()
    }

    fn expected(cat: &Catalog, q: &Query) -> u64 {
        let _ = cat;
        let out = ColEngine::new().execute(q, &ExecOptions::default());
        out.result_count
    }

    #[test]
    fn skinner_g_complete_and_correct_on_col_engine() {
        let cat = catalog();
        let q = query(&cat);
        let want = expected(&cat, &q);
        let engine = ColEngine::new();
        let out = SkinnerG::new(&engine, SkinnerGConfig::default()).run(&q);
        assert_eq!(out.result_count, want);
        assert!(out.iterations >= out.successes);
        assert!(out.successes > 0);
        // Theorem 5.1: no duplicates across batches.
        let mut set = std::collections::HashSet::new();
        for t in out.tuples.chunks_exact(3) {
            assert!(set.insert(t.to_vec()), "duplicate tuple {t:?}");
        }
    }

    #[test]
    fn skinner_g_on_row_engine() {
        let cat = catalog();
        let q = query(&cat);
        let want = expected(&cat, &q);
        let engine = RowEngine::new();
        let out = SkinnerG::new(&engine, SkinnerGConfig::default()).run(&q);
        assert_eq!(out.result_count, want);
    }

    #[test]
    fn session_is_resumable() {
        let cat = catalog();
        let q = query(&cat);
        let want = expected(&cat, &q);
        let engine = ColEngine::new();
        let mut session = SkinnerGSession::new(&engine, &q, SkinnerGConfig::default());
        // drive manually in small bursts
        let mut bursts = 0;
        while !session.finished() {
            for _ in 0..3 {
                if session.finished() {
                    break;
                }
                session.step();
            }
            bursts += 1;
            assert!(bursts < 10_000, "non-terminating");
        }
        let out = session.outcome();
        assert_eq!(out.result_count, want);
    }

    #[test]
    fn empty_table_finishes_immediately() {
        let mut cat = catalog();
        cat.register(
            Table::new(
                "empty",
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(vec![])],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("empty").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("empty.k").unwrap());
        qb.filter(j);
        qb.select_col("a.k").unwrap();
        let q = qb.build().unwrap();
        let engine = ColEngine::new();
        let out = SkinnerG::new(&engine, SkinnerGConfig::default()).run(&q);
        assert_eq!(out.result_count, 0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn best_order_available_after_steps() {
        let cat = catalog();
        let q = query(&cat);
        let engine = ColEngine::new();
        let mut session = SkinnerGSession::new(&engine, &q, SkinnerGConfig::default());
        assert!(session.best_order().is_none());
        session.step();
        let order = session.best_order().expect("order after first step");
        let mut sorted = order;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
