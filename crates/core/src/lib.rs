//! # skinner-core
//!
//! The SkinnerDB facade: regret-bounded query evaluation in all three
//! variants of the paper, plus the shared post-processor.
//!
//! * [`SkinnerC`](skinner_engine::SkinnerC) (re-exported) — the custom
//!   engine (§4.5), wrapped here with post-processing.
//! * [`SkinnerG`] (§4.3, Algorithm 1) — join order learning on top of a
//!   *generic* engine treated as a black box with forced join orders,
//!   batches, and timeouts allocated by the [`pyramid`] scheme.
//! * [`SkinnerH`] (§4.4) — the hybrid: alternates doubling-timeout runs
//!   of the engine's own optimizer plan with Skinner-G learning slices.
//! * [`postprocess`](mod@postprocess) — grouping, aggregation, sorting,
//!   DISTINCT, LIMIT (§3: "post-processing involves grouping,
//!   aggregation, and sorting").
//!
//! The [`SkinnerDB`] type bundles a variant choice with post-processing
//! behind one `execute(query) -> QueryResult` call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod postprocess;
pub mod pyramid;
pub mod result;
pub mod skinner_db;
pub mod skinner_g;
pub mod skinner_h;

pub use postprocess::{postprocess, project_tuple};
pub use pyramid::PyramidTimeouts;
pub use result::ResultTable;
pub use skinner_db::{run_engine, QueryResult, RunStats, SkinnerDB, Variant};
pub use skinner_g::{GOutcome, SkinnerG, SkinnerGConfig, SkinnerGSession};
pub use skinner_h::{HOutcome, PlanSource, SkinnerH, SkinnerHConfig};
