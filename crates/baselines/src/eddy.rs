//! Eddies: per-tuple adaptive join routing.
//!
//! Implements the reinforcement-learning eddy of Tzoumas et al. \[47\] as
//! the paper uses it: tuples of a driver table are routed through joins
//! one at a time, and the routing policy learns per-state fanout
//! estimates (expected number of matches when extending a partial tuple
//! with a given table), choosing greedily with ε-exploration.
//!
//! Two properties the paper criticizes are faithfully reproduced:
//!
//! * routing decisions are *per tuple* and never revisited — a partial
//!   tuple created along a bad join path is carried to completion, its
//!   cost is sunk ("they never discard intermediate results");
//! * there are no regret guarantees — early unlucky estimates can lock
//!   the policy into bad routes for many tuples.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_engine::PreparedQuery;
use skinner_query::{JoinGraph, Query, TableId, TableSet};
use skinner_storage::{FxHashMap, FxHashSet, RowId};
use std::time::Instant;

/// Eddy configuration.
#[derive(Debug, Clone, Copy)]
pub struct EddyConfig {
    /// Exploration probability for routing choices.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EddyConfig {
    fn default() -> Self {
        EddyConfig {
            epsilon: 0.1,
            seed: 0xEDD1,
        }
    }
}

/// Outcome of an eddy run.
#[derive(Debug)]
pub struct EddyOutcome {
    /// Result tuples, flat row-major (stride = num tables, FROM order).
    pub tuples: Vec<RowId>,
    /// Number of query tables.
    pub num_tables: usize,
    /// Result count.
    pub result_count: u64,
    /// Join predicate evaluations performed (effort metric for Fig. 11).
    pub predicate_evals: u64,
    /// Wall time.
    pub wall: std::time::Duration,
}

/// Routing statistics for one (partial-tuple set, candidate table) pair.
#[derive(Debug, Default, Clone, Copy)]
struct RouteStat {
    tries: u64,
    fanout_sum: u64,
}

impl RouteStat {
    fn mean_fanout(&self) -> f64 {
        if self.tries == 0 {
            1.0 // optimistic default
        } else {
            self.fanout_sum as f64 / self.tries as f64
        }
    }
}

/// The eddy operator.
pub struct Eddy {
    cfg: EddyConfig,
}

impl Default for Eddy {
    fn default() -> Self {
        Eddy::new(EddyConfig::default())
    }
}

impl Eddy {
    /// Eddy with the given configuration.
    pub fn new(cfg: EddyConfig) -> Eddy {
        Eddy { cfg }
    }

    /// Execute `query`.
    pub fn run(&self, query: &Query) -> EddyOutcome {
        let start = Instant::now();
        let pq = PreparedQuery::new(query, true, 1);
        let m = query.num_tables();
        let graph = JoinGraph::from_query(query);
        let mut rng = SmallRng::seed_from_u64(self.cfg.seed);
        let mut routes: FxHashMap<(u64, TableId), RouteStat> = FxHashMap::default();
        let mut results: FxHashSet<Box<[RowId]>> = FxHashSet::default();
        let mut predicate_evals = 0u64;

        if pq.any_empty() || m == 0 {
            return EddyOutcome {
                tuples: Vec::new(),
                num_tables: m,
                result_count: 0,
                predicate_evals,
                wall: start.elapsed(),
            };
        }

        // Driver: the smallest filtered table (the stream a real eddy
        // would consume fastest).
        let driver = (0..m)
            .min_by_key(|&t| pq.cards[t])
            .expect("at least one table");

        // Per-position candidate matches are found via the prepared hash
        // indexes where possible, else by scanning.
        let mut rows = vec![0u32; m];
        let mut stack: Vec<(TableSet, usize)> = Vec::new(); // (set, depth marker)
        let _ = &mut stack;

        for pos in 0..pq.cards[driver] {
            rows[driver] = pq.base_row(driver, pos);
            let set = TableSet::single(driver);
            self.route(
                &pq,
                &graph,
                query,
                set,
                &mut rows,
                &mut routes,
                &mut rng,
                &mut results,
                &mut predicate_evals,
            );
        }

        let result_count = results.len() as u64;
        let mut tuples = Vec::with_capacity(results.len() * m);
        for t in &results {
            tuples.extend_from_slice(t);
        }
        EddyOutcome {
            tuples,
            num_tables: m,
            result_count,
            predicate_evals,
            wall: start.elapsed(),
        }
    }

    /// Extend the partial tuple in `rows` (tables in `set` fixed) to all
    /// completions, choosing the next table per partial tuple.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &self,
        pq: &PreparedQuery,
        graph: &JoinGraph,
        query: &Query,
        set: TableSet,
        rows: &mut Vec<u32>,
        routes: &mut FxHashMap<(u64, TableId), RouteStat>,
        rng: &mut SmallRng,
        results: &mut FxHashSet<Box<[RowId]>>,
        predicate_evals: &mut u64,
    ) {
        let m = query.num_tables();
        if set.len() == m {
            results.insert(rows.as_slice().into());
            return;
        }
        // Candidate next tables (join-graph rule shared with everyone).
        let eligible: Vec<TableId> = graph.eligible_next(set).iter().collect();
        let next = if eligible.len() == 1 {
            eligible[0]
        } else if rng.gen_bool(self.cfg.epsilon) {
            eligible[rng.gen_range(0..eligible.len())]
        } else {
            *eligible
                .iter()
                .min_by(|&&a, &&b| {
                    let fa = routes.entry((set.0, a)).or_default().mean_fanout();
                    let fb = routes.entry((set.0, b)).or_default().mean_fanout();
                    fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty eligible")
        };

        let mut with_next = set;
        with_next.insert(next);
        // Applicable predicates when adding `next`.
        let applicable: Vec<_> = pq
            .join_preds
            .iter()
            .filter(|p| {
                let ts = p.tables();
                ts.contains(next) && ts.is_subset_of(with_next)
            })
            .collect();

        // Find matches: use a hash index keyed by an equi predicate when
        // one connects `next` to the fixed tables.
        let mut jump: Option<(usize, TableId, usize)> = None;
        for p in &applicable {
            if let Some((a, b)) = p.expr().as_equi_join() {
                let (tc, oc) = if a.table == next { (a, b) } else { (b, a) };
                if tc.table == next
                    && set.contains(oc.table)
                    && pq.indexes.contains_key(&(next, tc.column))
                    // Same key-convention guard as the engine's planner:
                    // Int = Float widening is true with unequal keys.
                    && pq.tables[next]
                        .column(tc.column)
                        .join_key_compatible(pq.tables[oc.table].column(oc.column))
                {
                    jump = Some((tc.column, oc.table, oc.column));
                    break;
                }
            }
        }

        let mut fanout = 0u64;
        match jump {
            Some((col, src_t, src_c)) => {
                let key = pq.tables[src_t]
                    .column(src_c)
                    .join_key(rows[src_t] as usize);
                if let Some(k) = key {
                    // Clone the posting list to keep borrows simple; lists
                    // are short for selective joins.
                    let postings: Vec<u32> = pq.indexes[&(next, col)].probe(k).to_vec();
                    for p in postings {
                        rows[next] = pq.base_row(next, p);
                        *predicate_evals += applicable.len() as u64;
                        if applicable.iter().all(|pr| pr.eval(rows, &pq.tables)) {
                            fanout += 1;
                            self.route(
                                pq,
                                graph,
                                query,
                                with_next,
                                rows,
                                routes,
                                rng,
                                results,
                                predicate_evals,
                            );
                        }
                    }
                }
            }
            None => {
                for p in 0..pq.cards[next] {
                    rows[next] = pq.base_row(next, p);
                    *predicate_evals += applicable.len() as u64;
                    if applicable.iter().all(|pr| pr.eval(rows, &pq.tables)) {
                        fanout += 1;
                        self.route(
                            pq,
                            graph,
                            query,
                            with_next,
                            rows,
                            routes,
                            rng,
                            results,
                            predicate_evals,
                        );
                    }
                }
            }
        }

        let stat = routes.entry((set.0, next)).or_default();
        stat.tries += 1;
        stat.fanout_sum += fanout;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_simdb::exec::ExecOptions;
    use skinner_simdb::{ColEngine, Engine};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>| {
            Table::new(
                name,
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(keys)],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..30).map(|i| i % 3).collect()));
        cat.register(mk("b", (0..20).map(|i| i % 3).collect()));
        cat.register(mk("c", (0..10).map(|i| i % 3).collect()));
        cat
    }

    fn query(cat: &Catalog) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        qb.table("c").unwrap();
        let j1 = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let j2 = qb.col("b.k").unwrap().eq(qb.col("c.k").unwrap());
        qb.filter(j1);
        qb.filter(j2);
        qb.select_col("a.k").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn eddy_is_correct() {
        let cat = catalog();
        let q = query(&cat);
        let expected = ColEngine::new()
            .execute(&q, &ExecOptions::default())
            .result_count;
        let out = Eddy::default().run(&q);
        assert_eq!(out.result_count, expected);
        assert!(out.predicate_evals > 0);
    }

    #[test]
    fn eddy_deterministic_given_seed() {
        let cat = catalog();
        let q = query(&cat);
        let a = Eddy::new(EddyConfig {
            epsilon: 0.2,
            seed: 42,
        })
        .run(&q);
        let b = Eddy::new(EddyConfig {
            epsilon: 0.2,
            seed: 42,
        })
        .run(&q);
        assert_eq!(a.result_count, b.result_count);
        assert_eq!(a.predicate_evals, b.predicate_evals);
    }

    #[test]
    fn empty_input() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let f = qb.col("a.k").unwrap().gt(skinner_query::Expr::lit(100));
        qb.filter(j);
        qb.filter(f);
        qb.select_col("a.k").unwrap();
        let q = qb.build().unwrap();
        let out = Eddy::default().run(&q);
        assert_eq!(out.result_count, 0);
    }
}
