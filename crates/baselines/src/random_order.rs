//! Random join-order selection: the Table 5 ablation.
//!
//! Uses Skinner-C's full machinery (slicing, state backup/restore,
//! progress sharing) but picks a uniformly random valid join order each
//! slice instead of consulting UCT. Table 5 of the paper shows this is
//! 10–12× slower on the join order benchmark — "join order learning is
//! crucial for performance".

use skinner_engine::{OrderPolicy, SkinnerC, SkinnerCConfig, SkinnerOutcome};
use skinner_query::Query;

/// Run Skinner-C with the random order policy.
pub fn run_random_skinner(query: &Query, mut cfg: SkinnerCConfig) -> SkinnerOutcome {
    cfg.policy = OrderPolicy::Random;
    SkinnerC::new(cfg).run(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    #[test]
    fn random_matches_uct_result() {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>| {
            Table::new(
                name,
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(keys)],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..40).map(|i| i % 4).collect()));
        cat.register(mk("b", (0..20).map(|i| i % 4).collect()));
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_col("a.k").unwrap();
        let q = qb.build().unwrap();

        let uct = SkinnerC::new(SkinnerCConfig {
            budget: 64,
            ..Default::default()
        })
        .run(&q);
        let rand = run_random_skinner(
            &q,
            SkinnerCConfig {
                budget: 64,
                ..Default::default()
            },
        );
        assert_eq!(uct.result_count, rand.result_count);
    }
}
