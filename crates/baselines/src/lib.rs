//! # skinner-baselines
//!
//! The adaptive-processing baselines the paper compares against in its
//! appendix experiments (Figures 9–12):
//!
//! * [`eddy`] — Eddies [Avnur & Hellerstein, SIGMOD'00] with
//!   reinforcement-learning tuple routing [Tzoumas et al.], sharing the
//!   same storage/predicate substrate as Skinner-C,
//! * [`reopt`] — sampling-based re-optimization [Wu et al., SIGMOD'16]:
//!   validate the optimizer's cardinality estimates on a sample, correct
//!   them, and re-optimize before full execution,
//! * [`random_order`] — Skinner-C's slicing machinery with uniform-random
//!   join-order selection instead of UCT (the Table 5 ablation).
//!
//! All baselines count predicate evaluations so Figure 11 can compare
//! optimizers by an engine-independent effort metric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eddy;
pub mod random_order;
pub mod reopt;

pub use eddy::{Eddy, EddyConfig, EddyOutcome};
pub use random_order::run_random_skinner;
pub use reopt::{ReoptConfig, Reoptimizer};
