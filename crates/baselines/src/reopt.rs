//! Sampling-based query re-optimization (Wu et al., SIGMOD 2016).
//!
//! Before committing to a plan, the re-optimizer *validates* the
//! optimizer's cardinality estimates: it executes the candidate plan on a
//! sample of the left-most table, compares the measured per-step
//! cardinalities against the estimates (scaled by the sampling fraction),
//! installs correction factors for the mis-estimated prefixes, and
//! re-optimizes. The loop stops when the plan is stable or after a
//! bounded number of rounds; the final plan executes in full.
//!
//! This repairs *moderate* misestimates well. It inherits the weakness
//! the paper points out for all optimizer-repair methods: when the
//! initial plan is catastrophically wrong (black-box UDFs, extreme
//! correlation), sampling along that plan is itself expensive and the
//! correction signal arrives late (Figures 9/10).

use skinner_query::{compile_predicates, Query, TableSet};
use skinner_simdb::estimator::Estimator;
use skinner_simdb::exec::{run_left_deep, EvalMode, ExecOptions, ExecOutcome, Prefiltered};
use skinner_simdb::optimizer::choose_order_with;
use skinner_simdb::stats::StatsCatalog;

/// Re-optimizer configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReoptConfig {
    /// Fraction of the left-most table sampled per validation run.
    pub sample_fraction: f64,
    /// Maximum validate/re-optimize rounds.
    pub max_rounds: usize,
    /// Estimate/measurement ratio beyond which a step counts as
    /// mis-estimated.
    pub tolerance: f64,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        ReoptConfig {
            sample_fraction: 0.05,
            max_rounds: 3,
            tolerance: 4.0,
        }
    }
}

/// The sampling-based re-optimizer.
pub struct Reoptimizer {
    cfg: ReoptConfig,
}

impl Default for Reoptimizer {
    fn default() -> Self {
        Reoptimizer::new(ReoptConfig::default())
    }
}

impl Reoptimizer {
    /// Re-optimizer with the given configuration.
    pub fn new(cfg: ReoptConfig) -> Reoptimizer {
        Reoptimizer { cfg }
    }

    /// Optimize (with sampling validation), then execute fully.
    /// `opts.join_order` is ignored — choosing the order is the point.
    pub fn run(&self, query: &Query, opts: &ExecOptions) -> ExecOutcome {
        let mut stats = StatsCatalog::new();
        let mut est = Estimator::new(query, &mut stats);
        let preds = compile_predicates(query);
        let pre = Prefiltered::compute(query, &preds);
        let m = query.num_tables();

        let mut order = choose_order_with(query, &est);
        for _round in 0..self.cfg.max_rounds {
            let first = order[0];
            let total = pre.card(first);
            let sample =
                ((total as f64 * self.cfg.sample_fraction).ceil() as usize).clamp(1, total.max(1));
            if total == 0 {
                break;
            }
            let mut ranges = vec![0..usize::MAX; m];
            ranges[first] = 0..sample;
            let sample_opts = ExecOptions {
                join_order: Some(order.clone()),
                ranges: Some(ranges),
                count_only: true,
                deadline: opts.deadline,
                ..Default::default()
            };
            let probe = run_left_deep(query, &pre, &order, EvalMode::Compiled, &sample_opts, false);
            if !probe.completed() {
                break; // deadline hit during sampling: fall through
            }
            // Scale measured step cardinalities up by the sample fraction
            // and install corrections where the estimate is off.
            let scale = total as f64 / sample as f64;
            let mut prefix = TableSet::EMPTY;
            let mut corrected = false;
            for (i, &t) in order.iter().enumerate() {
                prefix.insert(t);
                if i == 0 {
                    continue; // base cardinality is exact
                }
                let measured = probe.step_cards.get(i).copied().unwrap_or(0) as f64 * scale;
                let estimated = est.subset_card(prefix);
                let ratio = (measured.max(1.0) / estimated.max(1.0))
                    .max(estimated.max(1.0) / measured.max(1.0));
                if ratio > self.cfg.tolerance {
                    est.correct_subset(prefix, measured);
                    corrected = true;
                }
            }
            if !corrected {
                break; // estimates validated: plan is trustworthy
            }
            let new_order = choose_order_with(query, &est);
            if new_order == order {
                break; // plan stable under corrected estimates
            }
            order = new_order;
        }

        let final_opts = ExecOptions {
            join_order: Some(order.clone()),
            ..opts.clone()
        };
        run_left_deep(query, &pre, &order, EvalMode::Compiled, &final_opts, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_simdb::{ColEngine, Engine};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    /// Catalog with a correlation trap: the estimator believes `big`
    /// filters to few rows (two correlated predicates), but it actually
    /// keeps many. Sampling reveals the join blow-up.
    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let n = 2000i64;
        let a: Vec<i64> = (0..n).map(|i| i % 10).collect();
        cat.register(
            Table::new(
                "big",
                Schema::new([
                    ColumnDef::new("x", ValueType::Int),
                    ColumnDef::new("y", ValueType::Int),
                    ColumnDef::new("k", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(a.clone()),
                    Column::from_ints(a.clone()), // perfectly correlated
                    Column::from_ints((0..n).map(|i| i % 50).collect()),
                ],
            )
            .unwrap(),
        );
        cat.register(
            Table::new(
                "dim",
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints((0..50).collect())],
            )
            .unwrap(),
        );
        cat
    }

    fn query(cat: &Catalog) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("big").unwrap();
        qb.table("dim").unwrap();
        let j = qb.col("big.k").unwrap().eq(qb.col("dim.k").unwrap());
        let f1 = qb.col("big.x").unwrap().eq(skinner_query::Expr::lit(3));
        let f2 = qb.col("big.y").unwrap().eq(skinner_query::Expr::lit(3));
        qb.filter(j);
        qb.filter(f1);
        qb.filter(f2);
        qb.select_col("big.k").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn reoptimizer_is_correct() {
        let cat = catalog();
        let q = query(&cat);
        let expected = ColEngine::new()
            .execute(&q, &ExecOptions::default())
            .result_count;
        let out = Reoptimizer::default().run(&q, &ExecOptions::default());
        assert!(out.completed());
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn corrections_change_estimates() {
        let cat = catalog();
        let q = query(&cat);
        let mut stats = StatsCatalog::new();
        let mut est = Estimator::new(&q, &mut stats);
        let s: TableSet = [0usize, 1].into_iter().collect();
        let before = est.subset_card(s);
        est.correct_subset(s, before * 10.0);
        let after = est.subset_card(s);
        assert!((after / before - 10.0).abs() < 0.01, "{before} -> {after}");
        // idempotent recalibration
        est.correct_subset(s, before * 10.0);
        assert!((est.subset_card(s) / before - 10.0).abs() < 0.01);
    }
}
