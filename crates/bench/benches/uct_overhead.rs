//! Criterion bench: UCT choose+update cost per slice — the scheduling
//! overhead Skinner-C pays on every time slice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skinner_query::{Expr, Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use skinner_uct::{JoinOrderSpace, SearchSpace, UctConfig, UctTree};

fn chain_query(m: usize) -> (Catalog, Query) {
    let mut cat = Catalog::new();
    for t in 0..m {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(vec![1, 2, 3])],
            )
            .unwrap(),
        );
    }
    let mut qb = QueryBuilder::new(&cat);
    for t in 0..m {
        qb.table(&format!("t{t}")).unwrap();
    }
    for t in 0..m - 1 {
        let j = qb
            .col(&format!("t{t}.k"))
            .unwrap()
            .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
        qb.filter(j);
    }
    qb.select_expr(Expr::col(0, 0), "k");
    let q = qb.build().unwrap();
    (cat, q)
}

fn bench_uct(c: &mut Criterion) {
    let mut group = c.benchmark_group("uct_overhead");
    for &m in &[4usize, 8, 12] {
        let (_cat, q) = chain_query(m);
        group.bench_with_input(BenchmarkId::new("choose_update", m), &m, |b, _| {
            let space = JoinOrderSpace::new(&q);
            assert_eq!(space.depth(), m);
            let mut tree = UctTree::new(space, UctConfig::default());
            // warm the tree to a realistic size
            for _ in 0..500 {
                let p = tree.choose();
                tree.update(&p, 0.5);
            }
            b.iter(|| {
                let p = tree.choose();
                tree.update(&p, 0.7);
                criterion::black_box(tree.num_nodes())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_uct);
criterion_main!(benches);
