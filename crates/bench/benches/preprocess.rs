//! Criterion bench: Skinner-C pre-processing (unary filtering + hash
//! indexing), serial vs. parallel — the Table 2 / Table 6
//! "parallelization" feature.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skinner_engine::PreparedQuery;
use skinner_query::{Expr, Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

fn setup(rows: usize) -> (Catalog, Query) {
    let mut cat = Catalog::new();
    for t in 0..4 {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints((0..rows as i64).map(|i| i % 1000).collect()),
                    Column::from_ints((0..rows as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    let mut qb = QueryBuilder::new(&cat);
    for t in 0..4 {
        qb.table(&format!("t{t}")).unwrap();
    }
    for t in 0..3 {
        let j = qb
            .col(&format!("t{t}.k"))
            .unwrap()
            .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
        qb.filter(j);
        let f = qb
            .col(&format!("t{t}.v"))
            .unwrap()
            .gt(Expr::lit((rows / 4) as i64));
        qb.filter(f);
    }
    qb.select_col("t0.v").unwrap();
    let q = qb.build().unwrap();
    (cat, q)
}

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("preprocess");
    group.sample_size(20);
    let (_cat, q) = setup(50_000);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("filter_and_hash", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let pq = PreparedQuery::new(&q, true, threads);
                    criterion::black_box(pq.cards.clone())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_preprocess);
criterion_main!(benches);
