//! Criterion bench: row vs. column engine join throughput on the same
//! 3-way join — the per-tuple overhead gap that Tables 1/2 exhibit
//! between Postgres(sim) and MonetDB(sim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skinner_query::{Query, QueryBuilder};
use skinner_simdb::exec::ExecOptions;
use skinner_simdb::{ColEngine, Engine, RowEngine};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

fn setup(n: usize) -> (Catalog, Query) {
    let mut cat = Catalog::new();
    let mk = |name: &str, rows: usize, modulo: i64| {
        Table::new(
            name,
            Schema::new([ColumnDef::new("k", ValueType::Int)]),
            vec![Column::from_ints(
                (0..rows as i64).map(|i| i % modulo).collect(),
            )],
        )
        .unwrap()
    };
    cat.register(mk("a", n, 128));
    cat.register(mk("b", n / 2, 128));
    cat.register(mk("c", n / 4, 128));
    let mut qb = QueryBuilder::new(&cat);
    qb.table("a").unwrap();
    qb.table("b").unwrap();
    qb.table("c").unwrap();
    let j1 = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
    let j2 = qb.col("b.k").unwrap().eq(qb.col("c.k").unwrap());
    qb.filter(j1);
    qb.filter(j2);
    qb.select_col("a.k").unwrap();
    let q = qb.build().unwrap();
    (cat, q)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    let (_cat, q) = setup(2048);
    let opts = ExecOptions {
        count_only: true,
        ..Default::default()
    };
    group.bench_function(BenchmarkId::new("join_3way", "row"), |b| {
        let engine = RowEngine::new();
        b.iter(|| criterion::black_box(engine.execute(&q, &opts).result_count))
    });
    group.bench_function(BenchmarkId::new("join_3way", "col"), |b| {
        let engine = ColEngine::new();
        b.iter(|| criterion::black_box(engine.execute(&q, &opts).result_count))
    });
    group.bench_function(BenchmarkId::new("join_3way", "col_4threads"), |b| {
        let engine = ColEngine::with_threads(4);
        b.iter(|| criterion::black_box(engine.execute(&q, &opts).result_count))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
