//! Criterion bench: offset-range-partitioned vs. sequential join slices
//! on a 4-table FK chain.
//!
//! Each measured iteration executes one `MultiwayJoin::continue_join`
//! slice of `STEPS` budget from a fresh cursor, with the engine
//! configured for 1 / 2 / 4 worker threads. A partitioned slice divides
//! the budget across its chunks, so every configuration examines the
//! same ~`STEPS` tuples; the metric is *slice throughput* (wall time for
//! the same step budget). The acceptance bar is ≥ 1.5× at 4 threads on a
//! host with ≥ 4 cores — the recorded `host_cores` field says how many
//! the measuring machine actually had (thread spawns serialize on a
//! 1-core container, so speedup there sits at ~1.0× or below).
//!
//! Run with `cargo bench --bench join_parallel`. Results are merged into
//! `BENCH_join.json` (repo root) under the `join_parallel` key, next to
//! the `join_inner_loop` numbers. When the thread counts exceed the
//! host's available parallelism the section gains a `"warning"` field —
//! multi-thread numbers measured on such a host are overhead
//! measurements, not speedups, and must not be quoted against the
//! acceptance bar.
//!
//! Partitioned slices run their chunk morsels on the persistent
//! worker pool; each configuration executes one untimed warm-up slice
//! first so pool-thread spawning never pollutes a measured iteration
//! (`ExecMetrics.thread_spawns` is 0 from then on).

use criterion::{BenchmarkId, Criterion};
use skinner_bench::upsert_bench_json;
use skinner_engine::multiway::ResultSet;
use skinner_engine::{MultiwayJoin, PreparedQuery};
use skinner_query::{Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

const TABLES: usize = 4;
const ROWS: usize = 4096;
const KEYS: i64 = 256;
const STEPS: u64 = 200_000;
const THREADS: [usize; 3] = [1, 2, 4];

/// 4-table FK chain: t0.k = t1.k, t1.k = t2.k, t2.k = t3.k — the same
/// workload `join_inner_loop` measures, so the two sections of
/// `BENCH_join.json` compose.
fn fk_chain() -> (Catalog, Query) {
    let mut cat = Catalog::new();
    for t in 0..TABLES {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(
                        (0..ROWS as i64)
                            .map(|i| i.wrapping_mul(2654435761).rem_euclid(KEYS))
                            .collect(),
                    ),
                    Column::from_ints((0..ROWS as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    let q = {
        let mut qb = QueryBuilder::new(&cat);
        for t in 0..TABLES {
            qb.table(&format!("t{t}")).unwrap();
        }
        for t in 0..TABLES - 1 {
            let j = qb
                .col(&format!("t{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("t0.v").unwrap();
        qb.build().unwrap()
    };
    (cat, q)
}

fn bench_parallel_slices(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_parallel");
    let (_cat, q) = fk_chain();
    let pq = PreparedQuery::new(&q, true, 1);
    let order: Vec<usize> = (0..TABLES).collect();
    let plan = pq.plan_order(&order);
    let offsets = vec![0u32; TABLES];

    for &threads in &THREADS {
        group.bench_with_input(
            BenchmarkId::new("slice", format!("{threads}t")),
            &threads,
            |b, &threads| {
                let mut join = MultiwayJoin::with_threads(&pq, threads);
                // Untimed warm-up: the first partitioned slice may spawn
                // the shared pool's workers; every measured slice after
                // it reuses them (zero spawns).
                {
                    let mut state = offsets.clone();
                    let mut rs = ResultSet::new();
                    join.continue_join(&order, &plan, &offsets, &mut state, STEPS, &mut rs);
                }
                b.iter(|| {
                    let mut state = offsets.clone();
                    let mut rs = ResultSet::new();
                    let (_r, steps) =
                        join.continue_join(&order, &plan, &offsets, &mut state, STEPS, &mut rs);
                    criterion::black_box((steps, rs.len()))
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_parallel_slices(&mut criterion);

    let get = |name: &str| -> f64 {
        criterion
            .results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("bench result")
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"workload\": \"{TABLES}-table FK chain, {ROWS} rows/table, {KEYS} keys, {STEPS}-step slices\",\n"
    ));
    section.push_str(&format!("    \"host_cores\": {cores},\n"));
    section.push_str("    \"mean_ns_per_slice\": {\n");
    for (i, &t) in THREADS.iter().enumerate() {
        section.push_str(&format!(
            "      \"{t}_threads\": {:.0}{}\n",
            get(&format!("join_parallel/slice/{t}t")),
            if i + 1 < THREADS.len() { "," } else { "" }
        ));
    }
    section.push_str("    },\n");
    let base = get("join_parallel/slice/1t");
    let sp2 = base / get("join_parallel/slice/2t");
    let sp4 = base / get("join_parallel/slice/4t");
    section.push_str(&format!(
        "    \"speedup_vs_sequential\": {{ \"2_threads\": {sp2:.2}, \"4_threads\": {sp4:.2} }}"
    ));
    // Honest recording: speedups measured with more worker threads than
    // the host has cores are meaningless (workers time-slice one core),
    // so flag them rather than letting the bare numbers mislead.
    let max_threads = *THREADS.iter().max().unwrap();
    if max_threads > cores {
        section.push_str(&format!(
            ",\n    \"warning\": \"measured with up to {max_threads} worker threads on a \
             {cores}-core host; thread counts above host_cores cannot speed up, so the \
             multi-thread entries are scheduling-overhead measurements, not speedups\""
        ));
        println!(
            "WARNING: {max_threads} worker threads > {cores} host cores — \
             multi-thread numbers are overhead measurements, not speedups"
        );
    }
    section.push_str("\n  }");
    println!("slice speedup vs sequential: 2t {sp2:.2}x, 4t {sp4:.2}x (host cores: {cores})");
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_join.json"
    ));
    upsert_bench_json(path, "join_parallel", &section).expect("write BENCH_join.json");
}
