//! Criterion bench: the Algorithm 2 inner loop (multi-way join steps),
//! with and without hash-index jumps — the per-step cost that makes
//! Skinner-C's "tens of thousands of join order switches per second"
//! possible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skinner_engine::multiway::ResultSet;
use skinner_engine::{MultiwayJoin, PreparedQuery};
use skinner_query::{Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

fn chain_query(n_rows: usize) -> (Catalog, Query) {
    let mut cat = Catalog::new();
    for t in 0..3 {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(
                    (0..n_rows as i64).map(|i| i % 64).collect(),
                )],
            )
            .unwrap(),
        );
    }
    let mut qb = QueryBuilder::new(&cat);
    for t in 0..3 {
        qb.table(&format!("t{t}")).unwrap();
    }
    for t in 0..2 {
        let j = qb
            .col(&format!("t{t}.k"))
            .unwrap()
            .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
        qb.filter(j);
    }
    qb.select_col("t0.k").unwrap();
    let q = qb.build().unwrap();
    (cat, q)
}

fn bench_multiway(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiway_join");
    for &indexes in &[true, false] {
        let (_cat, q) = chain_query(512);
        let pq = PreparedQuery::new(&q, indexes, 1);
        let order = vec![0usize, 1, 2];
        let plan = pq.plan_order(&order);
        group.bench_with_input(
            BenchmarkId::new("steps_10k", if indexes { "indexed" } else { "scan" }),
            &indexes,
            |b, _| {
                b.iter(|| {
                    let mut join = MultiwayJoin::new(&pq);
                    let offsets = vec![0u32; 3];
                    let mut state = offsets.clone();
                    let mut rs = ResultSet::new();
                    let (_r, steps) =
                        join.continue_join(&order, &plan, &offsets, &mut state, 10_000, &mut rs);
                    criterion::black_box(steps)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multiway);
criterion_main!(benches);
