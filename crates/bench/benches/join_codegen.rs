//! Criterion bench: compiled (codegen-tier) vs. plan-bound vs. generic
//! join kernels on FK chains of 2..=6 tables.
//!
//! Each configuration runs the *same* complete join to exhaustion under
//! the canonical order, through a counting sink — so the three tiers do
//! identical logical work (same candidate sequence, same result tuples)
//! and the measurement isolates the kernel itself: the compiled kernel's
//! posting-list cursors and elided equality predicates against the
//! plan-bound kernel's per-advance hash probe + binary search, against
//! the generic kernel's per-tuple column re-resolution. The acceptance
//! bar for the codegen tier is ≥ 1.2× over the plan-bound kernel on the
//! 4-table chain.
//!
//! Run with `cargo bench --bench join_codegen`. Mean ns per full join
//! and the speedup ratios are merged into `BENCH_join.json` (repo root)
//! under the `codegen` key.

use criterion::{BenchmarkId, Criterion};
use skinner_engine::multiway::CountingSink;
use skinner_engine::{MultiwayJoin, PreparedQuery};
use skinner_query::{Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

const ROWS: usize = 2048;
const KEYS: i64 = 1024;
const MIN_TABLES: usize = 2;
const MAX_TABLES: usize = 6;

/// FK chain of `m` tables: t0.k = t1.k, ..., t{m-2}.k = t{m-1}.k
/// (each key matches ~2 rows per table, so the full join stays small
/// enough to run to exhaustion at every arity).
fn fk_chain(m: usize) -> (Catalog, Query) {
    let mut cat = Catalog::new();
    for t in 0..m {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(
                        (0..ROWS as i64)
                            .map(|i| i.wrapping_mul(2654435761).rem_euclid(KEYS))
                            .collect(),
                    ),
                    Column::from_ints((0..ROWS as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    let q = {
        let mut qb = QueryBuilder::new(&cat);
        for t in 0..m {
            qb.table(&format!("t{t}")).unwrap();
        }
        for t in 0..m - 1 {
            let j = qb
                .col(&format!("t{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("t0.v").unwrap();
        qb.build().unwrap()
    };
    (cat, q)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_codegen");
    for m in MIN_TABLES..=MAX_TABLES {
        let (_cat, q) = fk_chain(m);
        let pq = PreparedQuery::new(&q, true, 1);
        let order: Vec<usize> = (0..m).collect();
        let plan = pq.plan_order(&order);
        let spec = pq.plan_spec(&order);
        let kernel = plan.compile_kernel(None).expect("int chains compile");
        let offsets = vec![0u32; m];

        // The three tiers must agree on the work before we time them.
        let attempts = |run: &mut dyn FnMut(&mut CountingSink)| {
            let mut sink = CountingSink::default();
            run(&mut sink);
            sink.attempts
        };
        let mut join = MultiwayJoin::new(&pq);
        let a_codegen = attempts(&mut |s| {
            let mut state = offsets.clone();
            join.continue_join_compiled(&kernel, &offsets, &mut state, u64::MAX, s);
        });
        let a_bound = attempts(&mut |s| {
            let mut state = offsets.clone();
            join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, s);
        });
        let a_generic = attempts(&mut |s| {
            let mut state = offsets.clone();
            join.continue_join_generic(&order, &spec, &offsets, &mut state, u64::MAX, s);
        });
        assert_eq!(a_codegen, a_bound, "m={m}: codegen/bound tuple mismatch");
        assert_eq!(
            a_codegen, a_generic,
            "m={m}: codegen/generic tuple mismatch"
        );
        assert!(a_codegen > 0, "m={m}: empty join benches nothing");

        group.bench_with_input(BenchmarkId::new("codegen", format!("m{m}")), &m, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut sink = CountingSink::default();
                join.continue_join_compiled(&kernel, &offsets, &mut state, u64::MAX, &mut sink);
                criterion::black_box(sink.attempts)
            })
        });
        group.bench_with_input(BenchmarkId::new("bound", format!("m{m}")), &m, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut sink = CountingSink::default();
                join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, &mut sink);
                criterion::black_box(sink.attempts)
            })
        });
        group.bench_with_input(BenchmarkId::new("generic", format!("m{m}")), &m, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut sink = CountingSink::default();
                join.continue_join_generic(
                    &order,
                    &spec,
                    &offsets,
                    &mut state,
                    u64::MAX,
                    &mut sink,
                );
                criterion::black_box(sink.attempts)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kernels(&mut criterion);

    let get = |name: &str| -> f64 {
        criterion
            .results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("bench result")
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"workload\": \"FK chains m=2..6, {ROWS} rows/table, {KEYS} keys, full join to exhaustion, counting sink\",\n"
    ));
    section.push_str(&format!("    \"host_cores\": {cores},\n"));
    section.push_str("    \"mean_ns\": {\n");
    let mut names = Vec::new();
    for m in MIN_TABLES..=MAX_TABLES {
        for tier in ["codegen", "bound", "generic"] {
            names.push(format!("join_codegen/{tier}/m{m}"));
        }
    }
    for (i, n) in names.iter().enumerate() {
        section.push_str(&format!(
            "      \"{n}\": {:.0}{}\n",
            get(n),
            if i + 1 < names.len() { "," } else { "" }
        ));
    }
    section.push_str("    },\n");
    section.push_str("    \"speedup_vs_bound\": { ");
    for m in MIN_TABLES..=MAX_TABLES {
        let sp =
            get(&format!("join_codegen/bound/m{m}")) / get(&format!("join_codegen/codegen/m{m}"));
        section.push_str(&format!(
            "\"m{m}\": {sp:.2}{}",
            if m < MAX_TABLES { ", " } else { "" }
        ));
        println!("m{m}: codegen {sp:.2}x over bound");
    }
    section.push_str(" },\n");
    let sp4 = get("join_codegen/generic/m4") / get("join_codegen/codegen/m4");
    section.push_str(&format!(
        "    \"speedup_vs_generic\": {{ \"m4\": {sp4:.2} }}\n  }}"
    ));
    println!("m4: codegen {sp4:.2}x over generic");
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_join.json"
    ));
    skinner_bench::upsert_bench_json(path, "codegen", &section).expect("write BENCH_join.json");
}
