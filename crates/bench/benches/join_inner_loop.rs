//! Criterion bench: order-specialized vs. generic-eval multi-way join
//! kernels on a 4-table FK chain.
//!
//! The specialized kernel executes a fully *bound* `OrderPlan` (typed
//! column slices per predicate, direct hash-index references per jump,
//! arena result set); the generic kernel re-resolves tables/columns via
//! `CompiledPred::eval` and probes the `(table, column)` index map on
//! every advance — the pre-specialization implementation kept as the
//! reference. The acceptance bar for the specialization is ≥ 1.5×.
//!
//! Run with `cargo bench --bench join_inner_loop`. The measured means
//! and the speedup ratio are merged into `BENCH_join.json` (repo root)
//! under the `join_inner_loop` key; `join_parallel` records the
//! partitioned-slice numbers next to them.

use criterion::{BenchmarkId, Criterion};
use skinner_engine::multiway::{ResultSet, ResultSink};
use skinner_engine::{MultiwayJoin, PreparedQuery};
use skinner_query::{Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use skinner_storage::{FxHashSet, RowId};

/// The seed implementation's result set — one `Box<[RowId]>` heap
/// allocation per insert attempt, hash-set dedup — kept here as the
/// baseline sink so the bench measures the full pre-refactor
/// configuration (generic kernel + boxed result set) against the
/// specialized kernel + arena result set.
#[derive(Debug, Default)]
struct BoxedResultSet {
    set: FxHashSet<Box<[RowId]>>,
}

impl ResultSink for BoxedResultSet {
    #[inline]
    fn insert(&mut self, tuple: &[RowId]) -> bool {
        self.set.insert(tuple.into())
    }
}

const TABLES: usize = 4;
const ROWS: usize = 4096;
const KEYS: i64 = 256;
const STEPS: u64 = 100_000;

/// 4-table FK chain: t0.k = t1.k, t1.k = t2.k, t2.k = t3.k.
fn fk_chain() -> (Catalog, Query) {
    let mut cat = Catalog::new();
    for t in 0..TABLES {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(
                        (0..ROWS as i64)
                            .map(|i| i.wrapping_mul(2654435761).rem_euclid(KEYS))
                            .collect(),
                    ),
                    Column::from_ints((0..ROWS as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    let q = {
        let mut qb = QueryBuilder::new(&cat);
        for t in 0..TABLES {
            qb.table(&format!("t{t}")).unwrap();
        }
        for t in 0..TABLES - 1 {
            let j = qb
                .col(&format!("t{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("t0.v").unwrap();
        qb.build().unwrap()
    };
    (cat, q)
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_inner_loop");
    for &indexes in &[true, false] {
        let tag = if indexes { "indexed" } else { "scan" };
        let (_cat, q) = fk_chain();
        let pq = PreparedQuery::new(&q, indexes, 1);
        let order: Vec<usize> = (0..TABLES).collect();
        let plan = pq.plan_order(&order);
        let spec = pq.plan_spec(&order);
        let offsets = vec![0u32; TABLES];

        group.bench_with_input(BenchmarkId::new("specialized", tag), &indexes, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut rs = ResultSet::new();
                let (_r, steps) =
                    join.continue_join(&order, &plan, &offsets, &mut state, STEPS, &mut rs);
                criterion::black_box((steps, rs.len()))
            })
        });
        group.bench_with_input(BenchmarkId::new("generic", tag), &indexes, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut rs = BoxedResultSet::default();
                let (_r, steps) =
                    join.continue_join_generic(&order, &spec, &offsets, &mut state, STEPS, &mut rs);
                criterion::black_box((steps, rs.set.len()))
            })
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kernels(&mut criterion);

    // Record the numbers (mean ns per kernel run of `STEPS` steps, plus
    // the specialized-over-generic speedup per configuration).
    let get = |name: &str| -> f64 {
        criterion
            .results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("bench result")
    };
    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"workload\": \"{TABLES}-table FK chain, {ROWS} rows/table, {KEYS} keys, {STEPS} steps\",\n"
    ));
    section.push_str("    \"mean_ns\": {\n");
    let names = [
        "join_inner_loop/specialized/indexed",
        "join_inner_loop/generic/indexed",
        "join_inner_loop/specialized/scan",
        "join_inner_loop/generic/scan",
    ];
    for (i, n) in names.iter().enumerate() {
        section.push_str(&format!(
            "      \"{n}\": {:.0}{}\n",
            get(n),
            if i + 1 < names.len() { "," } else { "" }
        ));
    }
    section.push_str("    },\n");
    let sp_indexed =
        get("join_inner_loop/generic/indexed") / get("join_inner_loop/specialized/indexed");
    let sp_scan = get("join_inner_loop/generic/scan") / get("join_inner_loop/specialized/scan");
    section.push_str(&format!(
        "    \"speedup\": {{ \"indexed\": {sp_indexed:.2}, \"scan\": {sp_scan:.2} }}\n  }}"
    ));
    println!("speedup: indexed {sp_indexed:.2}x, scan {sp_scan:.2}x");
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_join.json"
    ));
    skinner_bench::upsert_bench_json(path, "join_inner_loop", &section)
        .expect("write BENCH_join.json");
}
