//! Criterion bench: composite fused-key jumps vs single-column jump +
//! residual predicate on the correlated link-table workload.
//!
//! Two link tables share a `(movie_id, person_id)` composite key whose
//! components are individually non-selective (heavy skew toward popular
//! entities). The **composite** configuration probes one fused-key
//! index per advance; the **single** baseline expresses the same join
//! the pre-composite way — one single-column jump plus a per-tuple
//! residual check on the second component (emulated via `<=` / `>=`
//! conjuncts, which no index accelerates but which are semantically
//! identical to the equality).
//!
//! Run with `cargo bench --bench join_composite`. Means and the
//! composite-over-single speedup are merged into `BENCH_join.json`
//! under the `join_composite` key.

use criterion::{BenchmarkId, Criterion};
use skinner_engine::multiway::ResultSet;
use skinner_engine::{MultiwayJoin, PreparedQuery};
use skinner_query::{Query, QueryBuilder};
use skinner_storage::Catalog;
use skinner_workloads::correlated;

const STEPS: u64 = 100_000;
const SCALE: f64 = 0.5;
const SEED: u64 = 7;

/// The composite join (appearance ⋈ award on both components).
fn composite_query(cat: &Catalog) -> Query {
    let mut qb = QueryBuilder::new(cat);
    qb.table("appearance").unwrap();
    qb.table("award").unwrap();
    let j1 = qb
        .col("appearance.movie_id")
        .unwrap()
        .eq(qb.col("award.movie_id").unwrap());
    let j2 = qb
        .col("appearance.person_id")
        .unwrap()
        .eq(qb.col("award.person_id").unwrap());
    qb.filter(j1);
    qb.filter(j2);
    qb.select_col("appearance.movie_id").unwrap();
    qb.build().unwrap()
}

fn bench_composite(c: &mut Criterion) {
    let wl = correlated::generate(SCALE, SEED);
    let mut group = c.benchmark_group("join_composite");
    for (tag, q) in [
        ("composite", composite_query(&wl.catalog)),
        // The pre-composite execution shape, shared with the workload's
        // step-count test.
        ("single", correlated::single_key_variant(&wl.catalog)),
    ] {
        let pq = PreparedQuery::new(&q, true, 1);
        if tag == "composite" {
            assert_eq!(pq.composites.len(), 1, "composite group must exist");
        } else {
            assert!(pq.composites.is_empty(), "baseline must stay single-key");
        }
        let order = vec![0usize, 1];
        let plan = pq.plan_order(&order);
        let offsets = vec![0u32; 2];
        group.bench_with_input(BenchmarkId::new("plan_bound", tag), &tag, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut rs = ResultSet::new();
                let (_r, steps) =
                    join.continue_join(&order, &plan, &offsets, &mut state, STEPS, &mut rs);
                criterion::black_box((steps, rs.len()))
            })
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_composite(&mut criterion);

    let get = |name: &str| -> f64 {
        criterion
            .results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("bench result")
    };
    let composite = get("join_composite/plan_bound/composite");
    let single = get("join_composite/plan_bound/single");
    let speedup = single / composite;
    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"workload\": \"correlated link tables (scale {SCALE}), appearance ⋈ award on \
         (movie_id, person_id), {STEPS} steps\",\n"
    ));
    section.push_str("    \"mean_ns\": {\n");
    section.push_str(&format!(
        "      \"join_composite/plan_bound/composite\": {composite:.0},\n"
    ));
    section.push_str(&format!(
        "      \"join_composite/plan_bound/single\": {single:.0}\n"
    ));
    section.push_str("    },\n");
    section.push_str(&format!(
        "    \"speedup\": {{ \"composite_over_single\": {speedup:.2} }}\n  }}"
    ));
    println!("composite over single-key+residual: {speedup:.2}x");
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_join.json"
    ));
    skinner_bench::upsert_bench_json(path, "join_composite", &section)
        .expect("write BENCH_join.json");
}
