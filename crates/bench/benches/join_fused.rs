//! Criterion bench: the compiled fused-key kernel vs. the plan-bound
//! composite path on correlated-key link chains of 2..=6 tables.
//!
//! Every join predicate here is a *composite*: two correlated key
//! columns per table pair, where neither component alone separates
//! groups (each single column matches ~25-30 rows) but the fused pair
//! is nearly unique. Preprocessing fuses the pair into one content-hash
//! key vector plus a composite hash index, and the codegen tier
//! compiles that into `FusedEq` posting-list cursors — the combination
//! this bench prices against the plan-bound composite probe
//! (per-advance hash probe + binary search + residual re-check).
//!
//! A third configuration re-runs the compiled kernel with the
//! chain-class dispatch hoist disabled (`with_mixed_class`), so the
//! delta between `fused` and `mixed` isolates exactly the per-establish
//! jump dispatch that the homogeneous `FusedChain` class removes.
//!
//! Run with `cargo bench --bench join_fused`. Mean ns per full join and
//! the speedup ratios are merged into `BENCH_join.json` (repo root)
//! under the `codegen_fused` key. The acceptance bar is ≥ 1.4× over the
//! plan-bound composite path on the 4-table chain.

use criterion::{BenchmarkId, Criterion};
use skinner_engine::multiway::CountingSink;
use skinner_engine::{CompiledKernel, KernelClass, MultiwayJoin, PreparedQuery};
use skinner_query::{Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

const ROWS: usize = 2048;
/// Distinct (k1, k2) pairs; each pair matches ~4 rows per table, so an
/// established fused-key posting cursor amortizes over several
/// advances — the regime the compiled kernel targets (the plan-bound
/// path re-probes the composite index on every advance).
const GROUPS: i64 = 512;
const MIN_TABLES: usize = 2;
const MAX_TABLES: usize = 6;

/// Link chain of `m` tables joined on correlated composite keys:
/// t0.(k1,k2) = t1.(k1,k2), ..., t{m-2}.(k1,k2) = t{m-1}.(k1,k2).
///
/// Both components derive from one hidden group id `g < 512`:
/// `k1 = g mod 64`, `k2 = g mod 89`. Since lcm(64, 89) > 512 the pair
/// determines `g` (the fused key partitions into 512 groups of ~4
/// rows), while each component alone is coarse (64 resp. 89 distinct
/// values) — the regime where the composite index matters and no
/// single-column jump can replace it.
fn composite_chain(m: usize) -> (Catalog, Query) {
    let mut cat = Catalog::new();
    let group = |i: i64| i.wrapping_mul(2654435761).rem_euclid(GROUPS);
    for t in 0..m {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k1", ValueType::Int),
                    ColumnDef::new("k2", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints((0..ROWS as i64).map(|i| group(i).rem_euclid(64)).collect()),
                    Column::from_ints((0..ROWS as i64).map(|i| group(i).rem_euclid(89)).collect()),
                    Column::from_ints((0..ROWS as i64).collect()),
                ],
            )
            .unwrap(),
        );
    }
    let q = {
        let mut qb = QueryBuilder::new(&cat);
        for t in 0..m {
            qb.table(&format!("t{t}")).unwrap();
        }
        for t in 0..m - 1 {
            for k in ["k1", "k2"] {
                let j = qb
                    .col(&format!("t{t}.{k}"))
                    .unwrap()
                    .eq(qb.col(&format!("t{}.{k}", t + 1)).unwrap());
                qb.filter(j);
            }
        }
        qb.select_col("t0.v").unwrap();
        qb.build().unwrap()
    };
    (cat, q)
}

fn bench_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_fused");
    // The small-arity joins finish in ~100µs, where scheduler noise on a
    // loaded host dominates a 12-sample mean; more samples tighten it.
    group.sample_size(24);
    for m in MIN_TABLES..=MAX_TABLES {
        let (_cat, q) = composite_chain(m);
        let pq = PreparedQuery::new(&q, true, 1);
        let order: Vec<usize> = (0..m).collect();
        let plan = pq.plan_order(&order);
        let kernel = plan.compile_kernel(None).expect("composite chains compile");
        assert_eq!(
            kernel.class(),
            KernelClass::FusedChain,
            "m={m}: every jump must be a fused-key posting cursor"
        );
        let mixed = CompiledKernel::with_mixed_class(*kernel.key(), kernel.positions().to_vec())
            .expect("same shape");
        let offsets = vec![0u32; m];

        // All three configurations must emit the same tuples before we
        // time them.
        let attempts = |run: &mut dyn FnMut(&mut CountingSink)| {
            let mut sink = CountingSink::default();
            run(&mut sink);
            sink.attempts
        };
        let mut join = MultiwayJoin::new(&pq);
        let a_fused = attempts(&mut |s| {
            let mut state = offsets.clone();
            join.continue_join_compiled(&kernel, &offsets, &mut state, u64::MAX, s);
        });
        let a_mixed = attempts(&mut |s| {
            let mut state = offsets.clone();
            join.continue_join_compiled(&mixed, &offsets, &mut state, u64::MAX, s);
        });
        let a_bound = attempts(&mut |s| {
            let mut state = offsets.clone();
            join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, s);
        });
        assert_eq!(a_fused, a_bound, "m={m}: fused/bound tuple mismatch");
        assert_eq!(a_fused, a_mixed, "m={m}: fused/mixed tuple mismatch");
        assert!(a_fused > 0, "m={m}: empty join benches nothing");

        group.bench_with_input(BenchmarkId::new("fused", format!("m{m}")), &m, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut sink = CountingSink::default();
                join.continue_join_compiled(&kernel, &offsets, &mut state, u64::MAX, &mut sink);
                criterion::black_box(sink.attempts)
            })
        });
        group.bench_with_input(BenchmarkId::new("mixed", format!("m{m}")), &m, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut sink = CountingSink::default();
                join.continue_join_compiled(&mixed, &offsets, &mut state, u64::MAX, &mut sink);
                criterion::black_box(sink.attempts)
            })
        });
        group.bench_with_input(BenchmarkId::new("bound", format!("m{m}")), &m, |b, _| {
            let mut join = MultiwayJoin::new(&pq);
            b.iter(|| {
                let mut state = offsets.clone();
                let mut sink = CountingSink::default();
                join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, &mut sink);
                criterion::black_box(sink.attempts)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_fused(&mut criterion);

    let get = |name: &str| -> f64 {
        criterion
            .results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, ns)| *ns)
            .expect("bench result")
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut section = String::from("{\n");
    section.push_str(&format!(
        "    \"workload\": \"correlated composite-key chains m=2..6, {ROWS} rows/table, {GROUPS} fused groups, full join to exhaustion, counting sink\",\n"
    ));
    section.push_str(&format!("    \"host_cores\": {cores},\n"));
    if cores == 1 {
        section.push_str(
            "    \"note\": \"1-core host: kernels are single-threaded so the tier ratios hold, but absolute times and the noise floor do not transfer to multi-core hosts\",\n",
        );
    }
    section.push_str("    \"mean_ns\": {\n");
    let mut names = Vec::new();
    for m in MIN_TABLES..=MAX_TABLES {
        for tier in ["fused", "mixed", "bound"] {
            names.push(format!("join_fused/{tier}/m{m}"));
        }
    }
    for (i, n) in names.iter().enumerate() {
        section.push_str(&format!(
            "      \"{n}\": {:.0}{}\n",
            get(n),
            if i + 1 < names.len() { "," } else { "" }
        ));
    }
    section.push_str("    },\n");
    section.push_str("    \"speedup_vs_bound\": { ");
    for m in MIN_TABLES..=MAX_TABLES {
        let sp = get(&format!("join_fused/bound/m{m}")) / get(&format!("join_fused/fused/m{m}"));
        section.push_str(&format!(
            "\"m{m}\": {sp:.2}{}",
            if m < MAX_TABLES { ", " } else { "" }
        ));
        println!("m{m}: fused {sp:.2}x over bound");
    }
    section.push_str(" },\n");
    section.push_str("    \"dispatch_hoist_speedup\": { ");
    for m in MIN_TABLES..=MAX_TABLES {
        let sp = get(&format!("join_fused/mixed/m{m}")) / get(&format!("join_fused/fused/m{m}"));
        section.push_str(&format!(
            "\"m{m}\": {sp:.2}{}",
            if m < MAX_TABLES { ", " } else { "" }
        ));
        println!("m{m}: chain class {sp:.2}x over forced-mixed dispatch");
    }
    section.push_str(" }\n  }");
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_join.json"
    ));
    skinner_bench::upsert_bench_json(path, "codegen_fused", &section)
        .expect("write BENCH_join.json");
}
