//! Figure 9: the UDF Torture benchmark.
//!
//! Chain and star queries whose join predicates are all black-box UDFs;
//! one "good" predicate yields an empty join, the rest always succeed.
//! No statistics can tell them apart — only adaptive execution finds the
//! good edge. Reports per-approach time as the query size grows.

use skinner_bench::approaches::EngineKind;
use skinner_bench::{env_threads, env_timeout, fmt_duration, print_table, run_approach, Approach};
use skinner_workloads::torture::{udf_torture, Shape};

fn main() {
    let cap = env_timeout(2_000);
    let threads = env_threads(1);
    let rows_per_table = std::env::var("SKINNER_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40usize);
    let udf_cost = 50;

    let approaches = vec![
        Approach::SkinnerC {
            budget: 500,
            threads,
            indexes: true,
        },
        Approach::Eddy,
        Approach::MonetSim { threads: 1 }, // "Optimizer" on the shared engine
        Approach::Reopt,
        Approach::PgSim,
        Approach::SkinnerG {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::SkinnerH {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::ComSim,
        Approach::SkinnerG {
            engine: EngineKind::Com,
            random: false,
        },
        Approach::SkinnerH {
            engine: EngineKind::Com,
            random: false,
        },
    ];

    for shape in [Shape::Chain, Shape::Star] {
        let shape_name = if shape == Shape::Chain {
            "Chain"
        } else {
            "Star"
        };
        let mut table = Vec::new();
        for m in [4usize, 6, 8, 10] {
            // Good predicate in the middle of the edge list, as in the
            // benchmark's default configuration.
            let case = udf_torture(shape, m, rows_per_table, (m - 1) / 2, udf_cost);
            let mut row = vec![format!("{m}")];
            for approach in &approaches {
                let out = run_approach(*approach, &case.query.query, cap);
                row.push(if out.timed_out {
                    format!("≥{}", fmt_duration(cap))
                } else {
                    fmt_duration(out.time)
                });
            }
            table.push(row);
        }
        let mut headers: Vec<&str> = vec!["#tables"];
        let names: Vec<String> = approaches.iter().map(|a| a.name()).collect();
        headers.extend(names.iter().map(String::as_str));
        print_table(
            &format!(
                "Figure 9: UDF torture — {shape_name} queries, {rows_per_table} tuples/table (cap {})",
                fmt_duration(cap)
            ),
            &headers,
            &table,
        );
    }
}
