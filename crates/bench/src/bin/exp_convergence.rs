//! Figure 7: convergence of Skinner-C.
//!
//! (a) UCT search tree growth over (normalized) execution time — growth
//!     slows as the learner converges.
//! (b) Share of time slices spent in the top-k join orders, for slice
//!     budgets b = 10 and b = 500 — most time goes to one or two orders.

use skinner_bench::{env_scale, env_seed, print_table};
use skinner_engine::{SkinnerC, SkinnerCConfig};
use skinner_workloads::job;

fn main() {
    let scale = env_scale(0.04);
    let wl = job::generate(scale, env_seed());
    // Use the largest query (most joins) — convergence is hardest there.
    let nq = wl
        .queries
        .iter()
        .max_by_key(|nq| nq.query.num_tables())
        .expect("non-empty workload");
    println!(
        "Convergence on {} ({} tables, scale={scale})",
        nq.id,
        nq.query.num_tables()
    );

    // (a) tree growth over time, b = 500.
    let threads = skinner_bench::env_threads(1);
    let out = SkinnerC::new(SkinnerCConfig {
        budget: 500,
        tree_sample_every: 1,
        threads,
        ..Default::default()
    })
    .run(&nq.query);
    let growth = &out.metrics.tree_growth;
    if let (Some(&(last_slice, last_nodes)), true) = (growth.last(), !growth.is_empty()) {
        let mut rows = Vec::new();
        for frac in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let target = ((last_slice as f64) * frac) as u64;
            let entry = growth
                .iter()
                .rfind(|(s, _)| *s <= target.max(1))
                .copied()
                .unwrap_or((0, 0));
            rows.push(vec![
                format!("{:.1}", frac),
                format!("{:.3}", entry.1 as f64 / last_nodes.max(1) as f64),
            ]);
        }
        print_table(
            "Figure 7a: UCT tree growth (normalized time vs normalized #nodes)",
            &["time (scaled)", "#nodes (scaled)"],
            &rows,
        );
    }

    // (b) top-k selection shares for b = 500 and b = 10.
    let mut rows = Vec::new();
    for budget in [500u64, 10] {
        let out = SkinnerC::new(SkinnerCConfig {
            budget,
            threads,
            ..Default::default()
        })
        .run(&nq.query);
        for k in 1..=5usize {
            rows.push(vec![
                format!("b={budget}"),
                format!("{k}"),
                format!("{:.1}%", 100.0 * out.metrics.top_k_share(k)),
            ]);
        }
        rows.push(vec![
            format!("b={budget}"),
            "slices".into(),
            format!("{}", out.metrics.slices),
        ]);
    }
    print_table(
        "Figure 7b: share of slices spent in the top-k join orders",
        &["budget", "k", "selection share"],
        &rows,
    );
}
