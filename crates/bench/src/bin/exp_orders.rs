//! Tables 3/4: replay final join orders across engines.
//!
//! For each JOB-like query, obtains (a) Skinner-C's learned final order,
//! (b) the traditional optimizer's order, and (c) the certified
//! C_out-optimal order, then executes each order in each engine
//! (Skinner's multi-way engine without learning, the row engine, the
//! column engine). The paper's claim: Skinner's orders improve every
//! engine and sit close to the optimum.

use skinner_bench::{env_scale, env_seed, env_timeout, fmt_duration, print_table};
use skinner_engine::multiway::ResultSet;
use skinner_engine::{MultiwayJoin, PreparedQuery, SkinnerC, SkinnerCConfig};
use skinner_query::{Query, TableId};
use skinner_simdb::exec::ExecOptions;
use skinner_simdb::{optimal_order, ColEngine, Engine, RowEngine};
use skinner_workloads::job;
use std::time::{Duration, Instant};

/// Execute one fixed order in the Skinner multi-way engine (no learning:
/// a single unbounded slice).
fn replay_multiway(query: &Query, order: &[TableId]) -> Duration {
    let start = Instant::now();
    let pq = PreparedQuery::new(query, true, 1);
    if pq.any_empty() {
        return start.elapsed();
    }
    let plan = pq.plan_order(order);
    let mut join = MultiwayJoin::new(&pq);
    let offsets = vec![0u32; query.num_tables()];
    let mut state: Vec<u32> = offsets.clone();
    let mut rs = ResultSet::new();
    join.continue_join(order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
    start.elapsed()
}

fn replay_engine(
    engine: &dyn Engine,
    query: &Query,
    order: Option<Vec<TableId>>,
    cap: Duration,
) -> Duration {
    let start = Instant::now();
    let out = engine.execute(
        query,
        &ExecOptions {
            join_order: order,
            deadline: Some(start + cap),
            count_only: true,
            ..Default::default()
        },
    );
    if out.completed() {
        start.elapsed()
    } else {
        cap
    }
}

fn main() {
    let scale = env_scale(0.03);
    let cap = env_timeout(3_000);
    let wl = job::generate(scale, env_seed());
    println!(
        "Replaying join orders on {} JOB-like queries (scale={scale})",
        wl.queries.len()
    );

    let row = RowEngine::new();
    let col = ColEngine::new();

    // Accumulators: (engine, order-source) → (total, max)
    let mut acc: Vec<(String, String, Duration, Duration)> = Vec::new();
    let mut add = |engine: &str, source: &str, times: &[Duration]| {
        let total: Duration = times.iter().sum();
        let max = times.iter().max().copied().unwrap_or_default();
        acc.push((engine.into(), source.into(), total, max));
    };

    let mut skinner_orders = Vec::new();
    let mut optimizer_orders = Vec::new();
    let mut optimal_orders = Vec::new();
    for nq in &wl.queries {
        let sk = SkinnerC::new(SkinnerCConfig::default()).run(&nq.query);
        let opt_order = col.plan(&nq.query);
        let best = optimal_order(&nq.query, Some(&sk.final_order), 200_000_000);
        skinner_orders.push(sk.final_order);
        optimizer_orders.push(opt_order);
        optimal_orders.push(best.order);
    }

    // Skinner engine
    let t_sk: Vec<Duration> = wl
        .queries
        .iter()
        .zip(&skinner_orders)
        .map(|(nq, o)| replay_multiway(&nq.query, o))
        .collect();
    let t_opt: Vec<Duration> = wl
        .queries
        .iter()
        .zip(&optimal_orders)
        .map(|(nq, o)| replay_multiway(&nq.query, o))
        .collect();
    add("Skinner", "Skinner", &t_sk);
    add("Skinner", "Optimal", &t_opt);

    // Row engine
    for (source, orders) in [
        ("Original", None),
        ("Skinner", Some(&skinner_orders)),
        ("Optimal", Some(&optimal_orders)),
    ] {
        let times: Vec<Duration> = wl
            .queries
            .iter()
            .enumerate()
            .map(|(i, nq)| replay_engine(&row, &nq.query, orders.map(|os| os[i].clone()), cap))
            .collect();
        add("Postgres(sim)", source, &times);
    }

    // Column engine
    for (source, orders) in [
        ("Original", None),
        ("Skinner", Some(&skinner_orders)),
        ("Optimal", Some(&optimal_orders)),
    ] {
        let times: Vec<Duration> = wl
            .queries
            .iter()
            .enumerate()
            .map(|(i, nq)| replay_engine(&col, &nq.query, orders.map(|os| os[i].clone()), cap))
            .collect();
        add("MonetDB(sim)", source, &times);
    }

    let rows: Vec<Vec<String>> = acc
        .iter()
        .map(|(e, s, total, max)| {
            vec![
                e.clone(),
                s.clone(),
                fmt_duration(*total),
                fmt_duration(*max),
            ]
        })
        .collect();
    print_table(
        "Tables 3/4: join order quality across engines",
        &["Engine", "Order", "Total Time", "Max Time"],
        &rows,
    );

    // Sanity: how often Skinner's learned order equals the optimum.
    let same = skinner_orders
        .iter()
        .zip(&optimal_orders)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nSkinner's final order == C_out-optimal order on {same}/{} queries",
        wl.queries.len()
    );
    let _ = optimizer_orders;
}
