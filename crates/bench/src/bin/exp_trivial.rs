//! Figure 12: the Trivial Optimization benchmark.
//!
//! All plans avoiding Cartesian products are equivalent (UDF equality
//! predicates, fanout 1 everywhere). Approaches that explore pay pure
//! overhead here; the paper's point is that the overhead stays bounded.

use skinner_bench::approaches::EngineKind;
use skinner_bench::{env_threads, env_timeout, fmt_duration, print_table, run_approach, Approach};
use skinner_workloads::torture::trivial_optimization;

fn main() {
    let cap = env_timeout(2_000);
    let threads = env_threads(1);
    let rows = std::env::var("SKINNER_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(250usize);

    let approaches = vec![
        Approach::SkinnerC {
            budget: 500,
            threads,
            indexes: true,
        },
        Approach::Eddy,
        Approach::Reopt,
        Approach::MonetSim { threads: 1 },
        Approach::PgSim,
        Approach::SkinnerG {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::SkinnerH {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::ComSim,
        Approach::SkinnerG {
            engine: EngineKind::Com,
            random: false,
        },
        Approach::SkinnerH {
            engine: EngineKind::Com,
            random: false,
        },
    ];

    let mut table = Vec::new();
    for m in [4usize, 6, 8, 10] {
        let case = trivial_optimization(m, rows, 20);
        let mut row = vec![format!("{m}")];
        for approach in &approaches {
            let out = run_approach(*approach, &case.query.query, cap);
            row.push(if out.timed_out {
                format!("≥{}", fmt_duration(cap))
            } else {
                fmt_duration(out.time)
            });
        }
        table.push(row);
    }
    let mut headers: Vec<&str> = vec!["#tables"];
    let names: Vec<String> = approaches.iter().map(|a| a.name()).collect();
    headers.extend(names.iter().map(String::as_str));
    print_table(
        &format!("Figure 12: trivial optimization — UDF equality predicates, {rows} tuples/table"),
        &headers,
        &table,
    );
}
