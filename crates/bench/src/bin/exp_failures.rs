//! Figure 11: optimizer failures and disasters.
//!
//! Over a sweep of correlation-torture cases, a test case counts as an
//! *optimizer failure* for an approach if its evaluation exceeds the best
//! approach on that case by more than 10× — and as a *disaster* beyond
//! 100×. Counted both by wall time and by an engine-independent effort
//! metric (predicate evaluations / join steps / C_out).

use skinner_bench::{env_threads, env_timeout, print_table, run_approach, Approach};
use skinner_workloads::torture::correlation_torture;

fn main() {
    let cap = env_timeout(1_500);
    let threads = env_threads(1);
    let rows_base = std::env::var("SKINNER_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000usize);

    // The robustness study compares approaches sharing the same
    // execution substrate (paper: the Java engine).
    let approaches = [
        Approach::SkinnerC {
            budget: 500,
            threads,
            indexes: true,
        },
        Approach::Eddy,
        Approach::MonetSim { threads: 1 }, // "Optimizer"
        Approach::Reopt,
    ];

    // Sweep: tables × good-edge position × size.
    let mut cases = Vec::new();
    for m in [4usize, 6, 8, 10] {
        for pos in [0usize, (m / 2).saturating_sub(1)] {
            for rows in [rows_base, rows_base * 2] {
                cases.push(correlation_torture(m, rows, pos.min(m - 2), 8));
            }
        }
    }
    println!("{} test cases, cap {:?}", cases.len(), cap);

    let n = approaches.len();
    let mut fail_time = vec![0usize; n];
    let mut disaster_time = vec![0usize; n];
    let mut fail_effort = vec![0usize; n];
    let mut disaster_effort = vec![0usize; n];

    // Noise floors: a case only counts toward failures when the best
    // approach itself does non-trivial work (the paper's cases run at
    // 1M tuples/table, far above measurement noise; at our scales,
    // sub-millisecond cases would trip 10x thresholds on jitter).
    const TIME_FLOOR_S: f64 = 0.002;
    const EFFORT_FLOOR: f64 = 20_000.0;

    for case in &cases {
        let outs: Vec<_> = approaches
            .iter()
            .map(|a| run_approach(*a, &case.query.query, cap))
            .collect();
        let best_t = outs
            .iter()
            .map(|o| o.time.as_secs_f64())
            .fold(f64::INFINITY, f64::min)
            .max(1e-9);
        let best_e = outs.iter().map(|o| o.effort.max(1)).min().unwrap_or(1) as f64;
        for (i, o) in outs.iter().enumerate() {
            if best_t >= TIME_FLOOR_S {
                let rt = o.time.as_secs_f64() / best_t;
                if rt > 10.0 {
                    fail_time[i] += 1;
                }
                if rt > 100.0 {
                    disaster_time[i] += 1;
                }
            }
            if best_e >= EFFORT_FLOOR {
                let re = o.effort.max(1) as f64 / best_e;
                if re > 10.0 {
                    fail_effort[i] += 1;
                }
                if re > 100.0 {
                    disaster_effort[i] += 1;
                }
            }
        }
    }

    let rows: Vec<Vec<String>> = approaches
        .iter()
        .enumerate()
        .map(|(i, a)| {
            vec![
                a.name(),
                format!("{}", fail_time[i]),
                format!("{}", disaster_time[i]),
                format!("{}", fail_effort[i]),
                format!("{}", disaster_effort[i]),
            ]
        })
        .collect();
    print_table(
        "Figure 11: optimizer failures (>10x best) and disasters (>100x best)",
        &[
            "Approach",
            "Failures (time)",
            "Disasters (time)",
            "Failures (effort)",
            "Disasters (effort)",
        ],
        &rows,
    );
}
