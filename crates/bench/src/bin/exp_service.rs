//! `exp_service` — the service layer's two headline claims, measured:
//!
//! 1. **Learning reuse**: on repeated JOB-like templates, a warm-cache
//!    execution (UCT tree snapshot + pre-bound orders from the template
//!    cache) converges in fewer time slices / join steps than the cold
//!    execution that populated the cache.
//! 2. **Concurrent serving**: a 4-session concurrent run over the full
//!    JOB-like query set returns results identical to serial execution,
//!    sharing one core budget (admission + intra-query partitioning).
//!
//! 3. **Crash-safe persistence**: the learning cache survives a
//!    restart. A service populates the cache, saves it (atomic,
//!    checksummed), and a *fresh* service that loads the file serves its
//!    very first repeat of each template warm — versus a cold restart
//!    that re-learns from scratch.
//!
//! 4. **Knowledge priors**: a service trained on the JOB-like workload
//!    exports its knowledge store; a fresh service that imports it runs
//!    four *held-out* templates (FROM sets no training template uses)
//!    prior-seeded, converging in fewer slices than a cold service —
//!    with byte-identical results.
//!
//! Results are printed as tables and recorded into `BENCH_service.json`
//! (sections `service_learning`, `service_concurrency`,
//! `service_persistence`, and `knowledge_priors`) via
//! `upsert_bench_json`.
//!
//! Knobs: `SKINNER_SCALE` (default 0.03), `SKINNER_SEED`,
//! `SKINNER_THREADS` / `--threads N` (service core budget, default 4).

use skinner_bench::{
    env_scale, env_seed, env_threads, fmt_duration, print_table, upsert_bench_json,
};
use skinner_core::ResultTable;
use skinner_engine::SkinnerCConfig;
use skinner_service::{ExecuteOptions, QueryService, ServiceConfig};
use skinner_workloads::job;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

fn make_service(catalog: skinner_storage::Catalog, threads: usize) -> Arc<QueryService> {
    QueryService::new(
        catalog,
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                threads,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

fn main() {
    let scale = env_scale(0.03);
    let seed = env_seed();
    let threads = env_threads(4);
    let wl = job::generate(scale, seed);
    println!(
        "Service experiment over the JOB-like workload (scale={scale}, seed={seed}, \
         {} queries, core budget {threads})",
        wl.queries.len()
    );

    // ---- 1. Learning reuse: warm vs cold on repeated templates -------
    // Measure the templates where the learner does the most work: probe
    // every query once (fine-grained slice budget for resolution) and
    // take the three with the most cold slices. Empty-after-filtering
    // templates probe at 0 slices and drop out naturally.
    let learn_budget = 64;
    let make_learning_service = |threads: usize| {
        QueryService::new(
            wl.catalog.clone(),
            skinner_query::UdfRegistry::new(),
            ServiceConfig {
                engine: SkinnerCConfig {
                    budget: learn_budget,
                    threads,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    };
    let probe_svc = make_learning_service(threads);
    let mut probe_session = probe_svc.session();
    let probed: Vec<(usize, u64)> = (0..wl.queries.len())
        .map(|i| {
            let r = execute_query(&mut probe_session, &wl.queries[i].query);
            (i, r.stats.slices)
        })
        .collect();
    let mut largest: Vec<usize> = probed.iter().map(|&(i, _)| i).collect();
    largest.sort_by_key(|&i| std::cmp::Reverse(probed[i].1));
    largest.truncate(3);

    let mut rows = Vec::new();
    let mut learning_json = String::from("{\n");
    learning_json.push_str(&format!(
        "    \"workload\": \"JOB-like scale={scale} seed={seed}\",\n    \"core_budget\": {threads},\n    \"templates\": {{\n"
    ));
    for (li, &qi) in largest.iter().enumerate() {
        let nq = &wl.queries[qi];
        // One service per template: run 1 is cold, run 2+ are warm.
        let svc = make_learning_service(threads);
        let mut session = svc.session();
        const RUNS: usize = 4;
        let mut slices = Vec::new();
        let mut nonbest = Vec::new();
        let mut walls = Vec::new();
        let mut result: Option<ResultTable> = None;
        for run in 0..RUNS {
            let started = Instant::now();
            let r = execute_query(&mut session, &nq.query);
            walls.push(started.elapsed());
            let m = r.stats.metrics.as_ref().expect("metrics");
            slices.push(m.slices);
            // Exploration waste: slices spent executing anything other
            // than the order the run ultimately recommends. A warm run
            // starts *at* the learned order, so this collapses toward 0.
            let best = r.stats.final_order.as_ref().expect("final order");
            let best_slices = m.order_selections.get(best).copied().unwrap_or(0);
            nonbest.push(m.slices - best_slices);
            if run == 0 {
                assert!(!r.stats.warm_start, "first run must be cold");
            } else {
                assert!(r.stats.cache_hit, "repeat run missed the cache");
                assert!(r.stats.warm_start, "repeat run did not warm-start");
            }
            match &result {
                None => result = Some(r.table),
                Some(prev) => assert!(
                    r.table.same_rows(prev),
                    "{}: warm result differs from cold",
                    nq.id
                ),
            }
        }
        let (cold_slices, warm_slices) = (slices[0], *slices.last().expect("runs"));
        let (cold_nonbest, warm_nonbest) = (nonbest[0], *nonbest.last().expect("runs"));
        rows.push(vec![
            nq.id.clone(),
            format!("{}", nq.query.num_tables()),
            format!("{cold_slices}"),
            format!("{warm_slices}"),
            format!("{cold_nonbest}"),
            format!("{warm_nonbest}"),
            fmt_duration(walls[0]),
            fmt_duration(*walls.last().expect("runs")),
        ]);
        learning_json.push_str(&format!(
            "      \"{}\": {{ \"tables\": {}, \"cold_slices\": {}, \"warm_slices\": {}, \
             \"cold_nonbest_slices\": {}, \"warm_nonbest_slices\": {}, \
             \"cold_wall_us\": {}, \"warm_wall_us\": {} }}{}\n",
            nq.id,
            nq.query.num_tables(),
            cold_slices,
            warm_slices,
            cold_nonbest,
            warm_nonbest,
            walls[0].as_micros(),
            walls.last().expect("runs").as_micros(),
            if li + 1 < largest.len() { "," } else { "" },
        ));
    }
    learning_json.push_str("    }\n  }");
    print_table(
        "Learning reuse: cold vs warm (last of 4 runs) per template",
        &[
            "template",
            "tables",
            "cold slices",
            "warm slices",
            "cold non-best",
            "warm non-best",
            "cold wall",
            "warm wall",
        ],
        &rows,
    );
    println!(
        "  (\"non-best\" = slices spent off the finally-recommended join order: \
         the exploration a warm start avoids)"
    );

    // ---- 2. Persistence: warm restart vs cold restart ----------------
    // Populate a service's cache with the same heavy templates, persist
    // it, and compare two "restarts" (fresh services over the same
    // catalog): one loading the persisted cache, one starting cold.
    let cache_path = std::env::temp_dir().join(format!(
        "skinner-exp-service-cache-{}.bin",
        std::process::id()
    ));
    let populate = make_learning_service(threads);
    {
        let mut session = populate.session();
        for &qi in &largest {
            execute_query(&mut session, &wl.queries[qi].query);
        }
    }
    let saved = populate
        .save_learning_cache(&cache_path)
        .expect("persist learning cache");
    let file_bytes = std::fs::metadata(&cache_path).map_or(0, |m| m.len());

    let warm_restart = make_learning_service(threads);
    let load_start = Instant::now();
    let report = warm_restart
        .load_learning_cache(&cache_path)
        .expect("load learning cache");
    let load_wall = load_start.elapsed();
    assert_eq!(report.corrupt, 0, "clean file reported corruption");
    let cold_restart = make_learning_service(threads);

    let mut rows = Vec::new();
    let mut persistence_json = String::from("{\n");
    persistence_json.push_str(&format!(
        "    \"workload\": \"JOB-like scale={scale} seed={seed}\",\n    \
         \"entries_saved\": {saved},\n    \"entries_loaded\": {},\n    \
         \"file_bytes\": {file_bytes},\n    \"load_wall_us\": {},\n    \"templates\": {{\n",
        report.loaded,
        load_wall.as_micros(),
    ));
    let mut warm_session = warm_restart.session();
    let mut cold_session = cold_restart.session();
    for (li, &qi) in largest.iter().enumerate() {
        let nq = &wl.queries[qi];
        let cold_started = Instant::now();
        let cold = execute_query(&mut cold_session, &nq.query);
        let cold_wall = cold_started.elapsed();
        let warm_started = Instant::now();
        let warm = execute_query(&mut warm_session, &nq.query);
        let warm_wall = warm_started.elapsed();
        // The acceptance bar: the restarted service's FIRST execution of
        // a persisted template is already a cache hit — and identical.
        assert!(
            warm.stats.cache_hit,
            "{}: persisted entry not served on restart",
            nq.id
        );
        assert!(
            warm.table.same_rows(&cold.table),
            "{}: warm-restart result differs from cold restart",
            nq.id
        );
        rows.push(vec![
            nq.id.clone(),
            format!("{}", cold.stats.slices),
            format!("{}", warm.stats.slices),
            fmt_duration(cold_wall),
            fmt_duration(warm_wall),
            format!("{}", warm.stats.warm_start),
        ]);
        persistence_json.push_str(&format!(
            "      \"{}\": {{ \"cold_restart_slices\": {}, \"warm_restart_slices\": {}, \
             \"cold_restart_wall_us\": {}, \"warm_restart_wall_us\": {} }}{}\n",
            nq.id,
            cold.stats.slices,
            warm.stats.slices,
            cold_wall.as_micros(),
            warm_wall.as_micros(),
            if li + 1 < largest.len() { "," } else { "" },
        ));
    }
    persistence_json.push_str("    }\n  }");
    print_table(
        "Persistence: restart warm (persisted cache) vs restart cold, first run per template",
        &[
            "template",
            "cold-restart slices",
            "warm-restart slices",
            "cold wall",
            "warm wall",
            "warm start",
        ],
        &rows,
    );
    println!(
        "  ({saved} entries persisted in {file_bytes} bytes; {} loaded in {})",
        report.loaded,
        fmt_duration(load_wall),
    );
    std::fs::remove_file(&cache_path).ok();

    // ---- 3. Knowledge priors: held-out templates, cold vs seeded -----
    // Train a service on the full JOB-like workload, export its
    // knowledge store, and import it into fresh services that run four
    // *held-out* templates — FROM sets no training template uses, so the
    // exact-template learning cache can never help. The knowledge
    // store's coarse fingerprints (per-table selectivities, per-edge
    // directed rewards) still match, so the first-ever execution runs
    // prior-seeded; a cold fresh service is the baseline.
    let trainer = make_learning_service(threads);
    {
        // Train with prior seeding off: each template's observations
        // then come from its own unaided exploration. With seeding on,
        // query k's recorded rewards are steered by the priors of
        // queries 1..k-1, so an early mis-ranking compounds through the
        // rest of the training set instead of being averaged out.
        let train_opts = ExecuteOptions {
            disable_priors: true,
            ..Default::default()
        };
        let mut session = trainer.session();
        for nq in &wl.queries {
            session
                .execute_query_with(&nq.query, &train_opts)
                .expect("training query");
        }
    }
    let knowledge_file = std::env::temp_dir().join(format!(
        "skinner-exp-service-knowledge-{}.bin",
        std::process::id()
    ));
    trainer
        .save_knowledge(&knowledge_file)
        .expect("persist knowledge store");
    let (ktables, kedges) = trainer.knowledge().len();

    let held_out = held_out_queries(&wl.catalog);
    let mut rows = Vec::new();
    let mut improved = 0usize;
    let mut knowledge_json = String::from("{\n");
    knowledge_json.push_str(&format!(
        "    \"workload\": \"JOB-like scale={scale} seed={seed}\",\n    \
         \"trained_queries\": {},\n    \"table_entries\": {ktables},\n    \
         \"edge_entries\": {kedges},\n    \"templates\": {{\n",
        wl.queries.len(),
    ));
    for (hi, (name, query)) in held_out.iter().enumerate() {
        // Fresh service per run so nothing carries over between
        // held-out templates (each run records its own observations).
        let cold_svc = make_learning_service(threads);
        let cold = execute_query(&mut cold_svc.session(), query);
        assert!(!cold.stats.prior_seeded, "{name}: empty store seeded");

        let seeded_svc = make_learning_service(threads);
        seeded_svc
            .load_knowledge(&knowledge_file)
            .expect("import knowledge store");
        let seeded = execute_query(&mut seeded_svc.session(), query);
        assert!(
            seeded.stats.prior_seeded,
            "{name}: held-out template did not prior-seed"
        );
        assert!(
            !seeded.stats.warm_start,
            "{name}: held-out template cannot warm-start"
        );
        assert!(
            seeded.table.same_rows(&cold.table),
            "{name}: prior-seeded result differs from cold"
        );
        if seeded.stats.slices < cold.stats.slices {
            improved += 1;
        }
        rows.push(vec![
            name.to_string(),
            format!("{}", query.num_tables()),
            format!("{}", cold.stats.slices),
            format!("{}", seeded.stats.slices),
            format!("{}", seeded.stats.slices < cold.stats.slices),
        ]);
        knowledge_json.push_str(&format!(
            "      \"{name}\": {{ \"tables\": {}, \"cold_slices\": {}, \
             \"seeded_slices\": {} }}{}\n",
            query.num_tables(),
            cold.stats.slices,
            seeded.stats.slices,
            if hi + 1 < held_out.len() { "," } else { "" },
        ));
    }
    knowledge_json.push_str(&format!(
        "    }},\n    \"improved\": {improved},\n    \"held_out\": {}\n  }}",
        held_out.len(),
    ));
    print_table(
        "Knowledge priors: held-out templates (never executed), cold vs prior-seeded first run",
        &[
            "template",
            "tables",
            "cold slices",
            "seeded slices",
            "improved",
        ],
        &rows,
    );
    println!(
        "  ({ktables} table + {kedges} edge entries transferred; {improved}/{} held-out \
         templates improved)",
        held_out.len()
    );
    assert!(
        improved * 4 >= held_out.len() * 3,
        "knowledge priors regressed: only {improved}/{} held-out templates improved",
        held_out.len()
    );
    std::fs::remove_file(&knowledge_file).ok();

    // ---- 4. Concurrency: 4 sessions vs serial ------------------------
    const SESSIONS: usize = 4;
    // Serial baseline: every query once, one session.
    let serial_svc = make_service(wl.catalog.clone(), threads);
    let serial_start = Instant::now();
    let mut serial_results = Vec::new();
    {
        let mut session = serial_svc.session();
        for nq in &wl.queries {
            serial_results.push(execute_query(&mut session, &nq.query).table);
        }
    }
    let serial_wall = serial_start.elapsed();

    // Concurrent: the same query list, striped across 4 sessions.
    let conc_svc = make_service(wl.catalog.clone(), threads);
    let queries: Arc<Vec<_>> = Arc::new(wl.queries.iter().map(|nq| nq.query.clone()).collect());
    let conc_start = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..SESSIONS {
        let svc = conc_svc.clone();
        let queries = queries.clone();
        handles.push(std::thread::spawn(move || {
            let mut session = svc.session();
            let mut results = Vec::new();
            for i in (worker..queries.len()).step_by(SESSIONS) {
                results.push((i, execute_query(&mut session, &queries[i]).table));
            }
            results
        }));
    }
    let mut concurrent_results: Vec<Option<ResultTable>> = vec![None; wl.queries.len()];
    for h in handles {
        for (i, t) in h.join().expect("session thread") {
            concurrent_results[i] = Some(t);
        }
    }
    let conc_wall = conc_start.elapsed();

    let mut identical = true;
    for (i, (s, c)) in serial_results.iter().zip(&concurrent_results).enumerate() {
        let c = c.as_ref().expect("all queries ran");
        if !c.same_rows(s) {
            identical = false;
            eprintln!("MISMATCH on {}", wl.queries[i].id);
        }
    }
    assert!(identical, "concurrent results diverged from serial");

    let n = wl.queries.len() as f64;
    let serial_qps = n / serial_wall.as_secs_f64().max(1e-9);
    let conc_qps = n / conc_wall.as_secs_f64().max(1e-9);
    let stats = conc_svc.stats();
    print_table(
        "Concurrent serving: 4 sessions vs serial (full JOB-like query set)",
        &["mode", "wall", "qps", "identical"],
        &[
            vec![
                "serial".into(),
                fmt_duration(serial_wall),
                format!("{serial_qps:.1}"),
                "—".into(),
            ],
            vec![
                format!("{SESSIONS} sessions"),
                fmt_duration(conc_wall),
                format!("{conc_qps:.1}"),
                format!("{identical}"),
            ],
        ],
    );
    println!(
        "  service counters: {} queries, {} cache hits, {} warm starts",
        stats.queries, stats.cache.hits, stats.warm_starts
    );

    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let concurrency_json = format!(
        "{{\n    \"workload\": \"JOB-like scale={scale} seed={seed}, {} queries\",\n    \
         \"host_cores\": {host_cores},\n    \"core_budget\": {threads},\n    \
         \"sessions\": {SESSIONS},\n    \"serial_wall_ms\": {},\n    \
         \"concurrent_wall_ms\": {},\n    \"serial_qps\": {serial_qps:.1},\n    \
         \"concurrent_qps\": {conc_qps:.1},\n    \"identical_to_serial\": {identical}\n  }}",
        wl.queries.len(),
        serial_wall.as_millis(),
        conc_wall.as_millis(),
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    upsert_bench_json(&path, "service_learning", &learning_json).expect("write BENCH_service.json");
    upsert_bench_json(&path, "service_persistence", &persistence_json)
        .expect("write BENCH_service.json");
    upsert_bench_json(&path, "service_concurrency", &concurrency_json)
        .expect("write BENCH_service.json");
    upsert_bench_json(&path, "knowledge_priors", &knowledge_json)
        .expect("write BENCH_service.json");
    println!("\nrecorded → {}", path.display());
}

/// Four held-out templates: join shapes the 33 training templates never
/// use (novel FROM sets), built from tables and join edges they *do*
/// use — the transfer case the knowledge store exists for.
fn held_out_queries(
    catalog: &skinner_storage::Catalog,
) -> Vec<(&'static str, skinner_query::Query)> {
    use skinner_query::{AggFunc, Expr, QueryBuilder};
    let mut out = Vec::new();

    // Companies + info branches together (trained shapes keep them in
    // separate templates).
    let mut qb = QueryBuilder::new(catalog);
    for (t, a) in [
        ("title", "t"),
        ("movie_companies", "mc"),
        ("company_name", "cn"),
        ("movie_info", "mi"),
        ("info_type", "it"),
    ] {
        qb.table_as(t, a).unwrap();
    }
    for (a, b) in [
        ("t.id", "mc.movie_id"),
        ("mc.company_id", "cn.id"),
        ("t.id", "mi.movie_id"),
        ("mi.info_type_id", "it.id"),
    ] {
        let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
        qb.filter(j);
    }
    let f = qb.col("cn.country_code").unwrap().eq(Expr::lit("us"));
    qb.filter(f);
    let f = qb.col("t.kind_id").unwrap().eq(Expr::lit(2i64));
    qb.filter(f);
    let f = qb.col("mi.info_val").unwrap().lt(Expr::lit(340i64));
    qb.filter(f);
    let y = qb.col("t.production_year").unwrap();
    qb.select_agg(AggFunc::Min, Some(y), "min_year");
    out.push(("held-companies-info", qb.build().expect("held-out query")));

    // Cast chain + keywords, without the company branch.
    let mut qb = QueryBuilder::new(catalog);
    for (t, a) in [
        ("title", "t"),
        ("cast_info", "ci"),
        ("name", "n"),
        ("movie_keyword", "mk"),
        ("keyword", "k"),
    ] {
        qb.table_as(t, a).unwrap();
    }
    for (a, b) in [
        ("t.id", "ci.movie_id"),
        ("ci.person_id", "n.id"),
        ("t.id", "mk.movie_id"),
        ("mk.keyword_id", "k.id"),
    ] {
        let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
        qb.filter(j);
    }
    let f = qb.col("n.gender").unwrap().eq(Expr::lit("f"));
    qb.filter(f);
    let f = qb.col("ci.role_id").unwrap().le(Expr::lit(0i64));
    qb.filter(f);
    let f = qb.col("k.bucket").unwrap().eq(Expr::lit(7i64));
    qb.filter(f);
    let f = qb.col("t.votes").unwrap().gt(Expr::lit(60i64));
    qb.filter(f);
    let y = qb.col("t.production_year").unwrap();
    qb.select_agg(AggFunc::Min, Some(y), "min_year");
    out.push(("held-cast-keywords", qb.build().expect("held-out query")));

    // Both info fact tables, no info_type dimension.
    let mut qb = QueryBuilder::new(catalog);
    for (t, a) in [
        ("title", "t"),
        ("movie_info", "mi"),
        ("movie_info_idx", "mx"),
    ] {
        qb.table_as(t, a).unwrap();
    }
    for (a, b) in [
        ("t.id", "mi.movie_id"),
        ("t.id", "mx.movie_id"),
        ("mi.movie_id", "mx.movie_id"),
    ] {
        let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
        qb.filter(j);
    }
    let f = qb.col("mi.info_val").unwrap().lt(Expr::lit(120i64));
    qb.filter(f);
    let f = qb.col("t.votes").unwrap().gt(Expr::lit(100i64));
    qb.filter(f);
    let v = qb.col("mx.info_val").unwrap();
    qb.select_agg(AggFunc::Min, Some(v), "min_val");
    out.push(("held-info-branches", qb.build().expect("held-out query")));

    // The 6-way cast template minus its keyword branch.
    let mut qb = QueryBuilder::new(catalog);
    for (t, a) in [
        ("title", "t"),
        ("cast_info", "ci"),
        ("name", "n"),
        ("movie_companies", "mc"),
        ("company_name", "cn"),
    ] {
        qb.table_as(t, a).unwrap();
    }
    for (a, b) in [
        ("t.id", "ci.movie_id"),
        ("ci.person_id", "n.id"),
        ("t.id", "mc.movie_id"),
        ("mc.company_id", "cn.id"),
        ("ci.movie_id", "mc.movie_id"),
    ] {
        let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
        qb.filter(j);
    }
    let f = qb.col("n.gender").unwrap().eq(Expr::lit("f"));
    qb.filter(f);
    let f = qb.col("ci.role_id").unwrap().le(Expr::lit(0i64));
    qb.filter(f);
    let f = qb.col("t.votes").unwrap().gt(Expr::lit(60i64));
    qb.filter(f);
    let f = qb.col("mc.company_type_id").unwrap().eq(Expr::lit(1i64));
    qb.filter(f);
    let y = qb.col("t.production_year").unwrap();
    qb.select_agg(AggFunc::Min, Some(y), "min_year");
    out.push(("held-cast-companies", qb.build().expect("held-out query")));

    out
}

/// Execute a pre-built query through a session (the service's SQL entry
/// point is bypassed because workload queries are built programmatically;
/// the template cache and admission path are identical).
fn execute_query(
    session: &mut skinner_service::Session,
    query: &skinner_query::Query,
) -> skinner_core::QueryResult {
    session.execute_query(query).expect("workload query")
}
