//! Tables 1/2 + Figure 6: the Join Order Benchmark (JOB-like).
//!
//! Usage:
//!   exp_job [--threads N] [--figures]
//!
//! Prints, per approach, total/max wall time and total/max measured
//! intermediate-result cardinality over the 33 JOB-like queries — the
//! shape of the paper's Tables 1 (single-threaded) and 2 (multi-
//! threaded). With `--figures`, additionally prints the Figure 6 series:
//! cumulative execution-time share of the top-k most expensive queries
//! for MonetDB(sim) and per-query Skinner-C speedups vs. MonetDB(sim).

use skinner_bench::approaches::EngineKind;
use skinner_bench::{env_scale, env_seed, env_threads, env_timeout, fmt_duration, print_table};
use skinner_bench::{run_approach, Approach, RunOutcome};
use skinner_workloads::job;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = env_threads(1);
    let figures = args.iter().any(|a| a == "--figures");

    let scale = env_scale(0.04);
    let cap = env_timeout(3_000);
    let wl = job::generate(scale, env_seed());
    println!(
        "JOB-like workload: scale={scale}, {} queries, cap={} per query, threads={threads}",
        wl.queries.len(),
        fmt_duration(cap)
    );

    let approaches: Vec<Approach> = if threads <= 1 {
        vec![
            Approach::SkinnerC {
                budget: 500,
                threads: 1,
                indexes: true,
            },
            Approach::PgSim,
            Approach::SkinnerG {
                engine: EngineKind::Pg,
                random: false,
            },
            Approach::SkinnerH {
                engine: EngineKind::Pg,
                random: false,
            },
            Approach::MonetSim { threads: 1 },
            Approach::SkinnerG {
                engine: EngineKind::Monet,
                random: false,
            },
            Approach::SkinnerH {
                engine: EngineKind::Monet,
                random: false,
            },
        ]
    } else {
        vec![
            Approach::SkinnerC {
                budget: 500,
                threads,
                indexes: true,
            },
            Approach::MonetSim { threads },
            Approach::SkinnerG {
                engine: EngineKind::Monet,
                random: false,
            },
            Approach::SkinnerH {
                engine: EngineKind::Monet,
                random: false,
            },
        ]
    };

    let mut rows = Vec::new();
    let mut per_query: Vec<Vec<RunOutcome>> = vec![Vec::new(); approaches.len()];
    for (ai, approach) in approaches.iter().enumerate() {
        let mut total = Duration::ZERO;
        let mut max_t = Duration::ZERO;
        let mut total_card = 0u64;
        let mut max_card = 0u64;
        let mut has_card = true;
        let mut timeouts = 0usize;
        let verbose = std::env::var("SKINNER_VERBOSE").is_ok();
        for nq in &wl.queries {
            if verbose {
                eprintln!("[{}] {} ...", approach.name(), nq.id);
            }
            let out = run_approach(*approach, &nq.query, cap);
            if verbose {
                eprintln!(
                    "[{}] {} done in {}",
                    approach.name(),
                    nq.id,
                    fmt_duration(out.time)
                );
            }
            total += out.time;
            max_t = max_t.max(out.time);
            match out.cout {
                Some(c) => {
                    total_card += c;
                    max_card = max_card.max(c);
                }
                None => has_card = false,
            }
            if out.timed_out {
                timeouts += 1;
            }
            per_query[ai].push(out);
        }
        rows.push(vec![
            approach.name(),
            format!(
                "{}{}",
                if timeouts > 0 { "≥" } else { "" },
                fmt_duration(total)
            ),
            if has_card {
                format!("{:.1}M", total_card as f64 / 1e6)
            } else {
                "N/A".into()
            },
            fmt_duration(max_t),
            if has_card {
                format!("{:.2}M", max_card as f64 / 1e6)
            } else {
                "N/A".into()
            },
            format!("{timeouts}"),
        ]);
    }
    let title = if threads <= 1 {
        "Table 1: JOB — single-threaded"
    } else {
        "Table 2: JOB — multi-threaded"
    };
    print_table(
        title,
        &[
            "Approach",
            "Total Time",
            "Total Card.",
            "Max Time",
            "Max Card.",
            "Timeouts",
        ],
        &rows,
    );

    if figures {
        // Figure 6a: cumulative share of total MonetDB(sim) time in its
        // top-k most expensive queries.
        let monet_idx = approaches
            .iter()
            .position(|a| matches!(a, Approach::MonetSim { .. }))
            .expect("MonetSim present");
        let skinner_idx = approaches
            .iter()
            .position(|a| matches!(a, Approach::SkinnerC { .. }))
            .expect("SkinnerC present");
        let mut monet_times: Vec<(usize, Duration)> = per_query[monet_idx]
            .iter()
            .enumerate()
            .map(|(i, o)| (i, o.time))
            .collect();
        monet_times.sort_by_key(|&(_, t)| std::cmp::Reverse(t));
        let total: f64 = monet_times.iter().map(|(_, t)| t.as_secs_f64()).sum();
        let mut cum = 0.0;
        let mut rows = Vec::new();
        for (rank, (qi, t)) in monet_times.iter().enumerate().take(10) {
            cum += t.as_secs_f64();
            rows.push(vec![
                format!("{}", rank + 1),
                wl.queries[*qi].id.clone(),
                fmt_duration(*t),
                format!("{:.1}%", 100.0 * cum / total.max(1e-12)),
            ]);
        }
        print_table(
            "Figure 6a: MonetDB(sim) time share of top-k queries",
            &["k", "query", "time", "cumulative share"],
            &rows,
        );

        // Figure 6b: per-query Skinner-C speedup vs MonetDB(sim) time.
        let mut rows = Vec::new();
        for (qi, nq) in wl.queries.iter().enumerate() {
            let mt = per_query[monet_idx][qi].time.as_secs_f64();
            let st = per_query[skinner_idx][qi].time.as_secs_f64().max(1e-9);
            rows.push(vec![
                nq.id.clone(),
                fmt_duration(per_query[monet_idx][qi].time),
                format!("{:.2}x", mt / st),
            ]);
        }
        print_table(
            "Figure 6b: Skinner-C speedup vs. MonetDB(sim) per query",
            &["query", "MonetDB time", "speedup"],
            &rows,
        );
    }
}
