//! Figure 10: the Correlation Torture benchmark (after Wu et al.).
//!
//! Chain queries over skewed, correlated data: every join edge carries
//! identical statistics, but the edge at position `m` is empty while the
//! others fan out. `m = 1` (beginning) and `m = nrTables/2` (middle) are
//! the two paper configurations.

use skinner_bench::approaches::EngineKind;
use skinner_bench::{env_threads, env_timeout, fmt_duration, print_table, run_approach, Approach};
use skinner_workloads::torture::correlation_torture;

fn main() {
    let cap = env_timeout(2_000);
    let threads = env_threads(1);
    let rows = std::env::var("SKINNER_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5_000usize);
    let fanout = 8;

    let approaches = vec![
        Approach::SkinnerC {
            budget: 500,
            threads,
            indexes: true,
        },
        Approach::Eddy,
        Approach::MonetSim { threads: 1 },
        Approach::Reopt,
        Approach::PgSim,
        Approach::SkinnerG {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::SkinnerH {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::ComSim,
    ];

    for (label, pos_of) in [
        (
            "m = 1",
            Box::new(|_m: usize| 0usize) as Box<dyn Fn(usize) -> usize>,
        ),
        (
            "m = nrTables/2",
            Box::new(|m: usize| (m / 2).saturating_sub(1)),
        ),
    ] {
        let mut table = Vec::new();
        for m in [4usize, 6, 8, 10] {
            let case = correlation_torture(m, rows, pos_of(m).min(m - 2), fanout);
            let mut row = vec![format!("{m}")];
            for approach in &approaches {
                let out = run_approach(*approach, &case.query.query, cap);
                row.push(if out.timed_out {
                    format!("≥{}", fmt_duration(cap))
                } else {
                    fmt_duration(out.time)
                });
            }
            table.push(row);
        }
        let mut headers: Vec<&str> = vec!["#tables"];
        let names: Vec<String> = approaches.iter().map(|a| a.name()).collect();
        headers.extend(names.iter().map(String::as_str));
        print_table(
            &format!(
                "Figure 10: correlation torture — {label}, {rows} tuples/table (cap {})",
                fmt_duration(cap)
            ),
            &headers,
            &table,
        );
    }
}
