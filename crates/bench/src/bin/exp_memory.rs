//! Figure 8: memory consumption of Skinner-C's auxiliary structures.
//!
//! Reports, grouped by query size (#joined tables): UCT tree nodes (8a),
//! progress-trie nodes (8b), result tuple-index count (8c), and the
//! combined byte footprint (8d).

use skinner_bench::{env_scale, env_seed, print_table};
use skinner_engine::{SkinnerC, SkinnerCConfig};
use skinner_storage::FxHashMap;
use skinner_workloads::job;

fn main() {
    let scale = env_scale(0.04);
    let wl = job::generate(scale, env_seed());
    println!(
        "Memory profile over {} JOB-like queries (scale={scale})",
        wl.queries.len()
    );

    // group by #tables → (count, uct nodes, trie nodes, result tuples, bytes)
    let mut groups: FxHashMap<usize, (usize, u64, u64, u64, u64)> = FxHashMap::default();
    let threads = skinner_bench::env_threads(1);
    for nq in &wl.queries {
        let out = SkinnerC::new(SkinnerCConfig {
            threads,
            ..Default::default()
        })
        .run(&nq.query);
        let m = &out.metrics;
        let e = groups.entry(nq.query.num_tables()).or_default();
        e.0 += 1;
        e.1 += m.uct_nodes as u64;
        e.2 += m.tracker_nodes as u64;
        e.3 += m.result_tuples as u64;
        e.4 += m.total_aux_bytes() as u64;
    }
    let mut sizes: Vec<usize> = groups.keys().copied().collect();
    sizes.sort_unstable();
    let rows: Vec<Vec<String>> = sizes
        .iter()
        .map(|m| {
            let (n, uct, trie, res, bytes) = groups[m];
            vec![
                format!("{m}"),
                format!("{n}"),
                format!("{}", uct / n as u64),
                format!("{}", trie / n as u64),
                format!("{}", res / n as u64),
                format!("{:.3}", bytes as f64 / n as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "Figure 8: Skinner-C memory by query size (averages per group)",
        &[
            "#tables",
            "queries",
            "UCT nodes (8a)",
            "trie nodes (8b)",
            "result indices (8c)",
            "aux MB (8d)",
        ],
        &rows,
    );
}
