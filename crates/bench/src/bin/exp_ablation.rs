//! Tables 5/6: ablations.
//!
//! Table 5 — replacing reinforcement learning by randomization, for
//! Skinner-C and Skinner-H on both simulated engines.
//! Table 6 — Skinner-C feature knockout: indexes, parallel
//! pre-processing, learning.

use skinner_bench::approaches::EngineKind;
use skinner_bench::{
    env_scale, env_seed, env_timeout, fmt_duration, print_table, run_approach, Approach,
};
use skinner_workloads::job;
use std::time::Duration;

fn main() {
    let scale = env_scale(0.03);
    let cap = env_timeout(3_000);
    let wl = job::generate(scale, env_seed());
    println!(
        "Ablations over {} JOB-like queries (scale={scale})",
        wl.queries.len()
    );

    // Table 5: learning vs randomization.
    let pairs: Vec<(&str, Approach, Approach)> = vec![
        (
            "Skinner-C",
            Approach::SkinnerC {
                budget: 500,
                threads: 1,
                indexes: true,
            },
            Approach::SkinnerCRandom { budget: 500 },
        ),
        (
            "Skinner-H(PG)",
            Approach::SkinnerH {
                engine: EngineKind::Pg,
                random: false,
            },
            Approach::SkinnerH {
                engine: EngineKind::Pg,
                random: true,
            },
        ),
        (
            "Skinner-H(MDB)",
            Approach::SkinnerH {
                engine: EngineKind::Monet,
                random: false,
            },
            Approach::SkinnerH {
                engine: EngineKind::Monet,
                random: true,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, learned, random) in pairs {
        for (tag, approach) in [("Original", learned), ("Random", random)] {
            let mut total = Duration::ZERO;
            let mut max = Duration::ZERO;
            let mut timeouts = 0;
            for nq in &wl.queries {
                let out = run_approach(approach, &nq.query, cap);
                total += out.time;
                max = max.max(out.time);
                timeouts += out.timed_out as usize;
            }
            rows.push(vec![
                label.to_string(),
                tag.to_string(),
                format!(
                    "{}{}",
                    if timeouts > 0 { "≥" } else { "" },
                    fmt_duration(total)
                ),
                fmt_duration(max),
            ]);
        }
    }
    print_table(
        "Table 5: reinforcement learning vs. randomization",
        &["Engine", "Optimizer", "Time", "Max Time"],
        &rows,
    );

    // Table 6: feature knockout.
    let features: Vec<(&str, Approach)> = vec![
        (
            "indexes, parallelization, learning",
            Approach::SkinnerC {
                budget: 500,
                threads: 4,
                indexes: true,
            },
        ),
        (
            "parallelization, learning",
            Approach::SkinnerC {
                budget: 500,
                threads: 4,
                indexes: false,
            },
        ),
        (
            "learning",
            Approach::SkinnerC {
                budget: 500,
                threads: 1,
                indexes: false,
            },
        ),
        ("none", Approach::SkinnerCRandom { budget: 500 }),
    ];
    let mut rows = Vec::new();
    for (label, approach) in features {
        let mut total = Duration::ZERO;
        let mut max = Duration::ZERO;
        for nq in &wl.queries {
            let out = run_approach(approach, &nq.query, cap);
            total += out.time;
            max = max.max(out.time);
        }
        rows.push(vec![
            label.to_string(),
            fmt_duration(total),
            fmt_duration(max),
        ]);
    }
    print_table(
        "Table 6: impact of SkinnerDB features",
        &["Enabled Features", "Total Time", "Max Time"],
        &rows,
    );
}
