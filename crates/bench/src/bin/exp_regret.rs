//! §5 sanity: empirical regret against the theoretical bounds.
//!
//! Theorem 5.10 bounds the ratio of Skinner-C's expected execution time
//! to the optimal join order's time by (asymptotically) `m`, the number
//! of joined tables. This experiment measures the actual ratio on the
//! JOB-like workload: Skinner-C's full run (learning included) vs. a
//! replay of the certified C_out-optimal order on the same engine. The
//! paper's observation — "actual performance is significantly better
//! than our theoretical worst-case guarantees" — should hold here too.

use skinner_bench::{env_scale, env_seed, fmt_duration, print_table};
use skinner_engine::multiway::ResultSet;
use skinner_engine::{MultiwayJoin, PreparedQuery, SkinnerC, SkinnerCConfig};
use skinner_query::{Query, TableId};
use skinner_simdb::optimal_order;
use skinner_workloads::job;
use std::time::{Duration, Instant};

fn replay(query: &Query, order: &[TableId]) -> Duration {
    let start = Instant::now();
    let pq = PreparedQuery::new(query, true, 1);
    if pq.any_empty() {
        return start.elapsed();
    }
    let plan = pq.plan_order(order);
    let mut join = MultiwayJoin::new(&pq);
    let offsets = vec![0u32; query.num_tables()];
    let mut state = offsets.clone();
    let mut rs = ResultSet::new();
    join.continue_join(order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
    start.elapsed()
}

fn main() {
    let scale = env_scale(0.03);
    let wl = job::generate(scale, env_seed());
    println!(
        "Regret check over {} queries (scale={scale})",
        wl.queries.len()
    );

    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for nq in &wl.queries {
        let m = nq.query.num_tables();
        let sk_start = Instant::now();
        let sk = SkinnerC::new(SkinnerCConfig::default()).run(&nq.query);
        let sk_time = sk_start.elapsed();
        let opt = optimal_order(&nq.query, Some(&sk.final_order), 100_000_000);
        let opt_time = replay(&nq.query, &opt.order);
        let ratio = sk_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9);
        worst = worst.max(ratio);
        rows.push(vec![
            nq.id.clone(),
            format!("{m}"),
            fmt_duration(sk_time),
            fmt_duration(opt_time),
            format!("{ratio:.2}"),
            format!("{m}"),
        ]);
    }
    print_table(
        "Theorem 5.10: measured time ratio vs. the asymptotic bound m",
        &["query", "m", "Skinner-C", "optimal order", "ratio", "bound"],
        &rows,
    );
    println!("\nworst measured ratio: {worst:.2} (bounds are per-query m)");
}
