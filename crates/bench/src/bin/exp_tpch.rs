//! Figure 13 + Table 7: TPC-H and TPC-H with UDFs.
//!
//! Per-query times for both variants plus the summary (total time and
//! maximal per-query overhead relative to the best approach on each
//! query). The paper's finding: MonetDB wins the standard variant;
//! Skinner-C wins once predicates become opaque UDFs.

use skinner_bench::approaches::EngineKind;
use skinner_bench::{
    env_scale, env_seed, env_threads, env_timeout, fmt_duration, print_table, run_approach,
    Approach,
};
use skinner_workloads::tpch;
use std::time::Duration;

fn main() {
    let sf = env_scale(0.004);
    let threads = env_threads(1);
    let cap = env_timeout(4_000);
    let catalog = tpch::generate(sf, env_seed());
    println!(
        "TPC-H dbgen-lite sf={sf}: lineitem has {} rows",
        catalog.get("lineitem").unwrap().num_rows()
    );

    let approaches = [
        Approach::SkinnerC {
            budget: 500,
            threads,
            indexes: true,
        },
        Approach::PgSim,
        Approach::SkinnerG {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::SkinnerH {
            engine: EngineKind::Pg,
            random: false,
        },
        Approach::MonetSim { threads: 1 },
    ];

    for (scenario, udf) in [("TPC-H", false), ("TPC-UDF", true)] {
        let queries = tpch::queries(&catalog, udf, 200);
        let mut per_query: Vec<Vec<Duration>> = vec![Vec::new(); approaches.len()];
        let mut timed_out = vec![0usize; approaches.len()];

        let mut table = Vec::new();
        for nq in &queries {
            let mut row = vec![nq.id.clone()];
            for (ai, approach) in approaches.iter().enumerate() {
                let out = run_approach(*approach, &nq.query, cap);
                per_query[ai].push(out.time);
                timed_out[ai] += out.timed_out as usize;
                row.push(if out.timed_out {
                    format!("≥{}", fmt_duration(cap))
                } else {
                    fmt_duration(out.time)
                });
            }
            table.push(row);
        }
        let mut headers: Vec<&str> = vec!["Query"];
        let names: Vec<String> = approaches.iter().map(|a| a.name()).collect();
        headers.extend(names.iter().map(String::as_str));
        print_table(
            &format!("Figure 13: per-query times — {scenario}"),
            &headers,
            &table,
        );

        // Table 7 summary: total time + max relative overhead.
        let mut rows = Vec::new();
        for (ai, approach) in approaches.iter().enumerate() {
            let total: Duration = per_query[ai].iter().sum();
            let mut max_rel = 0.0f64;
            for (q, mine) in per_query[ai].iter().enumerate() {
                let best = (0..approaches.len())
                    .map(|a| per_query[a][q].as_secs_f64())
                    .fold(f64::INFINITY, f64::min)
                    .max(1e-9);
                max_rel = max_rel.max(mine.as_secs_f64() / best);
            }
            rows.push(vec![
                scenario.to_string(),
                approach.name(),
                format!(
                    "{}{}",
                    if timed_out[ai] > 0 { "≥" } else { "" },
                    fmt_duration(total)
                ),
                format!("{max_rel:.0}"),
            ]);
        }
        print_table(
            &format!("Table 7: summary — {scenario}"),
            &["Scenario", "Approach", "Time", "Max. Rel."],
            &rows,
        );
    }
}
