//! Codegen-tier coverage check: every order of the composite-key
//! (`workloads::correlated`) and NULL-heavy string-keyed
//! (`workloads::nulls`) workloads must execute on a compiled kernel —
//! these are exactly the shapes that used to take the plan-bound
//! fallback before fused (`FusedEq`) and string/nullable (`KeyEq`)
//! jumps compiled.
//!
//! Per workload it runs every query twice — codegen on and codegen
//! off — asserts identical result counts, and prints one summary line
//! of `ExecMetrics` tier counters. CI greps the output for
//! `fallback_orders=0` (and the process exits non-zero on any
//! fallback or result divergence, so the grep is belt and braces).

use skinner_bench::{env_scale, env_seed, env_threads};
use skinner_engine::{SkinnerC, SkinnerCConfig};
use skinner_workloads::{correlated, nulls, NamedQuery};

fn run_suite(label: &str, queries: &[NamedQuery], threads: usize) -> bool {
    let mut codegen_orders = 0u64;
    let mut fallback_orders = 0u64;
    let mut codegen_slices = 0u64;
    let mut ok = true;
    for nq in queries {
        let cfg = |codegen: bool| SkinnerCConfig {
            budget: 64,
            threads,
            codegen,
            ..Default::default()
        };
        let with = SkinnerC::new(cfg(true)).run(&nq.query);
        let without = SkinnerC::new(cfg(false)).run(&nq.query);
        if with.result_count != without.result_count {
            println!(
                "{label}/{}: DIVERGED codegen={} plan-bound={}",
                nq.id, with.result_count, without.result_count
            );
            ok = false;
        }
        if with.metrics.codegen_orders == 0 {
            println!("{label}/{}: never compiled an order", nq.id);
            ok = false;
        }
        codegen_orders += with.metrics.codegen_orders as u64;
        fallback_orders += with.metrics.fallback_orders as u64;
        codegen_slices += with.metrics.codegen_slices;
    }
    println!(
        "{label}: queries={} codegen_orders={codegen_orders} \
         fallback_orders={fallback_orders} codegen_slices={codegen_slices}",
        queries.len()
    );
    ok && fallback_orders == 0
}

fn main() {
    let scale = env_scale(0.03);
    let seed = env_seed();
    let threads = env_threads(1);

    let corr = correlated::generate(scale, seed);
    let nul = nulls::generate(scale / 2.0, seed.wrapping_add(1));
    let mut ok = run_suite("correlated", &corr.queries, threads);
    ok &= run_suite("nulls", &nul.queries, threads);

    if !ok {
        eprintln!("codegen-tier coverage check FAILED");
        std::process::exit(1);
    }
    println!("codegen-tier coverage OK");
}
