//! # skinner-bench
//!
//! Harness regenerating every table and figure of the SkinnerDB paper's
//! evaluation. Each `exp_*` binary in `src/bin/` prints the rows/series
//! of one experiment; this library holds the shared plumbing: a unified
//! runner over all approaches (Skinner variants, simulated engines,
//! baselines), wall-clock capping, and plain-text table output.
//!
//! Environment knobs (all optional):
//!
//! * `SKINNER_SCALE` — multiplies workload sizes (default per binary),
//! * `SKINNER_TIMEOUT_MS` — per-query cap for baseline engines,
//! * `SKINNER_SEED` — workload seed,
//! * `SKINNER_THREADS` / `--threads N` — Skinner-C worker threads
//!   (pre-processing filters and the partitioned join phase).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approaches;
pub mod report;

pub use approaches::{run_approach, Approach, RunOutcome};
pub use report::{fmt_duration, print_table, upsert_bench_json};

use std::time::Duration;

/// Read `SKINNER_SCALE` (default `default`).
pub fn env_scale(default: f64) -> f64 {
    std::env::var("SKINNER_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Read `SKINNER_TIMEOUT_MS` (default `default_ms`).
pub fn env_timeout(default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var("SKINNER_TIMEOUT_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Read `SKINNER_SEED` (default 42).
pub fn env_seed() -> u64 {
    std::env::var("SKINNER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Skinner-C worker threads for an experiment binary: the `--threads N`
/// command-line flag wins, then the `SKINNER_THREADS` environment
/// variable, then `default`. Feeds both the pre-processing filter
/// scans and the offset-range-partitioned join phase.
pub fn env_threads(default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    let n = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            std::env::var("SKINNER_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(default);
    n.max(1)
}
