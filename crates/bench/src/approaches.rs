//! Unified runner over every approach the experiments compare.

use skinner_baselines::{Eddy, EddyConfig, Reoptimizer};
use skinner_core::{SkinnerGConfig, SkinnerGSession, SkinnerH, SkinnerHConfig};
use skinner_engine::{OrderPolicy, SkinnerC, SkinnerCConfig};
use skinner_query::{Query, TableId};
use skinner_simdb::exec::ExecOptions;
use skinner_simdb::{AdaptiveEngine, ColEngine, Engine, RowEngine};
use std::time::{Duration, Instant};

/// Every approach the paper's experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Skinner-C with UCT (optionally parallel pre-processing).
    SkinnerC {
        /// Slice budget b.
        budget: u64,
        /// Pre-processing threads.
        threads: usize,
        /// Hash indexes on equi columns.
        indexes: bool,
    },
    /// Skinner-C with random order selection (Table 5).
    SkinnerCRandom {
        /// Slice budget b.
        budget: u64,
    },
    /// Simulated Postgres with its own optimizer.
    PgSim,
    /// Simulated MonetDB with its own optimizer.
    MonetSim {
        /// Worker threads.
        threads: usize,
    },
    /// Simulated commercial adaptive engine.
    ComSim,
    /// Skinner-G over the given engine kind.
    SkinnerG {
        /// Underlying engine.
        engine: EngineKind,
        /// Random instead of UCT orders (Table 5).
        random: bool,
    },
    /// Skinner-H over the given engine kind.
    SkinnerH {
        /// Underlying engine.
        engine: EngineKind,
        /// Random instead of UCT orders (Table 5).
        random: bool,
    },
    /// Eddies baseline.
    Eddy,
    /// Sampling-based re-optimizer baseline.
    Reopt,
}

/// Which simulated engine Skinner-G/H wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Row store ("Postgres").
    Pg,
    /// Vectorized column store ("MonetDB").
    Monet,
    /// Adaptive commercial engine ("ComDB").
    Com,
}

impl EngineKind {
    fn build(self, threads: usize) -> Box<dyn Engine> {
        match self {
            EngineKind::Pg => Box::new(RowEngine::new()),
            EngineKind::Monet => Box::new(ColEngine::with_threads(threads)),
            EngineKind::Com => Box::new(AdaptiveEngine::new()),
        }
    }
}

impl Approach {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> String {
        match self {
            Approach::SkinnerC { threads, .. } if *threads > 1 => "Skinner-C(par)".into(),
            Approach::SkinnerC { .. } => "Skinner-C".into(),
            Approach::SkinnerCRandom { .. } => "Skinner-C(rand)".into(),
            Approach::PgSim => "Postgres(sim)".into(),
            Approach::MonetSim { threads } if *threads > 1 => "MonetDB(sim,par)".into(),
            Approach::MonetSim { .. } => "MonetDB(sim)".into(),
            Approach::ComSim => "ComDB(sim)".into(),
            Approach::SkinnerG { engine, random } => format!(
                "S-G({}){}",
                engine_tag(*engine),
                if *random { "-rand" } else { "" }
            ),
            Approach::SkinnerH { engine, random } => format!(
                "S-H({}){}",
                engine_tag(*engine),
                if *random { "-rand" } else { "" }
            ),
            Approach::Eddy => "Eddy".into(),
            Approach::Reopt => "Reoptimizer".into(),
        }
    }
}

fn engine_tag(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Pg => "PG",
        EngineKind::Monet => "MDB",
        EngineKind::Com => "Com",
    }
}

/// Outcome of running one approach on one query.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Wall time (capped at the timeout when `timed_out`).
    pub time: Duration,
    /// Result tuple count (0 when timed out).
    pub result_count: u64,
    /// Measured intermediate cardinality, when the approach reports one.
    pub cout: Option<u64>,
    /// Final join order, when the approach reports one.
    pub final_order: Option<Vec<TableId>>,
    /// The approach hit the cap before finishing.
    pub timed_out: bool,
    /// Engine-independent effort proxy: predicate evaluations (Eddy),
    /// multi-way join steps (Skinner-C), or C_out (engines).
    pub effort: u64,
}

/// Run `approach` on `query` with a wall-clock cap.
///
/// Approaches that support in-band deadlines (the engines) receive the
/// cap directly; the iterative approaches (Skinner variants, Eddy) are
/// run on the calling thread and reported as timed-out if they exceed the
/// cap (their loop granularity keeps overshoot small at benchmark
/// scales).
pub fn run_approach(approach: Approach, query: &Query, cap: Duration) -> RunOutcome {
    let start = Instant::now();
    match approach {
        Approach::SkinnerC {
            budget,
            threads,
            indexes,
        } => {
            let out = SkinnerC::new(SkinnerCConfig {
                budget,
                threads,
                use_indexes: indexes,
                ..Default::default()
            })
            .run(query);
            RunOutcome {
                time: start.elapsed(),
                result_count: out.result_count,
                cout: None,
                effort: out.metrics.steps,
                final_order: Some(out.final_order),
                timed_out: false,
            }
        }
        Approach::SkinnerCRandom { budget } => {
            let out = SkinnerC::new(SkinnerCConfig {
                budget,
                policy: OrderPolicy::Random,
                ..Default::default()
            })
            .run(query);
            RunOutcome {
                time: start.elapsed(),
                result_count: out.result_count,
                cout: None,
                effort: out.metrics.steps,
                final_order: Some(out.final_order),
                timed_out: false,
            }
        }
        Approach::PgSim | Approach::MonetSim { .. } | Approach::ComSim => {
            let engine: Box<dyn Engine> = match approach {
                Approach::PgSim => Box::new(RowEngine::new()),
                Approach::MonetSim { threads } => Box::new(ColEngine::with_threads(threads)),
                _ => Box::new(AdaptiveEngine::new()),
            };
            let opts = ExecOptions {
                deadline: Some(start + cap),
                ..Default::default()
            };
            let out = engine.execute(query, &opts);
            let timed_out = !out.completed();
            RunOutcome {
                time: if timed_out { cap } else { start.elapsed() },
                result_count: out.result_count,
                cout: Some(out.intermediate_cardinality),
                effort: out.intermediate_cardinality,
                final_order: Some(out.join_order),
                timed_out,
            }
        }
        Approach::SkinnerG { engine, random } => {
            let eng = engine.build(1);
            let cfg = SkinnerGConfig {
                random_orders: random,
                ..Default::default()
            };
            // Capped run: stop between iterations once the cap passes.
            let mut session = SkinnerGSession::new(eng.as_ref(), query, cfg);
            let mut capped = false;
            while !session.finished() {
                session.step();
                if start.elapsed() > cap {
                    capped = true;
                    break;
                }
            }
            let out = session.outcome();
            RunOutcome {
                time: if capped { cap } else { start.elapsed() },
                result_count: if capped { 0 } else { out.result_count },
                cout: None,
                effort: out.iterations,
                final_order: None,
                timed_out: capped,
            }
        }
        Approach::SkinnerH { engine, random } => {
            let eng = engine.build(1);
            let cfg = SkinnerHConfig {
                g: SkinnerGConfig {
                    random_orders: random,
                    ..Default::default()
                },
                ..Default::default()
            };
            let out = SkinnerH::new(eng.as_ref(), cfg).run(query);
            let timed_out = start.elapsed() > cap;
            RunOutcome {
                time: start.elapsed().min(cap * 2),
                result_count: out.result_count,
                cout: None,
                effort: out.learning_iterations + out.traditional_attempts as u64,
                final_order: None,
                timed_out,
            }
        }
        Approach::Eddy => {
            let out = Eddy::new(EddyConfig::default()).run(query);
            let timed_out = start.elapsed() > cap;
            RunOutcome {
                time: start.elapsed(),
                result_count: out.result_count,
                cout: None,
                effort: out.predicate_evals,
                final_order: None,
                timed_out,
            }
        }
        Approach::Reopt => {
            let opts = ExecOptions {
                deadline: Some(start + cap),
                ..Default::default()
            };
            let out = Reoptimizer::default().run(query, &opts);
            let timed_out = !out.completed();
            RunOutcome {
                time: if timed_out { cap } else { start.elapsed() },
                result_count: out.result_count,
                cout: Some(out.intermediate_cardinality),
                effort: out.intermediate_cardinality,
                final_order: Some(out.join_order),
                timed_out,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn setup() -> (Catalog, Query) {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>| {
            Table::new(
                name,
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(keys)],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..40).map(|i| i % 4).collect()));
        cat.register(mk("b", (0..20).map(|i| i % 4).collect()));
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_col("a.k").unwrap();
        let q = qb.build().unwrap();
        (cat, q)
    }

    #[test]
    fn all_approaches_agree() {
        let (_cat, q) = setup();
        let cap = Duration::from_secs(10);
        let expected = run_approach(Approach::PgSim, &q, cap).result_count;
        assert!(expected > 0);
        for approach in [
            Approach::SkinnerC {
                budget: 100,
                threads: 1,
                indexes: true,
            },
            Approach::SkinnerCRandom { budget: 100 },
            Approach::MonetSim { threads: 1 },
            Approach::MonetSim { threads: 2 },
            Approach::ComSim,
            Approach::SkinnerG {
                engine: EngineKind::Monet,
                random: false,
            },
            Approach::SkinnerH {
                engine: EngineKind::Pg,
                random: false,
            },
            Approach::Eddy,
            Approach::Reopt,
        ] {
            let out = run_approach(approach, &q, cap);
            assert!(!out.timed_out, "{} timed out", approach.name());
            assert_eq!(
                out.result_count,
                expected,
                "{} wrong count",
                approach.name()
            );
        }
    }
}
