//! Plain-text table output for experiment binaries.

use std::time::Duration;

/// Format a duration compactly (µs/ms/s chosen by magnitude).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Print an aligned table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
