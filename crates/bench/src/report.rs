//! Plain-text table output for experiment binaries, and the shared
//! `BENCH_*.json` writer.

use std::path::Path;
use std::time::Duration;

/// Format a duration compactly (µs/ms/s chosen by magnitude).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// Print an aligned table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Insert or replace one top-level section of a `BENCH_*.json` file,
/// preserving every other section.
///
/// The file is a flat JSON object mapping bench names to result objects
/// (`{"join_inner_loop": {...}, "join_parallel": {...}}`). Several bench
/// binaries record into the same file, so each rewrites only its own
/// key. `value` must be a self-contained JSON value (the benches pass
/// pre-indented object literals); no JSON dependency is available
/// offline, so this uses a minimal brace/string-aware splitter rather
/// than a full parser.
pub fn upsert_bench_json(path: &Path, key: &str, value: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut entries = parse_top_level(&existing);
    let value = value.trim().to_string();
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = value,
        None => entries.push((key.to_string(), value)),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        out.push_str(&format!("  \"{k}\": {v}"));
        out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Split a flat JSON object into `(key, raw value)` pairs. Tolerates a
/// missing or malformed file by returning what it could read. Values are
/// matched by brace/bracket depth with string-literal awareness — enough
/// for the bench-result files this crate itself writes.
fn parse_top_level(src: &str) -> Vec<(String, String)> {
    let mut entries = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = match bytes.iter().position(|&c| c == '{') {
        Some(p) => p + 1,
        None => return entries,
    };
    loop {
        while i < bytes.len() && (bytes[i].is_whitespace() || bytes[i] == ',') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == '}' {
            return entries;
        }
        // key
        if bytes[i] != '"' {
            return entries;
        }
        i += 1;
        let kstart = i;
        while i < bytes.len() && bytes[i] != '"' {
            i += 1;
        }
        let key: String = bytes[kstart..i].iter().collect();
        i += 1;
        while i < bytes.len() && (bytes[i].is_whitespace() || bytes[i] == ':') {
            i += 1;
        }
        // value: scan until depth-0 ',' or '}'
        let vstart = i;
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        while i < bytes.len() {
            let c = bytes[i];
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' if depth > 0 => depth -= 1,
                    ',' | '}' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        let value: String = bytes[vstart..i].iter().collect();
        entries.push((key, value.trim_end().to_string()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn parse_sections_roundtrip() {
        let src =
            "{\n  \"a\": { \"x\": 1, \"s\": \"br{ace\" },\n  \"b\": [1, 2],\n  \"c\": 3.5\n}\n";
        let e = parse_top_level(src);
        assert_eq!(e.len(), 3);
        assert_eq!(e[0].0, "a");
        assert!(e[0].1.contains("br{ace"));
        assert_eq!(e[1], ("b".to_string(), "[1, 2]".to_string()));
        assert_eq!(e[2], ("c".to_string(), "3.5".to_string()));
    }

    #[test]
    fn upsert_preserves_other_sections() {
        let dir = std::env::temp_dir().join("skinner_bench_upsert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);
        upsert_bench_json(&path, "first", "{\n    \"v\": 1\n  }").unwrap();
        upsert_bench_json(&path, "second", "{\n    \"v\": 2\n  }").unwrap();
        upsert_bench_json(&path, "first", "{\n    \"v\": 9\n  }").unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        let e = parse_top_level(&s);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].0, "first");
        assert!(e[0].1.contains("\"v\": 9"));
        assert_eq!(e[1].0, "second");
        assert!(e[1].1.contains("\"v\": 2"));
        let _ = std::fs::remove_file(&path);
    }
}
