//! Generic UCT tree with one-node-per-round materialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A tree-structured decision space: paths of actions from the root to a
/// leaf at `depth()`.
pub trait SearchSpace {
    /// Action type (for join ordering: a table id).
    type Action: Copy + Eq + std::fmt::Debug;

    /// Actions available after the prefix `path` (empty at the root).
    /// Must be non-empty for every prefix shorter than [`depth`](Self::depth).
    fn actions(&self, path: &[Self::Action]) -> Vec<Self::Action>;

    /// Length of complete paths.
    fn depth(&self) -> usize;
}

/// UCT tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct UctConfig {
    /// Exploration weight `w` in `r_c + w * sqrt(ln(v_p)/v_c)`.
    /// `sqrt(2)` gives the formal regret bound; Skinner-C uses `1e-6`.
    pub exploration: f64,
    /// RNG seed (selection below the materialized frontier is random).
    pub seed: u64,
}

impl Default for UctConfig {
    fn default() -> Self {
        UctConfig {
            exploration: std::f64::consts::SQRT_2,
            seed: 0x5EED_5EED,
        }
    }
}

#[derive(Debug, Clone)]
struct Node<A> {
    visits: u64,
    reward_sum: f64,
    /// One slot per available action; `usize::MAX` = not materialized.
    actions: Vec<A>,
    children: Vec<usize>,
}

const UNEXPANDED: usize = usize::MAX;

/// A detached copy of a tree's materialized nodes (visit counts, reward
/// sums, child structure), taken with [`UctTree::snapshot`] and restored
/// with [`UctTree::with_snapshot`].
///
/// Snapshots are how learned join-order knowledge survives a query
/// execution: the service layer stores one per query template and
/// warm-starts the next execution of that template from it, so the
/// learner resumes with its priors instead of re-exploring from scratch.
#[derive(Debug, Clone)]
pub struct TreeSnapshot<A> {
    nodes: Vec<Node<A>>,
    rounds: u64,
}

/// Plain-data view of one snapshot node, the unit of the snapshot
/// (de)serialization surface ([`TreeSnapshot::to_parts`] /
/// [`TreeSnapshot::from_parts`]). Field order is the wire order used by
/// the service's learning-cache persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotNode<A> {
    /// Times this node was visited by `update`.
    pub visits: u64,
    /// Sum of observed rewards at this node.
    pub reward_sum: f64,
    /// Available actions, one per child slot.
    pub actions: Vec<A>,
    /// Child node indices, `usize::MAX` for unexpanded slots.
    pub children: Vec<usize>,
}

impl<A> TreeSnapshot<A> {
    /// Number of materialized nodes captured.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Choose/update rounds the source tree had completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Approximate heap footprint in bytes (cache accounting).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node<A>>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.actions.len() * std::mem::size_of::<A>()
                        + n.children.len() * std::mem::size_of::<usize>()
                })
                .sum::<usize>()
    }

    /// Fraction of the root's child visits concentrated on its
    /// most-visited child, in `(0, 1]` — a cheap convergence signal.
    /// Near `1.0` the learner has settled on one first table (and, by
    /// UCB1's exploitation bias, almost certainly one full order);
    /// near `1/arity` it is still exploring. `None` when the root is
    /// absent or no child has been materialized/visited yet.
    ///
    /// The service layer gates adaptive admission on this: a cached
    /// template only forfeits fan-out once its learning has actually
    /// converged, not merely because a cache entry exists.
    pub fn root_best_share(&self) -> Option<f64> {
        let root = self.nodes.first()?;
        let mut total = 0u64;
        let mut best = 0u64;
        for &c in &root.children {
            if c == UNEXPANDED {
                continue;
            }
            let v = self.nodes.get(c)?.visits;
            total += v;
            best = best.max(v);
        }
        (total > 0).then(|| best as f64 / total as f64)
    }

    /// Decompose into plain-data nodes plus the round count, for
    /// serialization (the learning-cache persistence of
    /// `skinner-service`). `usize::MAX` children in the output mark
    /// unexpanded slots, mirroring the internal representation.
    pub fn to_parts(&self) -> (Vec<SnapshotNode<A>>, u64)
    where
        A: Clone,
    {
        let nodes = self
            .nodes
            .iter()
            .map(|n| SnapshotNode {
                visits: n.visits,
                reward_sum: n.reward_sum,
                actions: n.actions.clone(),
                children: n.children.clone(),
            })
            .collect();
        (nodes, self.rounds)
    }

    /// Rebuild a snapshot from [`to_parts`](Self::to_parts) data.
    /// Returns `None` unless the reassembled tree is structurally sound
    /// (action/child arity matches, child indices in bounds) — the
    /// defense that lets the persistence loader reject a corrupt or
    /// hand-mangled record instead of panicking later inside `choose`.
    pub fn from_parts(nodes: Vec<SnapshotNode<A>>, rounds: u64) -> Option<Self> {
        let snap = TreeSnapshot {
            nodes: nodes
                .into_iter()
                .map(|n| Node {
                    visits: n.visits,
                    reward_sum: n.reward_sum,
                    actions: n.actions,
                    children: n.children,
                })
                .collect(),
            rounds,
        };
        snap.well_formed().then_some(snap)
    }

    /// Structural sanity: every child index in range, child slots match
    /// action slots, and the root exists.
    fn well_formed(&self) -> bool {
        !self.nodes.is_empty()
            && self.nodes.iter().all(|n| {
                n.actions.len() == n.children.len()
                    && n.children
                        .iter()
                        .all(|&c| c == UNEXPANDED || c < self.nodes.len())
            })
    }
}

/// One cross-query prior: an estimated mean reward for the arm reached
/// by following `prefix` from the root (`[t]` seeds a root arm,
/// `[t, u]` seeds arm `u` of the node reached via `t`, and so on).
#[derive(Debug, Clone, PartialEq)]
pub struct PriorEntry<A> {
    /// Action path from the root to the seeded arm; never empty.
    pub prefix: Vec<A>,
    /// Estimated mean reward of that arm, clamped to `[0, 1]` at
    /// injection time like every observed reward.
    pub estimate: f64,
}

/// Cross-query priors for [`UctTree::with_priors`]: a table of arm
/// estimates plus the virtual visit count each seeded arm starts with.
///
/// Plain data by design — the knowledge store serializes prior tables
/// the same way the learning cache serializes [`TreeSnapshot`]s, and
/// these public fields are that (de)serialization surface.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArmPriors<A> {
    /// Seeded arms. Entries whose prefixes name unknown actions (or
    /// whose parent arm is not itself seeded) are ignored.
    pub entries: Vec<PriorEntry<A>>,
    /// Virtual visits given to every arm of a seeded node. Small values
    /// (2–4) mean one or two real slices already outvote a wrong prior;
    /// `0` disables seeding entirely.
    pub weight: u64,
}

/// The UCT search tree (paper §4.1).
///
/// `choose` walks the materialized tree with the UCB1 rule, then extends
/// the path randomly to a leaf. `update` registers the observed reward
/// along the chosen path and materializes *at most one* new node — the
/// first node of the path that lies outside the tree — exactly as the
/// paper's UCT variant prescribes.
#[derive(Debug)]
pub struct UctTree<S: SearchSpace> {
    space: S,
    nodes: Vec<Node<S::Action>>,
    config: UctConfig,
    rng: SmallRng,
    rounds: u64,
}

impl<S: SearchSpace> UctTree<S> {
    /// Create a tree over `space`.
    pub fn new(space: S, config: UctConfig) -> UctTree<S> {
        let rng = SmallRng::seed_from_u64(config.seed);
        let mut tree = UctTree {
            space,
            nodes: Vec::new(),
            config,
            rng,
            rounds: 0,
        };
        let root_actions = tree.space.actions(&[]);
        tree.nodes.push(Node {
            visits: 0,
            reward_sum: 0.0,
            children: vec![UNEXPANDED; root_actions.len()],
            actions: root_actions,
        });
        tree
    }

    /// Create a tree over `space` warm-started from a prior execution's
    /// [`TreeSnapshot`]. The snapshot is adopted only if it is
    /// structurally sound and its root actions match this space's (the
    /// template-keyed cache guarantees that in practice; a mismatch —
    /// e.g. a snapshot taken against a differently-shaped query — falls
    /// back to a cold tree rather than corrupting selection).
    pub fn with_snapshot(space: S, config: UctConfig, snapshot: &TreeSnapshot<S::Action>) -> Self {
        let mut tree = UctTree::new(space, config);
        if snapshot.well_formed() && snapshot.nodes[0].actions == tree.nodes[0].actions {
            tree.nodes = snapshot.nodes.clone();
            tree.rounds = snapshot.rounds;
        }
        tree
    }

    /// Create a tree over `space` seeded with cross-query priors via
    /// *optimistic initialization*: every arm of a seeded node is
    /// materialized with `priors.weight` virtual visits — arms named by
    /// a prior get their estimated mean, the rest get the *best* seeded
    /// estimate at that node, so unknown arms start tied with the most
    /// promising known one instead of being starved.
    ///
    /// This shifts exploration *order* only and never prunes: every arm
    /// keeps a positive visit count (so UCB1's log term guarantees it
    /// is revisited), every permutation stays reachable, and the round
    /// count stays `0` (a merely prior-seeded tree never reads as
    /// converged). Malformed entries — empty prefixes, unknown actions,
    /// prefixes under unseeded parents — are skipped; with `weight == 0`
    /// or no valid entries the tree is exactly cold.
    pub fn with_priors(space: S, config: UctConfig, priors: &ArmPriors<S::Action>) -> Self {
        let mut tree = UctTree::new(space, config);
        if priors.weight == 0 || priors.entries.is_empty() {
            return tree;
        }
        // Group seeded arms by parent prefix; seed shallow nodes first
        // so a parent's child node exists before its own arms seed.
        type SeededArms<A> = Vec<(Vec<A>, Vec<(A, f64)>)>;
        let mut by_parent: SeededArms<S::Action> = Vec::new();
        for e in &priors.entries {
            let Some((&arm, parent)) = e.prefix.split_last() else {
                continue;
            };
            let est = e.estimate.clamp(0.0, 1.0);
            match by_parent.iter_mut().find(|(p, _)| p == parent) {
                Some((_, arms)) => arms.push((arm, est)),
                None => by_parent.push((parent.to_vec(), vec![(arm, est)])),
            }
        }
        by_parent.sort_by_key(|(p, _)| p.len());
        for (parent, arms) in by_parent {
            // Walk to the parent node; every hop must already be
            // materialized (it is, whenever the parent arm was seeded).
            let mut node = 0usize;
            let mut reachable = true;
            for a in &parent {
                let Some(slot) = tree.nodes[node].actions.iter().position(|x| x == a) else {
                    reachable = false;
                    break;
                };
                let child = tree.nodes[node].children[slot];
                if child == UNEXPANDED {
                    reachable = false;
                    break;
                }
                node = child;
            }
            if !reachable {
                continue;
            }
            let known: Vec<(usize, f64)> = arms
                .iter()
                .filter_map(|&(a, est)| {
                    tree.nodes[node]
                        .actions
                        .iter()
                        .position(|&x| x == a)
                        .map(|s| (s, est))
                })
                .collect();
            if known.is_empty() {
                continue;
            }
            // Optimistic default for arms no prior names: tie them with
            // the best known arm rather than starving them.
            let default = known.iter().map(|&(_, e)| e).fold(f64::MIN, f64::max);
            let arity = tree.nodes[node].actions.len();
            let mut total_visits = 0u64;
            let mut total_reward = 0.0f64;
            for slot in 0..arity {
                if tree.nodes[node].children[slot] != UNEXPANDED {
                    continue; // already seeded (duplicate parent entry)
                }
                let est = known
                    .iter()
                    .find(|&&(s, _)| s == slot)
                    .map_or(default, |&(_, e)| e);
                let action = tree.nodes[node].actions[slot];
                let mut path = parent.clone();
                path.push(action);
                let child_actions = tree.space.actions(&path);
                let new_id = tree.nodes.len();
                tree.nodes.push(Node {
                    visits: priors.weight,
                    reward_sum: est * priors.weight as f64,
                    children: vec![UNEXPANDED; child_actions.len()],
                    actions: child_actions,
                });
                tree.nodes[node].children[slot] = new_id;
                total_visits += priors.weight;
                total_reward += est * priors.weight as f64;
            }
            tree.nodes[node].visits += total_visits;
            tree.nodes[node].reward_sum += total_reward;
        }
        tree
    }

    /// Detach a copy of the materialized tree for cross-execution reuse.
    pub fn snapshot(&self) -> TreeSnapshot<S::Action>
    where
        S::Action: Clone,
    {
        TreeSnapshot {
            nodes: self.nodes.clone(),
            rounds: self.rounds,
        }
    }

    /// The underlying search space.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// Number of materialized nodes (reported in Figures 7a / 8a).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Completed choose/update rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Select a complete path (join order) for the next time slice.
    pub fn choose(&mut self) -> Vec<S::Action> {
        let depth = self.space.depth();
        let mut path = Vec::with_capacity(depth);
        let mut node = 0usize;
        let mut in_tree = true;
        while path.len() < depth {
            if in_tree {
                let pick = self.pick_child(node);
                let action = self.nodes[node].actions[pick];
                let child = self.nodes[node].children[pick];
                path.push(action);
                if child == UNEXPANDED {
                    in_tree = false;
                } else {
                    node = child;
                }
            } else {
                // Below the materialized frontier: uniform random rollout.
                let actions = self.space.actions(&path);
                debug_assert!(!actions.is_empty(), "search space dead end at {path:?}");
                let a = actions[self.rng.gen_range(0..actions.len())];
                path.push(a);
            }
        }
        path
    }

    /// UCB1 child selection among a node's actions. Unvisited children
    /// have an infinite upper bound and are tried first (random among
    /// them, per the paper's random tie-breaking).
    fn pick_child(&mut self, node: usize) -> usize {
        let unvisited: Vec<usize> = {
            let n = &self.nodes[node];
            n.children
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == UNEXPANDED || self.nodes[c].visits == 0)
                .map(|(i, _)| i)
                .collect()
        };
        if !unvisited.is_empty() {
            return unvisited[self.rng.gen_range(0..unvisited.len())];
        }
        let n = &self.nodes[node];
        let ln_parent = (n.visits.max(1) as f64).ln();
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, &c) in n.children.iter().enumerate() {
            let child = &self.nodes[c];
            let mean = child.reward_sum / child.visits as f64;
            let bound = mean + self.config.exploration * (ln_parent / child.visits as f64).sqrt();
            if bound > best_score {
                best_score = bound;
                best = i;
            }
        }
        best
    }

    /// Register `reward` (clamped to `[0, 1]`) for the previously chosen
    /// `path`; materializes at most one new node.
    ///
    /// The caller is responsible for normalizing rewards *per slice*, not
    /// per unit of work: Skinner-C feeds cursor-progress deltas here, and
    /// those stay comparable across orders whether a slice ran on one
    /// thread or was partitioned across many — every order's slices use
    /// the same worker count, so the bandit never sees a thread-count
    /// bias between arms.
    pub fn update(&mut self, path: &[S::Action], reward: f64) {
        let reward = reward.clamp(0.0, 1.0);
        self.rounds += 1;
        let mut node = 0usize;
        self.nodes[node].visits += 1;
        self.nodes[node].reward_sum += reward;
        let mut expanded = false;
        for (depth, &action) in path.iter().enumerate() {
            let slot = match self.nodes[node].actions.iter().position(|&a| a == action) {
                Some(s) => s,
                // Stale path (e.g. replayed from another tree): stop here.
                None => return,
            };
            let child = self.nodes[node].children[slot];
            if child == UNEXPANDED {
                if expanded {
                    // Only the first off-tree node materializes this round.
                    return;
                }
                expanded = true;
                let child_actions = self.space.actions(&path[..=depth]);
                let new_id = self.nodes.len();
                self.nodes.push(Node {
                    visits: 0,
                    reward_sum: 0.0,
                    children: vec![UNEXPANDED; child_actions.len()],
                    actions: child_actions,
                });
                self.nodes[node].children[slot] = new_id;
                node = new_id;
            } else {
                node = child;
            }
            self.nodes[node].visits += 1;
            self.nodes[node].reward_sum += reward;
        }
    }

    /// Mean reward observed at the root (the tree-wide average).
    pub fn mean_reward(&self) -> f64 {
        let root = &self.nodes[0];
        if root.visits == 0 {
            0.0
        } else {
            root.reward_sum / root.visits as f64
        }
    }

    /// The current greedy path: at every materialized node follow the
    /// most-visited child (the standard UCT recommendation policy). The
    /// path is completed randomly below the frontier. This is the "final
    /// join order" replayed in other engines for Tables 3/4.
    pub fn best_path(&mut self) -> Vec<S::Action> {
        let depth = self.space.depth();
        let mut path = Vec::with_capacity(depth);
        let mut node = Some(0usize);
        while path.len() < depth {
            match node {
                Some(id) => {
                    let n = &self.nodes[id];
                    let mut best: Option<(usize, u64)> = None;
                    for (i, &c) in n.children.iter().enumerate() {
                        let v = if c == UNEXPANDED {
                            0
                        } else {
                            self.nodes[c].visits
                        };
                        if best.is_none_or(|(_, bv)| v > bv) {
                            best = Some((i, v));
                        }
                    }
                    let (slot, _) = best.expect("non-leaf node with no children");
                    path.push(n.actions[slot]);
                    let c = n.children[slot];
                    node = if c == UNEXPANDED { None } else { Some(c) };
                }
                None => {
                    let actions = self.space.actions(&path);
                    let a = actions[self.rng.gen_range(0..actions.len())];
                    path.push(a);
                }
            }
        }
        path
    }

    /// Approximate heap footprint in bytes (Figure 8a).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node<S::Action>>()
            + self
                .nodes
                .iter()
                .map(|n| {
                    n.actions.len() * std::mem::size_of::<S::Action>()
                        + n.children.len() * std::mem::size_of::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat bandit: depth 1, `n` arms.
    struct Bandit {
        arms: usize,
    }

    impl SearchSpace for Bandit {
        type Action = usize;
        fn actions(&self, path: &[usize]) -> Vec<usize> {
            if path.is_empty() {
                (0..self.arms).collect()
            } else {
                vec![]
            }
        }
        fn depth(&self) -> usize {
            1
        }
    }

    /// Full k-ary tree of given depth; all permutations allowed.
    struct Perms {
        n: usize,
    }

    impl SearchSpace for Perms {
        type Action = usize;
        fn actions(&self, path: &[usize]) -> Vec<usize> {
            (0..self.n).filter(|t| !path.contains(t)).collect()
        }
        fn depth(&self) -> usize {
            self.n
        }
    }

    #[test]
    fn bandit_converges_to_best_arm() {
        let mut tree = UctTree::new(
            Bandit { arms: 5 },
            UctConfig {
                exploration: std::f64::consts::SQRT_2,
                seed: 7,
            },
        );
        // Arm 3 pays 0.9, others 0.1 (deterministic for test stability).
        let mut wins = 0;
        for _ in 0..2000 {
            let path = tree.choose();
            let r = if path[0] == 3 { 0.9 } else { 0.1 };
            if path[0] == 3 {
                wins += 1;
            }
            tree.update(&path, r);
        }
        // The best arm must dominate the later choices.
        assert!(wins > 1200, "best arm chosen only {wins}/2000 times");
        assert_eq!(tree.best_path(), vec![3]);
    }

    #[test]
    fn snapshot_parts_round_trip() {
        let mut tree = UctTree::new(Perms { n: 4 }, UctConfig::default());
        for _ in 0..300 {
            let p = tree.choose();
            let r = if p[0] == 2 { 0.8 } else { 0.2 };
            tree.update(&p, r);
        }
        let snap = tree.snapshot();
        let (nodes, rounds) = snap.to_parts();
        assert_eq!(rounds, snap.rounds());
        assert_eq!(nodes.len(), snap.num_nodes());
        let rebuilt = TreeSnapshot::from_parts(nodes.clone(), rounds)
            .expect("round-tripped snapshot must be well-formed");
        // A tree warm-started from the rebuilt snapshot behaves like one
        // warm-started from the original: same best path, same node set.
        let mut a = UctTree::with_snapshot(Perms { n: 4 }, UctConfig::default(), &snap);
        let mut b = UctTree::with_snapshot(Perms { n: 4 }, UctConfig::default(), &rebuilt);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.rounds(), b.rounds());
        assert_eq!(a.best_path(), b.best_path());

        // Corruption defenses: out-of-range child, arity mismatch, empty.
        let mut bad = nodes.clone();
        bad[0].children[0] = bad.len() + 7;
        assert!(TreeSnapshot::from_parts(bad, rounds).is_none());
        let mut bad = nodes;
        bad[0].children.pop();
        assert!(TreeSnapshot::from_parts(bad, rounds).is_none());
        assert!(TreeSnapshot::<usize>::from_parts(vec![], 0).is_none());
    }

    #[test]
    fn root_best_share_tracks_convergence() {
        // Hand-built: root with 3 arms, two materialized children with
        // a 90/10 visit split — share is 0.9 regardless of the
        // unexpanded third slot.
        let nodes = vec![
            SnapshotNode {
                visits: 100,
                reward_sum: 50.0,
                actions: vec![0usize, 1, 2],
                children: vec![1, 2, UNEXPANDED],
            },
            SnapshotNode {
                visits: 90,
                reward_sum: 60.0,
                actions: vec![],
                children: vec![],
            },
            SnapshotNode {
                visits: 10,
                reward_sum: 2.0,
                actions: vec![],
                children: vec![],
            },
        ];
        let snap = TreeSnapshot::from_parts(nodes, 100).unwrap();
        assert_eq!(snap.root_best_share(), Some(0.9));

        // A fresh tree (root only, nothing visited) has no signal.
        let cold = UctTree::new(Bandit { arms: 4 }, UctConfig::default()).snapshot();
        assert_eq!(cold.root_best_share(), None);

        // A genuinely converged bandit concentrates its root share; a
        // uniform-reward one stays spread across the arms.
        let mut lopsided = UctTree::new(Bandit { arms: 4 }, UctConfig::default());
        let mut uniform = UctTree::new(Bandit { arms: 4 }, UctConfig::default());
        for _ in 0..2000 {
            let p = lopsided.choose();
            let r = if p[0] == 1 { 0.9 } else { 0.1 };
            lopsided.update(&p, r);
            let p = uniform.choose();
            uniform.update(&p, 0.5);
        }
        let hot = lopsided.snapshot().root_best_share().unwrap();
        let flat = uniform.snapshot().root_best_share().unwrap();
        assert!(hot > 0.75, "converged share {hot} should dominate");
        assert!(flat < 0.75, "exploring share {flat} should stay spread");
    }

    #[test]
    fn one_node_per_round() {
        let mut tree = UctTree::new(Perms { n: 5 }, UctConfig::default());
        let mut prev = tree.num_nodes();
        for _ in 0..200 {
            let p = tree.choose();
            tree.update(&p, 0.5);
            let now = tree.num_nodes();
            assert!(now <= prev + 1, "materialized more than one node");
            prev = now;
        }
    }

    #[test]
    fn paths_are_valid_permutations() {
        let mut tree = UctTree::new(Perms { n: 6 }, UctConfig::default());
        for _ in 0..100 {
            let p = tree.choose();
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
            tree.update(&p, 0.3);
        }
    }

    #[test]
    fn deep_convergence_prefers_good_prefix() {
        // Reward 1 iff the order starts with table 2.
        let mut tree = UctTree::new(Perms { n: 4 }, UctConfig::default());
        for _ in 0..3000 {
            let p = tree.choose();
            let r = if p[0] == 2 { 1.0 } else { 0.0 };
            tree.update(&p, r);
        }
        assert_eq!(tree.best_path()[0], 2);
        assert!(tree.mean_reward() > 0.5);
    }

    #[test]
    fn reward_clamped() {
        let mut tree = UctTree::new(Bandit { arms: 2 }, UctConfig::default());
        let p = tree.choose();
        tree.update(&p, 17.0);
        assert!(tree.mean_reward() <= 1.0);
        let p = tree.choose();
        tree.update(&p, -5.0);
        assert!(tree.mean_reward() >= 0.0);
    }

    #[test]
    fn low_exploration_exploits_hard() {
        // Skinner-C setting: w = 1e-6. After warmup, virtually all
        // selections should hit the best arm.
        let mut tree = UctTree::new(
            Bandit { arms: 4 },
            UctConfig {
                exploration: 1e-6,
                seed: 3,
            },
        );
        for _ in 0..50 {
            let p = tree.choose();
            let r = if p[0] == 1 { 0.8 } else { 0.2 };
            tree.update(&p, r);
        }
        let mut hits = 0;
        for _ in 0..100 {
            let p = tree.choose();
            if p[0] == 1 {
                hits += 1;
            }
            let r = if p[0] == 1 { 0.8 } else { 0.2 };
            tree.update(&p, r);
        }
        assert!(hits >= 95, "exploitation too weak: {hits}/100");
    }

    #[test]
    fn snapshot_roundtrip_preserves_learning() {
        let mut tree = UctTree::new(Bandit { arms: 5 }, UctConfig::default());
        for _ in 0..500 {
            let p = tree.choose();
            let r = if p[0] == 3 { 0.9 } else { 0.1 };
            tree.update(&p, r);
        }
        let snap = tree.snapshot();
        assert_eq!(snap.num_nodes(), tree.num_nodes());
        assert_eq!(snap.rounds(), tree.rounds());
        assert!(snap.approx_bytes() > 0);

        // A warm-started tree recommends the learned best arm immediately
        // and keeps exploiting it.
        let mut warm = UctTree::with_snapshot(Bandit { arms: 5 }, UctConfig::default(), &snap);
        assert_eq!(warm.best_path(), vec![3]);
        assert_eq!(warm.rounds(), snap.rounds());
        let mut hits = 0;
        for _ in 0..50 {
            let p = warm.choose();
            if p[0] == 3 {
                hits += 1;
            }
            warm.update(&p, if p[0] == 3 { 0.9 } else { 0.1 });
        }
        assert!(hits >= 45, "warm start not exploiting: {hits}/50");
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_cold() {
        let mut tree = UctTree::new(Bandit { arms: 3 }, UctConfig::default());
        for _ in 0..50 {
            let p = tree.choose();
            tree.update(&p, 0.5);
        }
        let snap = tree.snapshot();
        // Different root arity: the snapshot must be rejected.
        let warm = UctTree::with_snapshot(Bandit { arms: 7 }, UctConfig::default(), &snap);
        assert_eq!(warm.num_nodes(), 1);
        assert_eq!(warm.rounds(), 0);
    }

    fn priors(entries: Vec<(Vec<usize>, f64)>, weight: u64) -> ArmPriors<usize> {
        ArmPriors {
            entries: entries
                .into_iter()
                .map(|(prefix, estimate)| PriorEntry { prefix, estimate })
                .collect(),
            weight,
        }
    }

    #[test]
    fn priors_bias_exploration_toward_seeded_arm() {
        // Arm 3 is seeded high and the others low; the first selections
        // must go to arm 3 instead of the uniform unvisited sweep a cold
        // tree would start with.
        let p = priors(
            vec![
                (vec![0], 0.1),
                (vec![1], 0.1),
                (vec![2], 0.1),
                (vec![3], 0.9),
                (vec![4], 0.1),
            ],
            2,
        );
        let mut tree = UctTree::with_priors(
            Bandit { arms: 5 },
            UctConfig {
                exploration: 1e-6,
                seed: 11,
            },
            &p,
        );
        assert_eq!(tree.rounds(), 0, "priors must not count as rounds");
        assert_eq!(tree.num_nodes(), 6, "all five arms materialized");
        let mut hits = 0;
        for _ in 0..20 {
            let path = tree.choose();
            if path[0] == 3 {
                hits += 1;
            }
            // Reward agrees with the prior.
            tree.update(&path, if path[0] == 3 { 0.9 } else { 0.1 });
        }
        assert!(hits >= 18, "priors not steering: {hits}/20");
    }

    #[test]
    fn wrong_priors_never_prune_arms() {
        // The prior lies: it praises arm 0, but arm 4 actually pays.
        // Seeding must only delay convergence, never prevent it.
        let p = priors(vec![(vec![0], 0.95), (vec![4], 0.05)], 3);
        let mut tree = UctTree::with_priors(Bandit { arms: 5 }, UctConfig::default(), &p);
        let mut arm_visits = [0u64; 5];
        for _ in 0..3000 {
            let path = tree.choose();
            arm_visits[path[0]] += 1;
            tree.update(&path, if path[0] == 4 { 0.9 } else { 0.1 });
        }
        assert_eq!(tree.best_path(), vec![4], "must recover from a bad prior");
        for (arm, &v) in arm_visits.iter().enumerate() {
            assert!(v > 0, "arm {arm} was never tried");
        }
    }

    #[test]
    fn unknown_arms_seed_at_best_known_estimate() {
        // Only arm 1 is named; the other arms must still materialize,
        // tied with arm 1's estimate (optimistic, never starved).
        let p = priors(vec![(vec![1], 0.6)], 2);
        let tree = UctTree::with_priors(Bandit { arms: 4 }, UctConfig::default(), &p);
        assert_eq!(tree.num_nodes(), 5);
        let snap = tree.snapshot();
        let (nodes, rounds) = snap.to_parts();
        assert_eq!(rounds, 0);
        for n in &nodes[1..] {
            assert_eq!(n.visits, 2);
            assert!((n.reward_sum - 1.2).abs() < 1e-12);
        }
    }

    #[test]
    fn deep_priors_seed_second_level() {
        // [2] seeds the root; [2, 0] seeds the node under arm 2. The
        // second level only materializes beneath a seeded parent.
        let p = priors(
            vec![(vec![2], 0.8), (vec![2, 0], 0.7), (vec![3, 1], 0.9)],
            2,
        );
        let mut tree = UctTree::with_priors(Perms { n: 4 }, UctConfig::default(), &p);
        // 1 root + its 4 arms + 3 remaining arms under node [2] + 3
        // under node [3] (root seeding materialized arm 3's node, so
        // the [3, 1] entry finds its parent) = 11 nodes.
        assert_eq!(tree.num_nodes(), 11);
        for _ in 0..50 {
            let path = tree.choose();
            let mut sorted = path.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "paths stay permutations");
            tree.update(&path, 0.5);
        }
    }

    #[test]
    fn malformed_or_empty_priors_yield_cold_tree() {
        // Unknown action, empty prefix, zero weight: all fall back cold.
        let bogus = priors(vec![(vec![99], 0.9), (vec![], 0.5)], 2);
        let tree = UctTree::with_priors(Bandit { arms: 3 }, UctConfig::default(), &bogus);
        assert_eq!(tree.num_nodes(), 1);
        let zero = priors(vec![(vec![1], 0.9)], 0);
        let tree = UctTree::with_priors(Bandit { arms: 3 }, UctConfig::default(), &zero);
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.rounds(), 0);
    }

    #[test]
    fn cumulative_regret_sublinear() {
        // Empirical check of the O(log n) regret guarantee: regret per
        // round must shrink markedly between early and late phases.
        let mut tree = UctTree::new(Bandit { arms: 8 }, UctConfig::default());
        let payoff = |arm: usize| 0.1 + 0.8 * ((arm == 5) as u8 as f64);
        let mut regret_first = 0.0;
        let mut regret_last = 0.0;
        for round in 0..4000 {
            let p = tree.choose();
            let r = payoff(p[0]);
            tree.update(&p, r);
            let regret = 0.9 - r;
            if round < 500 {
                regret_first += regret;
            } else if round >= 3500 {
                regret_last += regret;
            }
        }
        assert!(
            regret_last < regret_first / 4.0,
            "regret not shrinking: first={regret_first:.1} last={regret_last:.1}"
        );
    }
}
