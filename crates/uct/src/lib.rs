//! # skinner-uct
//!
//! The UCT algorithm (Kocsis & Szepesvári, ECML 2006) as used by
//! SkinnerDB (§4.1–4.2 of the paper), plus the join-order search space.
//!
//! SkinnerDB repeatedly selects a join order at the start of each time
//! slice. The space of join orders is a tree: each level picks the next
//! table, edges are table choices, and leaves are complete left-deep join
//! orders. UCT materializes this tree lazily — at most one node per round
//! — and keeps per-node visit counts and average rewards. Selection at a
//! materialized node maximizes `r_c + w * sqrt(ln(v_p) / v_c)`; below the
//! materialized frontier, selection is uniformly random.
//!
//! The paper sets `w = sqrt(2)` for Skinner-G/H (sufficient for the regret
//! bound) and `w = 1e-6` for Skinner-C, whose fine-grained reward signal
//! needs little forced exploration.
//!
//! Cold trees can additionally be seeded with cross-query knowledge via
//! [`UctTree::with_priors`] + [`ArmPriors`]: optimistic initialization of
//! arm estimates that shifts exploration order without ever pruning an
//! arm, so the regret-bound exploration guarantee is preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod join;
pub mod tree;

pub use join::JoinOrderSpace;
pub use tree::{
    ArmPriors, PriorEntry, SearchSpace, SnapshotNode, TreeSnapshot, UctConfig, UctTree,
};
