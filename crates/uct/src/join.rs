//! The join-order search space (paper §4.2).

use crate::tree::SearchSpace;
use skinner_query::{JoinGraph, Query, TableId, TableSet};

/// Search space over left-deep join orders of a query, avoiding Cartesian
/// products unless unavoidable (the §4.2 rule, delegated to
/// [`JoinGraph::eligible_next`]).
#[derive(Debug, Clone)]
pub struct JoinOrderSpace {
    graph: JoinGraph,
    num_tables: usize,
}

impl JoinOrderSpace {
    /// Build the space for `query`.
    pub fn new(query: &Query) -> JoinOrderSpace {
        JoinOrderSpace {
            graph: JoinGraph::from_query(query),
            num_tables: query.num_tables(),
        }
    }

    /// Build from a pre-computed join graph.
    pub fn from_graph(graph: JoinGraph) -> JoinOrderSpace {
        let num_tables = graph.num_tables();
        JoinOrderSpace { graph, num_tables }
    }

    /// The underlying join graph.
    pub fn graph(&self) -> &JoinGraph {
        &self.graph
    }

    /// Is `order` a valid complete join order in this space?
    pub fn is_valid_order(&self, order: &[TableId]) -> bool {
        if order.len() != self.num_tables {
            return false;
        }
        let mut chosen = TableSet::EMPTY;
        for &t in order {
            if t >= self.num_tables || chosen.contains(t) {
                return false;
            }
            if !self.graph.eligible_next(chosen).contains(t) {
                return false;
            }
            chosen.insert(t);
        }
        true
    }
}

impl SearchSpace for JoinOrderSpace {
    type Action = TableId;

    fn actions(&self, path: &[TableId]) -> Vec<TableId> {
        let chosen: TableSet = path.iter().copied().collect();
        self.graph.eligible_next(chosen).iter().collect()
    }

    fn depth(&self) -> usize {
        self.num_tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{UctConfig, UctTree};
    use skinner_query::{Expr, Query, SelectItem, TableBinding};
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};
    use std::sync::Arc;

    fn chain_query(n: usize) -> Query {
        let tables = (0..n)
            .map(|i| TableBinding {
                alias: format!("t{i}"),
                table: Arc::new(
                    Table::new(
                        format!("t{i}"),
                        Schema::new([ColumnDef::new("id", ValueType::Int)]),
                        vec![Column::from_ints(vec![1])],
                    )
                    .unwrap(),
                ),
            })
            .collect();
        let predicates = (0..n - 1)
            .map(|i| Expr::col(i, 0).eq(Expr::col(i + 1, 0)))
            .collect();
        Query {
            tables,
            predicates,
            select: vec![SelectItem::Expr {
                expr: Expr::col(0, 0),
                name: "id".into(),
            }],
            group_by: vec![],
            order_by: vec![],
            distinct: false,
            limit: None,
        }
    }

    #[test]
    fn actions_follow_join_graph() {
        let space = JoinOrderSpace::new(&chain_query(4));
        assert_eq!(space.depth(), 4);
        assert_eq!(space.actions(&[]), vec![0, 1, 2, 3]);
        assert_eq!(space.actions(&[0]), vec![1]);
        assert_eq!(space.actions(&[1]), vec![0, 2]);
        assert_eq!(space.actions(&[1, 2]), vec![0, 3]);
    }

    #[test]
    fn validity_check() {
        let space = JoinOrderSpace::new(&chain_query(4));
        assert!(space.is_valid_order(&[0, 1, 2, 3]));
        assert!(space.is_valid_order(&[2, 1, 0, 3]));
        assert!(!space.is_valid_order(&[0, 2, 1, 3])); // 0→2 is a Cartesian jump
        assert!(!space.is_valid_order(&[0, 1, 2])); // incomplete
        assert!(!space.is_valid_order(&[0, 0, 1, 2])); // repeat
    }

    #[test]
    fn uct_over_join_space_yields_valid_orders() {
        let space = JoinOrderSpace::new(&chain_query(5));
        let check = space.clone();
        let mut tree = UctTree::new(space, UctConfig::default());
        for _ in 0..200 {
            let order = tree.choose();
            assert!(check.is_valid_order(&order), "invalid {order:?}");
            // Reward join orders starting at the chain's left end.
            let r = if order[0] == 0 { 1.0 } else { 0.2 };
            tree.update(&order, r);
        }
        assert_eq!(tree.best_path()[0], 0);
    }
}
