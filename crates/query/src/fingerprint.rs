//! Coarse cross-template knowledge fingerprints.
//!
//! [`TemplateKey`](crate::TemplateKey) identifies a whole query template —
//! the FROM list in order plus every predicate shape — which is exactly
//! right for reusing a *complete* learned state (UCT tree + bound plans),
//! and exactly wrong for transferring knowledge to a query that has never
//! run before. The knowledge store needs keys that recur across
//! templates, so it can say "whenever `title` was filtered like this, 2%
//! of rows survived" or "placing `movie_companies` before `company_name`
//! on this key earned reward 0.4 on average" regardless of which query
//! taught it that.
//!
//! Two fingerprint families, both keyed by catalog *table names* and
//! table-local *column indices* (never [`TableId`]s,
//! which are FROM-list positions and differ between templates):
//!
//! * [`table_fingerprint`] — one table plus the shapes of its unary
//!   predicates (constants stripped, shapes sorted). Two queries filtering
//!   the same table the same way share it even if everything else about
//!   them differs.
//! * [`join_edges`] — one per joined table pair: both table names, the
//!   fused key-column lists on each side, and the key kind (`single`
//!   column or `fused` composite). Canonically ordered so the fingerprint
//!   is direction-free; direction is reported separately as the query's
//!   local [`TableId`]s.

use crate::expr::Expr;
use crate::query::Query;
use crate::TableId;
use std::collections::BTreeMap;

/// Fingerprint of one query table together with its unary predicate
/// shapes: `tbl:NAME|shape&shape&...` with constants stripped and shapes
/// sorted. Column references render table-locally (`c2`), so the
/// fingerprint is identical no matter where the table sits in the FROM
/// list.
pub fn table_fingerprint(query: &Query, t: TableId) -> String {
    let mut shapes: Vec<String> = query.unary_predicates(t).map(local_shape).collect();
    shapes.sort_unstable();
    format!("tbl:{}|{}", query.tables[t].table.name(), shapes.join("&"))
}

/// One equi-joined table pair of a query, with its cross-template
/// fingerprint and the query-local ids of both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinEdge {
    /// FROM-list id of the side listed first in the fingerprint.
    pub a: TableId,
    /// FROM-list id of the side listed second in the fingerprint.
    pub b: TableId,
    /// Canonical direction-free fingerprint:
    /// `edge:NAME(c0,c1)~NAME(c0,c2)|single-or-fused`.
    pub fingerprint: String,
}

/// All equi-joined table pairs of `query`, each with its fingerprint.
///
/// Pairs connected by several single-column equalities fuse into one
/// edge whose column lists are the paired key components in canonical
/// order (mirroring
/// [`composite_key_groups`](crate::Query::composite_key_groups)); the
/// `fused` suffix separates their statistics from single-key joins over
/// the same tables, which execute on a different kernel path. Sides are
/// ordered by `(name, columns)`, so the fingerprint is identical however
/// the two tables are ordered in the FROM list.
pub fn join_edges(query: &Query) -> Vec<JoinEdge> {
    // Group key-column pairs per table-id pair, canonical (a < b) like
    // composite_key_groups, then order sides by name for the fingerprint.
    let mut groups: BTreeMap<(TableId, TableId), Vec<(usize, usize)>> = BTreeMap::new();
    for (ca, cb) in query.equi_join_pairs() {
        let ((ta, cola), (tb, colb)) = if ca.table < cb.table {
            ((ca.table, ca.column), (cb.table, cb.column))
        } else {
            ((cb.table, cb.column), (ca.table, ca.column))
        };
        groups.entry((ta, tb)).or_default().push((cola, colb));
    }
    groups
        .into_iter()
        .map(|((ta, tb), mut pairs)| {
            pairs.sort_unstable();
            pairs.dedup();
            let na = query.tables[ta].table.name();
            let nb = query.tables[tb].table.name();
            let cols_a: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let cols_b: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let kind = if pairs.len() >= 2 { "fused" } else { "single" };
            // Direction-free side order: by (name, key columns).
            let ((a, na, ca), (b, nb, cb)) = if (na, &cols_a) <= (nb, &cols_b) {
                ((ta, na, cols_a.clone()), (tb, nb, cols_b.clone()))
            } else {
                ((tb, nb, cols_b.clone()), (ta, na, cols_a.clone()))
            };
            JoinEdge {
                a,
                b,
                fingerprint: format!(
                    "edge:{na}({})~{nb}({})|{kind}",
                    join_cols(&ca),
                    join_cols(&cb)
                ),
            }
        })
        .collect()
}

fn join_cols(cols: &[usize]) -> String {
    cols.iter()
        .map(|c| format!("c{c}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Render the structural shape of a unary predicate with table-local
/// column references and constants stripped (the cross-template analogue
/// of the [`TemplateKey`](crate::TemplateKey) shape renderer, minus the
/// FROM-list table position).
fn local_shape(e: &Expr) -> String {
    let mut out = String::new();
    render_local(e, &mut out);
    out
}

fn render_local(e: &Expr, out: &mut String) {
    match e {
        Expr::Literal(_) => out.push('?'),
        Expr::Col(c) => {
            out.push('c');
            out.push_str(&c.column.to_string());
        }
        Expr::Binary { op, left, right } => {
            out.push('(');
            render_local(left, out);
            out.push_str(&format!("{op:?}"));
            render_local(right, out);
            out.push(')');
        }
        Expr::Unary { op, expr } => {
            out.push_str(&format!("{op:?}("));
            render_local(expr, out);
            out.push(')');
        }
        Expr::Udf { udf, args } => {
            out.push_str(&udf.name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_local(a, out);
            }
            out.push(')');
        }
        Expr::InList { expr, .. } => {
            render_local(expr, out);
            out.push_str(" in(?)");
        }
        Expr::Like { expr, negated, .. } => {
            render_local(expr, out);
            out.push_str(if *negated { " !like ?" } else { " like ?" });
        }
        Expr::IsNull { expr, negated } => {
            render_local(expr, out);
            out.push_str(if *negated { " notnull" } else { " isnull" });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.register(
                Table::new(
                    name,
                    Schema::new([
                        ColumnDef::new("k", ValueType::Int),
                        ColumnDef::new("v", ValueType::Int),
                    ]),
                    vec![
                        Column::from_ints(vec![1, 2, 3]),
                        Column::from_ints(vec![10, 20, 30]),
                    ],
                )
                .unwrap(),
            );
        }
        cat
    }

    /// a ⋈ b with a filter on a; table order and the constant vary.
    fn query(cat: &Catalog, threshold: i64, swap_from: bool) -> Query {
        let mut qb = QueryBuilder::new(cat);
        if swap_from {
            qb.table("b").unwrap();
            qb.table("a").unwrap();
        } else {
            qb.table("a").unwrap();
            qb.table("b").unwrap();
        }
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let f = qb.col("a.v").unwrap().lt(Expr::lit(threshold));
        qb.filter(j);
        qb.filter(f);
        qb.select_col("a.v").unwrap();
        qb.build().unwrap()
    }

    fn table_id(q: &Query, name: &str) -> TableId {
        (0..q.num_tables())
            .find(|&t| q.tables[t].table.name() == name)
            .unwrap()
    }

    #[test]
    fn table_fingerprint_survives_constants_and_from_order() {
        let cat = catalog();
        let q1 = query(&cat, 5, false);
        let q2 = query(&cat, 9_999, true);
        let f1 = table_fingerprint(&q1, table_id(&q1, "a"));
        let f2 = table_fingerprint(&q2, table_id(&q2, "a"));
        assert_eq!(f1, f2, "constants and FROM order must not split");
        assert!(f1.starts_with("tbl:a|"), "{f1}");
        assert!(!f1.contains("9999"));
        // A different predicate shape splits.
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let f = qb.col("a.v").unwrap().gt(Expr::lit(5));
        qb.filter(j);
        qb.filter(f);
        qb.select_col("a.v").unwrap();
        let q3 = qb.build().unwrap();
        assert_ne!(f1, table_fingerprint(&q3, table_id(&q3, "a")));
    }

    #[test]
    fn join_edge_fingerprint_is_direction_free() {
        let cat = catalog();
        let q1 = query(&cat, 5, false);
        let q2 = query(&cat, 7, true);
        let e1 = join_edges(&q1);
        let e2 = join_edges(&q2);
        assert_eq!(e1.len(), 1);
        assert_eq!(e1[0].fingerprint, e2[0].fingerprint);
        // Local ids follow the FROM list; side `a` is table name "a".
        assert_eq!(e1[0].a, table_id(&q1, "a"));
        assert_eq!(e2[0].a, table_id(&q2, "a"));
        assert!(
            e1[0].fingerprint.ends_with("|single"),
            "{}",
            e1[0].fingerprint
        );
    }

    #[test]
    fn composite_edges_fuse_and_are_marked() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j1 = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let j2 = qb.col("a.v").unwrap().eq(qb.col("b.v").unwrap());
        qb.filter(j1);
        qb.filter(j2);
        qb.select_col("a.v").unwrap();
        let q = qb.build().unwrap();
        let edges = join_edges(&q);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].fingerprint, "edge:a(c0,c1)~b(c0,c1)|fused");
    }

    #[test]
    fn edges_generalize_to_a_superset_query() {
        // The a⋈b edge of the 2-way query recurs verbatim in a 3-way
        // query that joins c on top — the transfer property the
        // knowledge store relies on.
        let cat = catalog();
        let small = query(&cat, 5, false);
        let mut qb = QueryBuilder::new(&cat);
        qb.table("c").unwrap();
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j1 = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let j2 = qb.col("c.v").unwrap().eq(qb.col("a.v").unwrap());
        qb.filter(j1);
        qb.filter(j2);
        qb.select_col("a.v").unwrap();
        let big = qb.build().unwrap();
        let small_fp = &join_edges(&small)[0].fingerprint;
        assert!(join_edges(&big).iter().any(|e| &e.fingerprint == small_fp));
    }
}
