//! # skinner-query
//!
//! The query and expression layer of SkinnerDB-rs.
//!
//! SkinnerDB evaluates select-project-join (SPJ) queries with aggregation,
//! grouping and sorting handled in a post-processing step (§4 of the
//! paper), and explicitly supports *user-defined function* predicates —
//! black boxes that no optimizer statistics can see through, which is one
//! of the paper's headline scenarios (TPC-H with UDFs, the UDF torture
//! benchmark).
//!
//! This crate defines:
//!
//! * [`Expr`] — scalar expressions over table columns, including
//!   [`Udf`] black-box predicates with per-call cost hints,
//! * [`Query`] — a resolved SPJ(+aggregation) query over a catalog,
//! * [`JoinGraph`] — connectivity structure driving the §4.2 rule that
//!   join orders avoid Cartesian products unless unavoidable,
//! * [`QueryBuilder`] — a typed fluent API for constructing queries,
//! * [`parse`] — a small SQL dialect covering every query
//!   shape used in the paper's evaluation,
//! * [`TemplateKey`] — normalized query-template fingerprints
//!   (constants stripped) keying the service layer's cross-query
//!   learning cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod compile;
pub mod error;
pub mod expr;
pub mod fingerprint;
pub mod join_graph;
pub mod parser;
pub mod query;
pub mod template;
pub mod udf;

pub use builder::QueryBuilder;
pub use compile::{compile_predicates, BoundPred, CompiledPred, TupleContext};
pub use error::QueryError;
pub use expr::{BinOp, ColRef, Expr, RowContext, TableSet, UnOp};
pub use fingerprint::{join_edges, table_fingerprint, JoinEdge};
pub use join_graph::JoinGraph;
pub use parser::parse;
pub use query::{Agg, AggFunc, CompositeGroup, OrderKey, Query, SelectItem, TableBinding};
pub use template::TemplateKey;
pub use udf::{Udf, UdfRegistry};

/// Index of a table within a query's FROM list.
pub type TableId = usize;
