//! Join-graph connectivity for Cartesian-product avoidance.
//!
//! §4.2 of the paper: the join-order search space excludes "join orders
//! that introduce Cartesian product joins without need. [...] If at least
//! one of the remaining tables is connected to the [chosen tables] via
//! join predicates, only such tables will be considered. If none of the
//! remaining tables is connected, all remaining tables become eligible."
//! [`JoinGraph::eligible_next`] implements exactly that rule; it is shared
//! by the UCT search space, the traditional optimizer's plan enumeration,
//! and the random-order baseline, so all competitors search the same space.

use crate::expr::TableSet;
use crate::query::Query;
use crate::TableId;

/// Undirected connectivity between the tables of one query, derived from
/// its join predicates (any predicate touching ≥ 2 tables connects every
/// pair of tables it references).
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// adjacency[t] = set of tables sharing a predicate with `t`.
    adjacency: Vec<TableSet>,
}

impl JoinGraph {
    /// Build the join graph of `query`.
    pub fn from_query(query: &Query) -> JoinGraph {
        let n = query.num_tables();
        let mut adjacency = vec![TableSet::EMPTY; n];
        for pred in query.join_predicates() {
            let ts = pred.tables();
            for a in ts.iter() {
                adjacency[a] = adjacency[a].union(ts.minus(TableSet::single(a)));
            }
        }
        JoinGraph { adjacency }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.adjacency.len()
    }

    /// Tables adjacent to `t`.
    pub fn neighbors(&self, t: TableId) -> TableSet {
        self.adjacency[t]
    }

    /// Is `t` connected to any table in `set`?
    pub fn connected(&self, t: TableId, set: TableSet) -> bool {
        !self.adjacency[t].intersect(set).is_empty()
    }

    /// The §4.2 successor rule: given the tables already joined, the
    /// eligible next tables. Connected tables if any exist; otherwise all
    /// remaining tables (the Cartesian product is then unavoidable). For
    /// an empty prefix every table is eligible.
    pub fn eligible_next(&self, chosen: TableSet) -> TableSet {
        let n = self.num_tables();
        let remaining = TableSet::all(n).minus(chosen);
        if chosen.is_empty() {
            return remaining;
        }
        let mut connected = TableSet::EMPTY;
        for t in remaining.iter() {
            if self.connected(t, chosen) {
                connected.insert(t);
            }
        }
        if connected.is_empty() {
            remaining
        } else {
            connected
        }
    }

    /// Count the join orders reachable under the successor rule (used in
    /// tests and to size UCT statistics; exponential — only call for small
    /// `n`).
    pub fn count_valid_orders(&self) -> u64 {
        fn rec(g: &JoinGraph, chosen: TableSet, depth: usize) -> u64 {
            if depth == g.num_tables() {
                return 1;
            }
            let mut total = 0;
            for t in g.eligible_next(chosen).iter() {
                let mut next = chosen;
                next.insert(t);
                total += rec(g, next, depth + 1);
            }
            total
        }
        rec(self, TableSet::EMPTY, 0)
    }

    /// True if the whole query is connected (no forced Cartesian product).
    pub fn is_connected(&self) -> bool {
        let n = self.num_tables();
        if n <= 1 {
            return true;
        }
        let mut seen = TableSet::single(0);
        let mut frontier = vec![0usize];
        while let Some(t) = frontier.pop() {
            for nb in self.adjacency[t].iter() {
                if !seen.contains(nb) {
                    seen.insert(nb);
                    frontier.push(nb);
                }
            }
        }
        seen.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::query::{SelectItem, TableBinding};
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};
    use std::sync::Arc;

    fn query_with_preds(n: usize, preds: Vec<Expr>) -> Query {
        let tables = (0..n)
            .map(|i| TableBinding {
                alias: format!("t{i}"),
                table: Arc::new(
                    Table::new(
                        format!("t{i}"),
                        Schema::new([ColumnDef::new("id", ValueType::Int)]),
                        vec![Column::from_ints(vec![1])],
                    )
                    .unwrap(),
                ),
            })
            .collect();
        Query {
            tables,
            predicates: preds,
            select: vec![SelectItem::Expr {
                expr: Expr::col(0, 0),
                name: "id".into(),
            }],
            group_by: vec![],
            order_by: vec![],
            distinct: false,
            limit: None,
        }
    }

    fn chain(n: usize) -> Query {
        // t0-t1-t2-...-t(n-1)
        let preds = (0..n - 1)
            .map(|i| Expr::col(i, 0).eq(Expr::col(i + 1, 0)))
            .collect();
        query_with_preds(n, preds)
    }

    fn star(n: usize) -> Query {
        // t0 is the hub
        let preds = (1..n)
            .map(|i| Expr::col(0, 0).eq(Expr::col(i, 0)))
            .collect();
        query_with_preds(n, preds)
    }

    #[test]
    fn chain_adjacency() {
        let g = JoinGraph::from_query(&chain(4));
        assert_eq!(g.neighbors(0), TableSet::single(1));
        assert_eq!(g.neighbors(1), [0usize, 2].into_iter().collect());
        assert!(g.is_connected());
    }

    #[test]
    fn eligible_next_prefers_connected() {
        let g = JoinGraph::from_query(&chain(4));
        // chose t0 → only t1 eligible
        assert_eq!(g.eligible_next(TableSet::single(0)), TableSet::single(1));
        // chose {t0,t1} → only t2
        let chosen: TableSet = [0usize, 1].into_iter().collect();
        assert_eq!(g.eligible_next(chosen), TableSet::single(2));
        // empty prefix → all
        assert_eq!(g.eligible_next(TableSet::EMPTY), TableSet::all(4));
    }

    #[test]
    fn cartesian_fallback_when_disconnected() {
        // two disconnected components: t0-t1 and t2-t3
        let q = query_with_preds(
            4,
            vec![
                Expr::col(0, 0).eq(Expr::col(1, 0)),
                Expr::col(2, 0).eq(Expr::col(3, 0)),
            ],
        );
        let g = JoinGraph::from_query(&q);
        assert!(!g.is_connected());
        // after {t0,t1}, neither t2 nor t3 connects → both eligible
        let chosen: TableSet = [0usize, 1].into_iter().collect();
        let elig = g.eligible_next(chosen);
        assert_eq!(elig, [2usize, 3].into_iter().collect());
    }

    #[test]
    fn chain_order_count() {
        // Valid orders for a chain of n tables = 2^(n-1): each extension
        // adds to either end of the current interval.
        for n in 2..=6 {
            let g = JoinGraph::from_query(&chain(n));
            assert_eq!(g.count_valid_orders(), 1 << (n - 1), "chain n={n}");
        }
    }

    #[test]
    fn star_order_count() {
        // Star: first table is the hub (then (n-1)! orders for spokes) or
        // a spoke (hub must come second, then (n-2)! arrangements).
        // n=4: hub-first 3! = 6, spoke-first 3 * 2! = 6 → 12.
        let g = JoinGraph::from_query(&star(4));
        assert_eq!(g.count_valid_orders(), 12);
    }

    #[test]
    fn multiway_predicate_connects_all_its_tables() {
        // predicate over t0,t1,t2 at once
        let q = query_with_preds(
            3,
            vec![Expr::col(0, 0).add(Expr::col(1, 0)).eq(Expr::col(2, 0))],
        );
        let g = JoinGraph::from_query(&q);
        assert!(g.is_connected());
        assert_eq!(g.neighbors(0), [1usize, 2].into_iter().collect());
    }

    #[test]
    fn single_table_is_connected() {
        let g = JoinGraph::from_query(&query_with_preds(1, vec![]));
        assert!(g.is_connected());
        assert_eq!(g.eligible_next(TableSet::EMPTY), TableSet::single(0));
    }
}
