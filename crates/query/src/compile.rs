//! Predicate compilation: typed fast paths over tuple-index rows.
//!
//! Execution engines identify a candidate result tuple by one base-table
//! row id per joined table (`rows: &[u32]`, indexed by [`TableId`]). A
//! [`CompiledPred`] evaluates one WHERE conjunct against such a tuple.
//! Common shapes (integer column vs. constant, integer column vs. integer
//! column, dictionary-code string equality, IN lists) compile to direct
//! typed column accesses; everything else — including UDFs — falls back to
//! the generic [`Expr::eval`] interpreter.
//!
//! The *vectorized* column engine and Skinner-C use compiled predicates;
//! the simulated row engine deliberately uses only the generic interpreter,
//! reproducing the per-tuple overhead gap between MonetDB and Postgres
//! that the paper's experiments exhibit.

use crate::expr::{BinOp, ColRef, Expr, RowContext};
use crate::query::Query;
use crate::TableId;
use skinner_storage::table::TableRef;
use skinner_storage::{FxHashSet, Value};
use std::cmp::Ordering;

/// Row context reading values straight out of base tables at the row ids
/// in `rows` (one per query table; slots for not-yet-joined tables are
/// unused).
pub struct TupleContext<'a> {
    /// Base-table row id per query table.
    pub rows: &'a [u32],
    /// The query's tables.
    pub tables: &'a [TableRef],
}

impl RowContext for TupleContext<'_> {
    fn value(&self, col: ColRef) -> Value {
        self.tables[col.table]
            .column(col.column)
            .get(self.rows[col.table] as usize)
    }
}

#[derive(Debug, Clone)]
enum Fast {
    /// `int_col <op> k`
    IntCmpConst {
        t: TableId,
        c: usize,
        op: BinOp,
        k: i64,
    },
    /// `float_col <op> k`
    FloatCmpConst {
        t: TableId,
        c: usize,
        op: BinOp,
        k: f64,
    },
    /// `str_col = 'lit'` as a dictionary-code comparison; `None` code
    /// means the literal does not occur in the dictionary (always false).
    StrEqCode {
        t: TableId,
        c: usize,
        code: Option<u32>,
        negated: bool,
    },
    /// `int_col <op> int_col` across tables.
    IntCmpInt {
        t1: TableId,
        c1: usize,
        op: BinOp,
        t2: TableId,
        c2: usize,
    },
    /// `int_col IN (k1, k2, ...)`.
    IntInList {
        t: TableId,
        c: usize,
        set: FxHashSet<i64>,
    },
    /// Anything else: interpret the expression tree.
    Generic,
}

/// One WHERE conjunct compiled against a fixed table list.
#[derive(Debug, Clone)]
pub struct CompiledPred {
    fast: Fast,
    expr: Expr,
    tables: crate::expr::TableSet,
    has_udf: bool,
}

/// Fold literal-only *arithmetic* subtrees into their values: a binary
/// `+ - * / %` (or unary negation) whose operands folded to literals is
/// evaluated now, once, instead of per tuple. Arithmetic evaluation is
/// context-free and deterministic (division by zero folds to NULL, same
/// as at runtime), so semantics are unchanged. Comparisons and logic are
/// left alone — their three-valued edge cases stay in one place, the
/// interpreter.
fn fold_consts(e: Expr) -> Expr {
    match e {
        Expr::Binary { op, left, right } => {
            let left = Box::new(fold_consts(*left));
            let right = Box::new(fold_consts(*right));
            let arithmetic = matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
            );
            if arithmetic {
                if let (Expr::Literal(_), Expr::Literal(_)) = (left.as_ref(), right.as_ref()) {
                    let folded = Expr::Binary { op, left, right };
                    let v = folded.eval(&|_: crate::ColRef| Value::Null);
                    return Expr::Literal(v);
                }
            }
            Expr::Binary { op, left, right }
        }
        Expr::Unary { op, expr } => {
            let expr = Box::new(fold_consts(*expr));
            if op == crate::expr::UnOp::Neg {
                if let Expr::Literal(_) = expr.as_ref() {
                    let folded = Expr::Unary { op, expr };
                    let v = folded.eval(&|_: crate::ColRef| Value::Null);
                    return Expr::Literal(v);
                }
            }
            Expr::Unary { op, expr }
        }
        Expr::InList { expr, list } => Expr::InList {
            expr: Box::new(fold_consts(*expr)),
            list,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(fold_consts(*expr)),
            pattern,
            negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(fold_consts(*expr)),
            negated,
        },
        Expr::Udf { udf, args } => Expr::Udf {
            udf,
            args: args.into_iter().map(fold_consts).collect(),
        },
        other => other,
    }
}

fn cmp_matches(op: BinOp, ord: Ordering) -> bool {
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => false,
    }
}

impl CompiledPred {
    /// Compile `expr` for evaluation against `tables`. Literal-only
    /// arithmetic subtrees are folded first (`DATE '…' + INTERVAL '…'`
    /// becomes one date constant), so date-arithmetic comparisons reach
    /// the same typed fast paths as plain constants.
    pub fn compile(expr: &Expr, tables: &[TableRef]) -> CompiledPred {
        let folded = fold_consts(expr.clone());
        let fast = Self::try_fast(&folded, tables).unwrap_or(Fast::Generic);
        CompiledPred {
            fast,
            expr: folded,
            tables: expr.tables(),
            has_udf: expr.contains_udf(),
        }
    }

    fn try_fast(expr: &Expr, tables: &[TableRef]) -> Option<Fast> {
        use skinner_storage::ValueType;
        match expr {
            Expr::Binary { op, left, right } if op.is_comparison() => {
                match (left.as_ref(), right.as_ref()) {
                    (Expr::Col(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Col(c)) => {
                        // Normalize literal-on-left to column-on-left.
                        let op = if matches!(left.as_ref(), Expr::Literal(_)) {
                            flip(*op)
                        } else {
                            *op
                        };
                        let col = tables[c.table].column(c.column);
                        if col.nullable() {
                            return None; // generic path handles 3VL
                        }
                        match (col.value_type(), v) {
                            // Date/Interval constants reuse the i64 fast
                            // path: days are exact 64-bit payloads, and
                            // the type lattice was already enforced by
                            // this (column type, literal type) match.
                            (ValueType::Int, Value::Int(k))
                            | (ValueType::Date, Value::Date(k))
                            | (ValueType::Interval, Value::Interval(k)) => {
                                Some(Fast::IntCmpConst {
                                    t: c.table,
                                    c: c.column,
                                    op,
                                    k: *k,
                                })
                            }
                            (ValueType::Float, Value::Float(k)) => Some(Fast::FloatCmpConst {
                                t: c.table,
                                c: c.column,
                                op,
                                k: *k,
                            }),
                            (ValueType::Float, Value::Int(k)) => Some(Fast::FloatCmpConst {
                                t: c.table,
                                c: c.column,
                                op,
                                k: *k as f64,
                            }),
                            (ValueType::Str, Value::Str(s))
                                if op == BinOp::Eq || op == BinOp::Ne =>
                            {
                                Some(Fast::StrEqCode {
                                    t: c.table,
                                    c: c.column,
                                    code: col.dict().and_then(|d| d.code_of(s)),
                                    negated: op == BinOp::Ne,
                                })
                            }
                            _ => None,
                        }
                    }
                    (Expr::Col(a), Expr::Col(b)) => {
                        let ca = tables[a.table].column(a.column);
                        let cb = tables[b.table].column(b.column);
                        if ca.nullable() || cb.nullable() {
                            return None;
                        }
                        // Same-type i64-backed pairs (Int=Int, Date=Date,
                        // Interval=Interval) compare exactly on the raw
                        // payload; mixed pairs stay generic (the lattice
                        // makes them NULL, which the interpreter handles).
                        let same_i64 = ca.value_type() == cb.value_type()
                            && matches!(
                                ca.value_type(),
                                ValueType::Int | ValueType::Date | ValueType::Interval
                            );
                        if same_i64 {
                            Some(Fast::IntCmpInt {
                                t1: a.table,
                                c1: a.column,
                                op: *op,
                                t2: b.table,
                                c2: b.column,
                            })
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            Expr::InList { expr, list } => {
                if let Expr::Col(c) = expr.as_ref() {
                    let col = tables[c.table].column(c.column);
                    if col.nullable() || col.value_type() != ValueType::Int {
                        return None;
                    }
                    let mut set = FxHashSet::default();
                    for v in list {
                        set.insert(v.as_int()?);
                    }
                    Some(Fast::IntInList {
                        t: c.table,
                        c: c.column,
                        set,
                    })
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Tables referenced by the conjunct.
    pub fn tables(&self) -> crate::expr::TableSet {
        self.tables
    }

    /// The original expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// True if this conjunct calls a UDF (never fast-pathed).
    pub fn has_udf(&self) -> bool {
        self.has_udf
    }

    /// Evaluate against the tuple `rows` (SQL WHERE semantics: NULL is
    /// false).
    #[inline]
    pub fn eval(&self, rows: &[u32], tables: &[TableRef]) -> bool {
        match &self.fast {
            Fast::IntCmpConst { t, c, op, k } => {
                let v = tables[*t].column(*c).int(rows[*t] as usize);
                cmp_matches(*op, v.cmp(k))
            }
            Fast::FloatCmpConst { t, c, op, k } => {
                let v = tables[*t].column(*c).float(rows[*t] as usize);
                v.partial_cmp(k).is_some_and(|o| cmp_matches(*op, o))
            }
            Fast::StrEqCode {
                t,
                c,
                code,
                negated,
            } => {
                let v = tables[*t].column(*c).str_code(rows[*t] as usize);
                let eq = *code == Some(v);
                eq != *negated
            }
            Fast::IntCmpInt { t1, c1, op, t2, c2 } => {
                let a = tables[*t1].column(*c1).int(rows[*t1] as usize);
                let b = tables[*t2].column(*c2).int(rows[*t2] as usize);
                cmp_matches(*op, a.cmp(&b))
            }
            Fast::IntInList { t, c, set } => {
                set.contains(&tables[*t].column(*c).int(rows[*t] as usize))
            }
            Fast::Generic => {
                let ctx = TupleContext { rows, tables };
                self.expr.eval_predicate(&ctx)
            }
        }
    }

    /// True if the fast path is active (used by tests and the bench suite
    /// to confirm coverage of hot shapes).
    pub fn is_fast(&self) -> bool {
        !matches!(self.fast, Fast::Generic)
    }

    /// Bind this conjunct to `tables` for repeated evaluation: resolve
    /// table/column indirections *once*, capturing raw typed column
    /// slices, so the per-tuple hot path touches only `rows` and flat
    /// memory. The generic fallback (UDFs, LIKE, NULLs, …) keeps
    /// interpreter semantics unchanged.
    pub fn bind<'a>(&'a self, tables: &'a [TableRef]) -> BoundPred<'a> {
        match &self.fast {
            Fast::IntCmpConst { t, c, op, k } => BoundPred::IntCmpConst {
                col: tables[*t].column(*c).i64s().expect("i64 fast path"),
                t: *t,
                mask: op_mask(*op),
                k: *k,
            },
            Fast::FloatCmpConst { t, c, op, k } => BoundPred::FloatCmpConst {
                col: tables[*t].column(*c).floats().expect("FLOAT fast path"),
                t: *t,
                mask: op_mask(*op),
                k: *k,
            },
            Fast::StrEqCode {
                t,
                c,
                code,
                negated,
            } => BoundPred::StrEqCode {
                codes: tables[*t].column(*c).str_codes().expect("TEXT fast path"),
                t: *t,
                code: *code,
                negated: *negated,
            },
            Fast::IntCmpInt { t1, c1, op, t2, c2 } => BoundPred::IntCmpInt {
                a: tables[*t1].column(*c1).i64s().expect("i64 fast path"),
                ta: *t1,
                b: tables[*t2].column(*c2).i64s().expect("i64 fast path"),
                tb: *t2,
                mask: op_mask(*op),
            },
            Fast::IntInList { t, c, set } => BoundPred::IntInList {
                col: tables[*t].column(*c).i64s().expect("i64 fast path"),
                t: *t,
                set,
            },
            Fast::Generic => BoundPred::Generic { pred: self, tables },
        }
    }
}

/// Comparison-outcome bitmask: plan-time specialization of a [`BinOp`]
/// into the set of accepted [`Ordering`]s, so the per-tuple test is a
/// single AND instead of an operator dispatch.
const ORD_LT: u8 = 1;
const ORD_EQ: u8 = 2;
const ORD_GT: u8 = 4;

fn op_mask(op: BinOp) -> u8 {
    match op {
        BinOp::Eq => ORD_EQ,
        BinOp::Ne => ORD_LT | ORD_GT,
        BinOp::Lt => ORD_LT,
        BinOp::Le => ORD_LT | ORD_EQ,
        BinOp::Gt => ORD_GT,
        BinOp::Ge => ORD_GT | ORD_EQ,
        _ => 0,
    }
}

#[inline(always)]
fn ord_bit(ord: Ordering) -> u8 {
    match ord {
        Ordering::Less => ORD_LT,
        Ordering::Equal => ORD_EQ,
        Ordering::Greater => ORD_GT,
    }
}

/// A [`CompiledPred`] bound to a fixed table list: every table/column
/// indirection resolved at plan time into raw typed slices. This is what
/// the order-specialized multi-way join kernel evaluates per tuple —
/// the closest safe-Rust analogue of the paper's per-query code
/// generation (§6 of Trummer et al., SIGMOD 2019).
#[derive(Debug, Clone, Copy)]
pub enum BoundPred<'a> {
    /// `int_col <op> k` over a raw `i64` slice.
    IntCmpConst {
        /// Column data.
        col: &'a [i64],
        /// Owning table (selects the row id from `rows`).
        t: TableId,
        /// Accepted-ordering bitmask (see `op_mask`).
        mask: u8,
        /// Constant operand.
        k: i64,
    },
    /// `float_col <op> k` over a raw `f64` slice.
    FloatCmpConst {
        /// Column data.
        col: &'a [f64],
        /// Owning table.
        t: TableId,
        /// Accepted-ordering bitmask.
        mask: u8,
        /// Constant operand.
        k: f64,
    },
    /// `str_col = 'lit'` as a dictionary-code comparison over the raw
    /// code slice; `None` code means the literal is not in the dictionary.
    StrEqCode {
        /// Dictionary codes.
        codes: &'a [u32],
        /// Owning table.
        t: TableId,
        /// Code of the literal, if interned.
        code: Option<u32>,
        /// True for `!=`.
        negated: bool,
    },
    /// `int_col <op> int_col` across tables, both as raw slices.
    IntCmpInt {
        /// Left column data.
        a: &'a [i64],
        /// Left table.
        ta: TableId,
        /// Right column data.
        b: &'a [i64],
        /// Right table.
        tb: TableId,
        /// Accepted-ordering bitmask.
        mask: u8,
    },
    /// `int_col IN (...)` over a raw slice and the compiled constant set.
    IntInList {
        /// Column data.
        col: &'a [i64],
        /// Owning table.
        t: TableId,
        /// The IN-list constants.
        set: &'a FxHashSet<i64>,
    },
    /// Anything else: the generic interpreter, unchanged semantics.
    Generic {
        /// The compiled conjunct.
        pred: &'a CompiledPred,
        /// The query's tables.
        tables: &'a [TableRef],
    },
}

impl BoundPred<'_> {
    /// Structural variant tag, used by the kernel compiler's shape
    /// fingerprints (`skinner-codegen`'s `KernelKey`): two predicates
    /// with equal tags compile to the same inner-loop code.
    pub fn shape_tag(&self) -> u8 {
        match self {
            BoundPred::IntCmpConst { mask, .. } => 0x10 | mask,
            BoundPred::FloatCmpConst { mask, .. } => 0x20 | mask,
            BoundPred::StrEqCode { negated, .. } => 0x30 | u8::from(*negated),
            BoundPred::IntCmpInt { mask, .. } => 0x40 | mask,
            BoundPred::IntInList { .. } => 0x50,
            BoundPred::Generic { .. } => 0x60,
        }
    }

    /// True for an exact integer equality between two non-nullable `i64`
    /// columns — the only predicate shape a hash-index jump fully
    /// implies (integer join keys are the values themselves), and
    /// therefore the only one the kernel compiler may elide.
    pub fn is_exact_int_eq(&self) -> bool {
        matches!(self, BoundPred::IntCmpInt { mask, .. } if *mask == ORD_EQ)
    }

    /// Evaluate against the tuple `rows` (SQL WHERE semantics: NULL is
    /// false). Matches [`CompiledPred::eval`] exactly.
    #[inline(always)]
    pub fn eval(&self, rows: &[u32]) -> bool {
        match self {
            BoundPred::IntCmpConst { col, t, mask, k } => {
                mask & ord_bit(col[rows[*t] as usize].cmp(k)) != 0
            }
            BoundPred::FloatCmpConst { col, t, mask, k } => {
                match col[rows[*t] as usize].partial_cmp(k) {
                    Some(ord) => mask & ord_bit(ord) != 0,
                    None => false,
                }
            }
            BoundPred::StrEqCode {
                codes,
                t,
                code,
                negated,
            } => {
                let eq = *code == Some(codes[rows[*t] as usize]);
                eq != *negated
            }
            BoundPred::IntCmpInt { a, ta, b, tb, mask } => {
                let va = a[rows[*ta] as usize];
                let vb = b[rows[*tb] as usize];
                mask & ord_bit(va.cmp(&vb)) != 0
            }
            BoundPred::IntInList { col, t, set } => set.contains(&col[rows[*t] as usize]),
            BoundPred::Generic { pred, tables } => pred.eval(rows, tables),
        }
    }
}

/// Compile every WHERE conjunct of `query`.
pub fn compile_predicates(query: &Query) -> Vec<CompiledPred> {
    let tables: Vec<TableRef> = query.tables.iter().map(|b| b.table.clone()).collect();
    query
        .predicates
        .iter()
        .map(|p| CompiledPred::compile(p, &tables))
        .collect()
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};
    use std::sync::Arc;

    fn tables() -> Vec<TableRef> {
        vec![
            Arc::new(
                Table::new(
                    "a",
                    Schema::new([
                        ColumnDef::new("x", ValueType::Int),
                        ColumnDef::new("s", ValueType::Str),
                        ColumnDef::new("f", ValueType::Float),
                    ]),
                    vec![
                        Column::from_ints(vec![1, 5, 9]),
                        Column::from_strs(["p", "q", "r"]),
                        Column::from_floats(vec![0.5, 1.5, 2.5]),
                    ],
                )
                .unwrap(),
            ),
            Arc::new(
                Table::new(
                    "b",
                    Schema::new([ColumnDef::new("y", ValueType::Int)]),
                    vec![Column::from_ints(vec![5, 9, 1])],
                )
                .unwrap(),
            ),
        ]
    }

    #[test]
    fn int_cmp_const_fast() {
        let ts = tables();
        let p = CompiledPred::compile(&Expr::col(0, 0).ge(Expr::lit(5)), &ts);
        assert!(p.is_fast());
        assert!(!p.eval(&[0, 0], &ts));
        assert!(p.eval(&[1, 0], &ts));
        assert!(p.eval(&[2, 0], &ts));
    }

    #[test]
    fn literal_on_left_flips() {
        let ts = tables();
        // 5 <= a.x  ≡  a.x >= 5
        let p = CompiledPred::compile(&Expr::lit(5).le(Expr::col(0, 0)), &ts);
        assert!(p.is_fast());
        assert!(!p.eval(&[0, 0], &ts));
        assert!(p.eval(&[1, 0], &ts));
    }

    #[test]
    fn str_eq_code_fast() {
        let ts = tables();
        let p = CompiledPred::compile(&Expr::col(0, 1).eq(Expr::lit("q")), &ts);
        assert!(p.is_fast());
        assert!(!p.eval(&[0, 0], &ts));
        assert!(p.eval(&[1, 0], &ts));
        // literal not in dictionary → always false
        let p = CompiledPred::compile(&Expr::col(0, 1).eq(Expr::lit("zz")), &ts);
        assert!(p.is_fast());
        assert!(!p.eval(&[0, 0], &ts));
        // NE variant
        let p = CompiledPred::compile(&Expr::col(0, 1).ne(Expr::lit("q")), &ts);
        assert!(p.eval(&[0, 0], &ts));
        assert!(!p.eval(&[1, 0], &ts));
    }

    #[test]
    fn int_cmp_int_join_fast() {
        let ts = tables();
        let p = CompiledPred::compile(&Expr::col(0, 0).eq(Expr::col(1, 0)), &ts);
        assert!(p.is_fast());
        assert!(p.eval(&[1, 0], &ts)); // a.x=5, b.y=5
        assert!(!p.eval(&[0, 0], &ts)); // 1 vs 5
        assert!(p.eval(&[0, 2], &ts)); // 1 vs 1
    }

    #[test]
    fn in_list_fast() {
        let ts = tables();
        let p = CompiledPred::compile(
            &Expr::col(0, 0).in_list(vec![Value::Int(1), Value::Int(9)]),
            &ts,
        );
        assert!(p.is_fast());
        assert!(p.eval(&[0, 0], &ts));
        assert!(!p.eval(&[1, 0], &ts));
        assert!(p.eval(&[2, 0], &ts));
    }

    #[test]
    fn float_cmp_fast_and_int_widening() {
        let ts = tables();
        let p = CompiledPred::compile(&Expr::col(0, 2).gt(Expr::lit(1)), &ts);
        assert!(p.is_fast());
        assert!(!p.eval(&[0, 0], &ts));
        assert!(p.eval(&[1, 0], &ts));
    }

    fn date_tables() -> Vec<TableRef> {
        vec![
            Arc::new(
                Table::new(
                    "o",
                    Schema::new([ColumnDef::new("day", ValueType::Date)]),
                    vec![Column::from_dates(vec![100, 150, 220])],
                )
                .unwrap(),
            ),
            Arc::new(
                Table::new(
                    "s",
                    Schema::new([ColumnDef::new("day", ValueType::Date)]),
                    vec![Column::from_dates(vec![150, 100, 150])],
                )
                .unwrap(),
            ),
        ]
    }

    #[test]
    fn date_const_and_date_arithmetic_fast_paths() {
        let ts = date_tables();
        // Plain date constant.
        let p = CompiledPred::compile(&Expr::col(0, 0).lt(Expr::Literal(Value::Date(151))), &ts);
        assert!(p.is_fast());
        assert!(p.eval(&[0, 0], &ts));
        assert!(p.eval(&[1, 0], &ts));
        assert!(!p.eval(&[2, 0], &ts));
        // DATE + INTERVAL folds to a date constant and stays fast.
        let arith = Expr::col(0, 0)
            .lt(Expr::Literal(Value::Date(120)).add(Expr::Literal(Value::Interval(31))));
        let p = CompiledPred::compile(&arith, &ts);
        assert!(p.is_fast(), "folded date arithmetic must hit a fast path");
        assert!(p.eval(&[0, 0], &ts));
        assert!(p.eval(&[1, 0], &ts)); // 150 < 151
        assert!(!p.eval(&[2, 0], &ts));
        // Date = Date across tables is the exact i64 path (elidable).
        let j = CompiledPred::compile(&Expr::col(0, 0).eq(Expr::col(1, 0)), &ts);
        assert!(j.is_fast());
        assert!(j.bind(&ts).is_exact_int_eq());
        assert!(j.eval(&[1, 0], &ts)); // 150 = 150
        assert!(!j.eval(&[0, 0], &ts));
        // Mixed Date vs Int literal stays generic (lattice: always NULL).
        let mixed = CompiledPred::compile(&Expr::col(0, 0).lt(Expr::lit(999)), &ts);
        assert!(!mixed.is_fast());
        assert!(!mixed.eval(&[0, 0], &ts));
        // Bound evaluation matches compiled evaluation on every row pair.
        for e in [
            Expr::col(0, 0).lt(Expr::Literal(Value::Date(151))),
            Expr::col(0, 0).eq(Expr::col(1, 0)),
            arith,
        ] {
            let p = CompiledPred::compile(&e, &ts);
            let b = p.bind(&ts);
            for a in 0..3u32 {
                for c in 0..3u32 {
                    assert_eq!(b.eval(&[a, c]), p.eval(&[a, c], &ts), "{e:?} [{a},{c}]");
                }
            }
        }
    }

    #[test]
    fn const_fold_preserves_division_by_zero() {
        let ts = tables();
        // (4 / 0) folds to NULL; the comparison is then NULL → false.
        let div = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::lit(4)),
            right: Box::new(Expr::lit(0)),
        };
        let e = Expr::col(0, 0).lt(div);
        let p = CompiledPred::compile(&e, &ts);
        assert!(!p.eval(&[0, 0], &ts));
        let ctx = TupleContext {
            rows: &[0, 0],
            tables: &ts,
        };
        assert_eq!(p.eval(&[0, 0], &ts), e.eval_predicate(&ctx));
    }

    #[test]
    fn generic_fallback_matches_interpreter() {
        let ts = tables();
        // LIKE is not fast-pathed
        let e = Expr::col(0, 1).like("q%");
        let p = CompiledPred::compile(&e, &ts);
        assert!(!p.is_fast());
        assert!(p.eval(&[1, 0], &ts));
        assert!(!p.eval(&[0, 0], &ts));
    }

    #[test]
    fn bound_agrees_with_compiled_eval() {
        let ts = tables();
        let preds = vec![
            Expr::col(0, 0).lt(Expr::lit(6)),
            Expr::col(0, 0).eq(Expr::col(1, 0)),
            Expr::col(0, 1).eq(Expr::lit("p")),
            Expr::col(0, 1).ne(Expr::lit("zz")),
            Expr::col(0, 2).le(Expr::lit(1.5)),
            Expr::col(0, 0).in_list(vec![Value::Int(1), Value::Int(9)]),
            Expr::col(0, 1).like("q%"), // generic fallback
        ];
        for e in preds {
            let p = CompiledPred::compile(&e, &ts);
            let bound = p.bind(&ts);
            for a in 0..3u32 {
                for b in 0..3u32 {
                    let rows = [a, b];
                    assert_eq!(
                        bound.eval(&rows),
                        p.eval(&rows, &ts),
                        "bound/eval disagreement on {e:?} rows {rows:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shape_tags_and_exact_int_eq() {
        let ts = tables();
        let bindp = |e: &Expr| CompiledPred::compile(e, &ts);
        let eq = bindp(&Expr::col(0, 0).eq(Expr::col(1, 0)));
        let lt = bindp(&Expr::col(0, 0).lt(Expr::col(1, 0)));
        let konst = bindp(&Expr::col(0, 0).eq(Expr::lit(5)));
        let like = bindp(&Expr::col(0, 1).like("q%"));
        assert!(eq.bind(&ts).is_exact_int_eq());
        assert!(!lt.bind(&ts).is_exact_int_eq());
        assert!(!konst.bind(&ts).is_exact_int_eq());
        assert!(!like.bind(&ts).is_exact_int_eq());
        // Tags separate shapes but ignore constants.
        let konst2 = bindp(&Expr::col(0, 0).eq(Expr::lit(99)));
        assert_eq!(konst.bind(&ts).shape_tag(), konst2.bind(&ts).shape_tag());
        assert_ne!(eq.bind(&ts).shape_tag(), lt.bind(&ts).shape_tag());
        assert_ne!(eq.bind(&ts).shape_tag(), konst.bind(&ts).shape_tag());
        assert_ne!(konst.bind(&ts).shape_tag(), like.bind(&ts).shape_tag());
    }

    #[test]
    fn fast_and_generic_agree_on_all_rows() {
        let ts = tables();
        let preds = vec![
            Expr::col(0, 0).lt(Expr::lit(6)),
            Expr::col(0, 0).eq(Expr::col(1, 0)),
            Expr::col(0, 1).eq(Expr::lit("p")),
            Expr::col(0, 2).le(Expr::lit(1.5)),
        ];
        for e in preds {
            let p = CompiledPred::compile(&e, &ts);
            for a in 0..3u32 {
                for b in 0..3u32 {
                    let rows = [a, b];
                    let ctx = TupleContext {
                        rows: &rows,
                        tables: &ts,
                    };
                    assert_eq!(
                        p.eval(&rows, &ts),
                        e.eval_predicate(&ctx),
                        "disagreement on {e:?} rows {rows:?}"
                    );
                }
            }
        }
    }
}
