//! Scalar expressions over query tables.

use crate::udf::Udf;
use crate::TableId;
use skinner_storage::Value;
use std::fmt;
use std::sync::Arc;

/// A reference to one column of one query table (both resolved to
/// indices: `table` into the query's FROM list, `column` into the table's
/// schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColRef {
    /// FROM-list position of the table.
    pub table: TableId,
    /// Schema position of the column.
    pub column: usize,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinOp {
    /// Is this a comparison producing a boolean?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical negation (`NOT`).
    Not,
    /// Arithmetic negation (`-`).
    Neg,
}

/// The set of query tables an expression references, as a bitmask.
/// Queries are limited to 64 tables (the paper's largest query joins 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TableSet(pub u64);

impl TableSet {
    /// Empty set.
    pub const EMPTY: TableSet = TableSet(0);

    /// Singleton set.
    pub fn single(t: TableId) -> TableSet {
        debug_assert!(t < 64);
        TableSet(1 << t)
    }

    /// Set of all tables `0..n`.
    pub fn all(n: usize) -> TableSet {
        debug_assert!(n <= 64);
        if n == 64 {
            TableSet(!0)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    /// Membership test.
    pub fn contains(self, t: TableId) -> bool {
        self.0 >> t & 1 == 1
    }

    /// Insert a table.
    pub fn insert(&mut self, t: TableId) {
        self.0 |= 1 << t;
    }

    /// Union.
    pub fn union(self, other: TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    /// Intersection.
    pub fn intersect(self, other: TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    /// Difference `self \ other`.
    pub fn minus(self, other: TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    /// Is this a subset of `other`?
    pub fn is_subset_of(self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of tables in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate members in ascending order.
    pub fn iter(self) -> impl Iterator<Item = TableId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let t = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(t)
            }
        })
    }
}

impl fmt::Display for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TableId> for TableSet {
    fn from_iter<I: IntoIterator<Item = TableId>>(iter: I) -> Self {
        let mut s = TableSet::EMPTY;
        for t in iter {
            s.insert(t);
        }
        s
    }
}

/// A scalar expression tree.
#[derive(Clone)]
pub enum Expr {
    /// Constant.
    Literal(Value),
    /// Column reference.
    Col(ColRef),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Black-box user-defined function call.
    Udf {
        /// Shared UDF definition.
        udf: Arc<Udf>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// Constant list.
        list: Vec<Value>,
    },
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// String expression.
        expr: Box<Expr>,
        /// SQL LIKE pattern.
        pattern: String,
        /// Negated (`NOT LIKE`).
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated (`IS NOT NULL`).
        negated: bool,
    },
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v:?}"),
            Expr::Col(c) => write!(f, "t{}.c{}", c.table, c.column),
            Expr::Binary { op, left, right } => write!(f, "({left:?} {op:?} {right:?})"),
            Expr::Unary { op, expr } => write!(f, "({op:?} {expr:?})"),
            Expr::Udf { udf, args } => write!(f, "{}({args:?})", udf.name),
            Expr::InList { expr, list } => write!(f, "({expr:?} IN {list:?})"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr:?} {}LIKE {pattern:?})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::IsNull { expr, negated } => write!(
                f,
                "({expr:?} IS {}NULL)",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

/// Row-valued evaluation context: maps a column reference to the value of
/// the current candidate tuple.
pub trait RowContext {
    /// Value of `col` in the current row combination.
    fn value(&self, col: ColRef) -> Value;
}

impl<F: Fn(ColRef) -> Value> RowContext for F {
    fn value(&self, col: ColRef) -> Value {
        self(col)
    }
}

/// SQL LIKE matcher supporting `%` (any run) and `_` (any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    // Iterative two-pointer algorithm with backtracking on the last `%`.
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn bool_val(b: bool) -> Value {
    Value::Int(b as i64)
}

impl Expr {
    /// Shorthand: literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: column expression.
    pub fn col(table: TableId, column: usize) -> Expr {
        Expr::Col(ColRef { table, column })
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self = rhs`
    pub fn eq(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Eq, rhs)
    }
    /// `self <> rhs`
    pub fn ne(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ne, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Lt, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Le, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Gt, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Ge, rhs)
    }
    /// `self AND rhs`
    pub fn and(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }
    /// `self OR rhs`
    pub fn or(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }
    /// `self + rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }
    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }
    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }
    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }
    /// `self IN (list)`
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
        }
    }
    /// `self LIKE pattern`
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like {
            expr: Box::new(self),
            pattern: pattern.into(),
            negated: false,
        }
    }

    /// Set of query tables this expression references.
    pub fn tables(&self) -> TableSet {
        let mut s = TableSet::EMPTY;
        self.collect_tables(&mut s);
        s
    }

    fn collect_tables(&self, s: &mut TableSet) {
        match self {
            Expr::Literal(_) => {}
            Expr::Col(c) => s.insert(c.table),
            Expr::Binary { left, right, .. } => {
                left.collect_tables(s);
                right.collect_tables(s);
            }
            Expr::Unary { expr, .. } => expr.collect_tables(s),
            Expr::Udf { args, .. } => {
                for a in args {
                    a.collect_tables(s);
                }
            }
            Expr::InList { expr, .. } => expr.collect_tables(s),
            Expr::Like { expr, .. } => expr.collect_tables(s),
            Expr::IsNull { expr, .. } => expr.collect_tables(s),
        }
    }

    /// Collect all column references.
    pub fn col_refs(&self, out: &mut Vec<ColRef>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Col(c) => out.push(*c),
            Expr::Binary { left, right, .. } => {
                left.col_refs(out);
                right.col_refs(out);
            }
            Expr::Unary { expr, .. } => expr.col_refs(out),
            Expr::Udf { args, .. } => {
                for a in args {
                    a.col_refs(out);
                }
            }
            Expr::InList { expr, .. } => expr.col_refs(out),
            Expr::Like { expr, .. } => expr.col_refs(out),
            Expr::IsNull { expr, .. } => expr.col_refs(out),
        }
    }

    /// If this conjunct is an equality between single columns of two
    /// *different* tables, return the pair — the shape hash indexes and
    /// hash joins accelerate.
    pub fn as_equi_join(&self) -> Option<(ColRef, ColRef)> {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = self
        {
            if let (Expr::Col(a), Expr::Col(b)) = (left.as_ref(), right.as_ref()) {
                if a.table != b.table {
                    return Some((*a, *b));
                }
            }
        }
        None
    }

    /// Does the expression contain a UDF call anywhere?
    pub fn contains_udf(&self) -> bool {
        match self {
            Expr::Udf { .. } => true,
            Expr::Literal(_) | Expr::Col(_) => false,
            Expr::Binary { left, right, .. } => left.contains_udf() || right.contains_udf(),
            Expr::Unary { expr, .. }
            | Expr::InList { expr, .. }
            | Expr::Like { expr, .. }
            | Expr::IsNull { expr, .. } => expr.contains_udf(),
        }
    }

    /// Total UDF cost hint of one evaluation (0 if no UDFs). The simulated
    /// engines spin for this many abstract work units per call to model
    /// expensive predicates.
    pub fn udf_cost(&self) -> f64 {
        match self {
            Expr::Udf { udf, args } => {
                udf.cost_hint as f64 + args.iter().map(Expr::udf_cost).sum::<f64>()
            }
            Expr::Literal(_) | Expr::Col(_) => 0.0,
            Expr::Binary { left, right, .. } => left.udf_cost() + right.udf_cost(),
            Expr::Unary { expr, .. }
            | Expr::InList { expr, .. }
            | Expr::Like { expr, .. }
            | Expr::IsNull { expr, .. } => expr.udf_cost(),
        }
    }

    /// Evaluate against a row context, with SQL three-valued logic for
    /// comparisons (NULL-producing comparisons yield `Value::Null`).
    pub fn eval(&self, ctx: &impl RowContext) -> Value {
        match self {
            Expr::Literal(v) => v.clone(),
            Expr::Col(c) => ctx.value(*c),
            Expr::Binary { op, left, right } => {
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        let l = left.eval(ctx);
                        if !l.is_null() && !l.is_truthy() {
                            return bool_val(false);
                        }
                        let r = right.eval(ctx);
                        if !r.is_null() && !r.is_truthy() {
                            return bool_val(false);
                        }
                        if l.is_null() || r.is_null() {
                            return Value::Null;
                        }
                        bool_val(true)
                    }
                    BinOp::Or => {
                        let l = left.eval(ctx);
                        if !l.is_null() && l.is_truthy() {
                            return bool_val(true);
                        }
                        let r = right.eval(ctx);
                        if !r.is_null() && r.is_truthy() {
                            return bool_val(true);
                        }
                        if l.is_null() || r.is_null() {
                            return Value::Null;
                        }
                        bool_val(false)
                    }
                    _ => {
                        let l = left.eval(ctx);
                        let r = right.eval(ctx);
                        eval_binary(*op, &l, &r)
                    }
                }
            }
            Expr::Unary { op, expr } => {
                let v = expr.eval(ctx);
                match op {
                    UnOp::Not => {
                        if v.is_null() {
                            Value::Null
                        } else {
                            bool_val(!v.is_truthy())
                        }
                    }
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        Value::Interval(d) => Value::Interval(-d),
                        _ => Value::Null,
                    },
                }
            }
            Expr::Udf { udf, args } => {
                let vals: Vec<Value> = args.iter().map(|a| a.eval(ctx)).collect();
                udf.call(&vals)
            }
            Expr::InList { expr, list } => {
                let v = expr.eval(ctx);
                if v.is_null() {
                    return Value::Null;
                }
                bool_val(list.iter().any(|x| v.sql_eq(x) == Some(true)))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(ctx);
                match v.as_str() {
                    Some(s) => bool_val(like_match(s, pattern) != *negated),
                    None => Value::Null,
                }
            }
            Expr::IsNull { expr, negated } => bool_val(expr.eval(ctx).is_null() != *negated),
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn eval_predicate(&self, ctx: &impl RowContext) -> bool {
        let v = self.eval(ctx);
        !v.is_null() && v.is_truthy()
    }
}

fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Value {
    use std::cmp::Ordering;
    if op.is_comparison() {
        return match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => bool_val(match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            }),
        };
    }
    // Temporal arithmetic (the date/interval lattice): dates shift by
    // intervals, date differences are intervals, intervals add among
    // themselves and scale by integers. Anything else temporal is NULL.
    match (l, r) {
        (Value::Date(a), Value::Interval(b)) => {
            return match op {
                BinOp::Add => Value::Date(a.wrapping_add(*b)),
                BinOp::Sub => Value::Date(a.wrapping_sub(*b)),
                _ => Value::Null,
            }
        }
        (Value::Interval(a), Value::Date(b)) => {
            return match op {
                BinOp::Add => Value::Date(b.wrapping_add(*a)),
                _ => Value::Null,
            }
        }
        (Value::Date(a), Value::Date(b)) => {
            return match op {
                BinOp::Sub => Value::Interval(a.wrapping_sub(*b)),
                _ => Value::Null,
            }
        }
        (Value::Interval(a), Value::Interval(b)) => {
            return match op {
                BinOp::Add => Value::Interval(a.wrapping_add(*b)),
                BinOp::Sub => Value::Interval(a.wrapping_sub(*b)),
                _ => Value::Null,
            }
        }
        (Value::Interval(a), Value::Int(b)) | (Value::Int(b), Value::Interval(a)) => {
            return match op {
                BinOp::Mul => Value::Interval(a.wrapping_mul(*b)),
                _ => Value::Null,
            }
        }
        (Value::Date(_), _)
        | (_, Value::Date(_))
        | (Value::Interval(_), _)
        | (_, Value::Interval(_)) => return Value::Null,
        _ => {}
    }
    // Arithmetic: int op int stays int (except /), otherwise widen to f64.
    match (l, r) {
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Int(a), Value::Int(b)) => match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_rem(*b))
                }
            }
            _ => Value::Null,
        },
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Value::Null,
            };
            match op {
                BinOp::Add => Value::Float(a + b),
                BinOp::Sub => Value::Float(a - b),
                BinOp::Mul => Value::Float(a * b),
                BinOp::Div => Value::Float(a / b),
                BinOp::Mod => Value::Float(a % b),
                _ => Value::Null,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(vals: Vec<Value>) -> impl RowContext {
        move |c: ColRef| vals[c.column].clone()
    }

    #[test]
    fn table_set_ops() {
        let a: TableSet = [0usize, 2, 5].into_iter().collect();
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(1));
        let b = TableSet::single(2);
        assert!(b.is_subset_of(a));
        assert_eq!(a.minus(b).len(), 2);
        assert_eq!(a.intersect(b), b);
        assert_eq!(TableSet::all(3).0, 0b111);
        let members: Vec<_> = a.iter().collect();
        assert_eq!(members, vec![0, 2, 5]);
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::col(0, 0).add(Expr::lit(3)).gt(Expr::lit(10));
        let c = ctx(vec![Value::Int(8)]);
        assert_eq!(e.eval(&c), Value::Int(1));
        let c = ctx(vec![Value::Int(7)]);
        assert_eq!(e.eval(&c), Value::Int(0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::lit(4).bin(BinOp::Div, Expr::lit(0));
        assert_eq!(e.eval(&ctx(vec![])), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        // NULL AND false = false; NULL AND true = NULL; NULL OR true = true
        let null = Expr::Literal(Value::Null);
        let t = Expr::lit(1);
        let f = Expr::lit(0);
        assert_eq!(
            null.clone().and(f.clone()).eval(&ctx(vec![])),
            Value::Int(0)
        );
        assert_eq!(null.clone().and(t.clone()).eval(&ctx(vec![])), Value::Null);
        assert_eq!(null.clone().or(t).eval(&ctx(vec![])), Value::Int(1));
        assert_eq!(null.clone().or(f).eval(&ctx(vec![])), Value::Null);
        assert_eq!(null.not().eval(&ctx(vec![])), Value::Null);
    }

    #[test]
    fn null_comparison_filtered_by_predicate() {
        let e = Expr::col(0, 0).eq(Expr::lit(1));
        let c = ctx(vec![Value::Null]);
        assert_eq!(e.eval(&c), Value::Null);
        assert!(!e.eval_predicate(&c));
    }

    #[test]
    fn in_list() {
        let e = Expr::col(0, 0).in_list(vec![Value::Int(1), Value::Int(3)]);
        assert!(e.eval_predicate(&ctx(vec![Value::Int(3)])));
        assert!(!e.eval_predicate(&ctx(vec![Value::Int(2)])));
        assert!(!e.eval_predicate(&ctx(vec![Value::Null])));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(!like_match("hello", "Hello"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn like_expr_negation() {
        let e = Expr::Like {
            expr: Box::new(Expr::col(0, 0)),
            pattern: "a%".into(),
            negated: true,
        };
        assert!(!e.eval_predicate(&ctx(vec![Value::str("abc")])));
        assert!(e.eval_predicate(&ctx(vec![Value::str("xyz")])));
    }

    #[test]
    fn equi_join_detection() {
        let e = Expr::col(0, 1).eq(Expr::col(2, 0));
        let (a, b) = e.as_equi_join().unwrap();
        assert_eq!((a.table, a.column), (0, 1));
        assert_eq!((b.table, b.column), (2, 0));
        // same table: not a join
        assert!(Expr::col(1, 0).eq(Expr::col(1, 1)).as_equi_join().is_none());
        // non-eq: not a join
        assert!(Expr::col(0, 0).lt(Expr::col(1, 0)).as_equi_join().is_none());
    }

    #[test]
    fn tables_collection() {
        let e = Expr::col(0, 0)
            .eq(Expr::col(3, 1))
            .and(Expr::col(1, 0).gt(Expr::lit(5)));
        let s = e.tables();
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(1) && s.contains(3));
    }

    #[test]
    fn date_interval_arithmetic() {
        let d = |days: i64| Expr::Literal(Value::Date(days));
        let iv = |days: i64| Expr::Literal(Value::Interval(days));
        let empty = ctx(vec![]);
        assert_eq!(d(100).add(iv(30)).eval(&empty), Value::Date(130));
        assert_eq!(d(100).sub(iv(30)).eval(&empty), Value::Date(70));
        assert_eq!(iv(30).add(d(100)).eval(&empty), Value::Date(130));
        assert_eq!(d(130).sub(d(100)).eval(&empty), Value::Interval(30));
        assert_eq!(iv(30).add(iv(12)).eval(&empty), Value::Interval(42));
        assert_eq!(iv(30).mul(Expr::lit(3)).eval(&empty), Value::Interval(90));
        assert_eq!(Expr::lit(3).mul(iv(30)).eval(&empty), Value::Interval(90));
        // Off-lattice combinations are NULL, not panics.
        assert_eq!(d(100).add(d(1)).eval(&empty), Value::Null);
        assert_eq!(d(100).add(Expr::lit(1)).eval(&empty), Value::Null);
        assert_eq!(d(100).mul(iv(2)).eval(&empty), Value::Null);
        assert_eq!(iv(5).add(Expr::lit(0.5)).eval(&empty), Value::Null);
        // Comparisons go through sql_cmp: date < date works, date < int
        // is NULL (filtered by predicates).
        assert!(d(1).lt(d(2)).eval_predicate(&empty));
        assert!(!d(1).lt(Expr::lit(2)).eval_predicate(&empty));
        // A date shifted by an interval compares as a date.
        assert!(d(100).lt(d(80).add(iv(30))).eval_predicate(&empty));
        // Negated interval.
        let neg = Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(iv(7)),
        };
        assert_eq!(neg.eval(&empty), Value::Interval(-7));
    }

    #[test]
    fn is_null_expr() {
        let e = Expr::IsNull {
            expr: Box::new(Expr::col(0, 0)),
            negated: false,
        };
        assert!(e.eval_predicate(&ctx(vec![Value::Null])));
        assert!(!e.eval_predicate(&ctx(vec![Value::Int(1)])));
    }
}
