//! Query-layer errors.

use skinner_storage::StorageError;
use std::fmt;

/// Errors raised while building, parsing, or validating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Underlying storage error (missing table/column).
    Storage(StorageError),
    /// Unknown table alias in an expression.
    UnknownAlias(String),
    /// Unknown column name.
    UnknownColumn(String),
    /// Ambiguous unqualified column name.
    AmbiguousColumn(String),
    /// Unknown UDF name.
    UnknownUdf(String),
    /// SQL syntax error with position information.
    Syntax {
        /// Human-readable message.
        message: String,
        /// Byte offset in the input.
        offset: usize,
    },
    /// Structurally invalid query (e.g. zero tables, >64 tables).
    Invalid(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "{e}"),
            QueryError::UnknownAlias(a) => write!(f, "unknown table alias: {a}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            QueryError::UnknownUdf(u) => write!(f, "unknown UDF: {u}"),
            QueryError::Syntax { message, offset } => {
                write!(f, "syntax error at byte {offset}: {message}")
            }
            QueryError::Invalid(m) => write!(f, "invalid query: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}
