//! User-defined functions: black-box predicates and scalar functions.
//!
//! UDF predicates "may hide complex code, invocations of external
//! services, or even calls to human crowd workers" (paper appendix) and
//! must be treated as opaque by any optimizer. They are the scenario where
//! SkinnerDB's learn-during-execution approach shines (Figure 9, the
//! TPC-H/UDF variant in Figure 13/Table 7).
//!
//! A [`Udf`] carries an optional `cost_hint`: an abstract amount of extra
//! work per invocation that [`Udf::call`] actually performs (a checked
//! arithmetic spin loop), so that expensive predicates are expensive for
//! *every* engine in the benchmark suite, uniformly.

use skinner_storage::Value;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type UdfFn = dyn Fn(&[Value]) -> Value + Send + Sync;

/// A named, opaque scalar function.
pub struct Udf {
    /// Function name as referenced from SQL.
    pub name: String,
    /// Abstract per-invocation cost (work units burned by [`Udf::call`]).
    pub cost_hint: u32,
    func: Box<UdfFn>,
    calls: AtomicU64,
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Udf")
            .field("name", &self.name)
            .field("cost_hint", &self.cost_hint)
            .field("calls", &self.calls.load(Ordering::Relaxed))
            .finish()
    }
}

impl Udf {
    /// Define a UDF with zero extra cost.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Arc<Udf> {
        Udf::with_cost(name, 0, f)
    }

    /// Define a UDF that burns `cost_hint` abstract work units per call.
    pub fn with_cost(
        name: impl Into<String>,
        cost_hint: u32,
        f: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) -> Arc<Udf> {
        Arc::new(Udf {
            name: name.into(),
            cost_hint,
            func: Box::new(f),
            calls: AtomicU64::new(0),
        })
    }

    /// Invoke the UDF (counts the call and burns `cost_hint` work units).
    pub fn call(&self, args: &[Value]) -> Value {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.cost_hint > 0 {
            // Burn deterministic work so expensive UDFs cost wall-clock
            // time in every engine; black_box prevents removal.
            let mut acc = 0u64;
            for i in 0..self.cost_hint {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
            }
            std::hint::black_box(acc);
        }
        (self.func)(args)
    }

    /// Number of invocations so far (used by the Figure 11 experiment to
    /// count predicate evaluations, an engine-independent effort metric).
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Reset the invocation counter.
    pub fn reset_calls(&self) {
        self.calls.store(0, Ordering::Relaxed);
    }
}

/// A registry resolving UDF names for the SQL parser.
#[derive(Default, Clone)]
pub struct UdfRegistry {
    udfs: Vec<Arc<Udf>>,
}

impl fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UdfRegistry({} udfs)", self.udfs.len())
    }
}

impl UdfRegistry {
    /// Empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Register a UDF (later registrations shadow earlier ones by name).
    pub fn register(&mut self, udf: Arc<Udf>) {
        self.udfs.push(udf);
    }

    /// Resolve a UDF by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<Arc<Udf>> {
        self.udfs
            .iter()
            .rev()
            .find(|u| u.name.eq_ignore_ascii_case(name))
            .cloned()
    }

    /// All registered UDFs.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Udf>> {
        self.udfs.iter()
    }

    /// Sum of call counts over all registered UDFs.
    pub fn total_calls(&self) -> u64 {
        self.udfs.iter().map(|u| u.call_count()).sum()
    }

    /// Reset call counts on all registered UDFs.
    pub fn reset_calls(&self) {
        for u in &self.udfs {
            u.reset_calls();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_and_count() {
        let u = Udf::new("is_even", |args| {
            Value::from(args[0].as_int().is_some_and(|i| i % 2 == 0))
        });
        assert_eq!(u.call(&[Value::Int(4)]), Value::Int(1));
        assert_eq!(u.call(&[Value::Int(5)]), Value::Int(0));
        assert_eq!(u.call_count(), 2);
        u.reset_calls();
        assert_eq!(u.call_count(), 0);
    }

    #[test]
    fn cost_hint_burns_work() {
        let u = Udf::with_cost("slow", 1000, |_| Value::Int(1));
        assert_eq!(u.call(&[]), Value::Int(1));
        assert_eq!(u.cost_hint, 1000);
    }

    #[test]
    fn registry_lookup_case_insensitive_and_shadowing() {
        let mut r = UdfRegistry::new();
        r.register(Udf::new("f", |_| Value::Int(1)));
        r.register(Udf::new("F", |_| Value::Int(2)));
        assert_eq!(r.get("f").unwrap().call(&[]), Value::Int(2));
        assert!(r.get("g").is_none());
        assert_eq!(r.total_calls(), 1);
    }
}
