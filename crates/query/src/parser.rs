//! A small SQL dialect sufficient for every query shape in the paper's
//! evaluation (SPJ + aggregates + GROUP BY / ORDER BY / LIMIT / DISTINCT,
//! IN / LIKE / BETWEEN / IS NULL predicates, and registered UDF calls).
//!
//! ```text
//! SELECT [DISTINCT] item [, item ...]
//! FROM table [AS] alias [, ...]
//! [WHERE predicate]
//! [GROUP BY expr [, ...]]
//! [ORDER BY output [ASC|DESC] [, ...]]
//! [LIMIT n]
//! ```

use crate::error::QueryError;
use crate::expr::{BinOp, Expr, UnOp};
use crate::query::{Agg, AggFunc, OrderKey, Query, SelectItem, TableBinding};
use crate::udf::UdfRegistry;
use skinner_storage::{Catalog, FxHashMap, Value};

/// Parse `sql` against `catalog`; `udfs` resolves UDF calls.
pub fn parse(sql: &str, catalog: &Catalog, udfs: &UdfRegistry) -> Result<Query, QueryError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
        udfs,
        tables: Vec::new(),
        aliases: FxHashMap::default(),
    };
    let q = p.parse_query()?;
    q.validate()?;
    Ok(q)
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    offset: usize,
}

fn tokenize(sql: &str) -> Result<Vec<Spanned>, QueryError> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            '\'' => {
                // string literal with '' escaping
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(QueryError::Syntax {
                            message: "unterminated string literal".into(),
                            offset: start,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || bytes[j] == b'.' || bytes[j] == b'e')
                {
                    if bytes[j] == b'.' || bytes[j] == b'e' {
                        is_float = true;
                    }
                    j += 1;
                    if j < bytes.len() && bytes[j - 1] == b'e' && bytes[j] == b'-' {
                        j += 1;
                    }
                }
                let text = &sql[i..j];
                let tok = if is_float {
                    Tok::Float(text.parse().map_err(|_| QueryError::Syntax {
                        message: format!("bad number: {text}"),
                        offset: start,
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| QueryError::Syntax {
                        message: format!("bad number: {text}"),
                        offset: start,
                    })?)
                };
                out.push(Spanned { tok, offset: start });
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(sql[i..j].to_string()),
                    offset: start,
                });
                i = j;
            }
            '<' => {
                let sym = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    "<="
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 2;
                    "<>"
                } else {
                    i += 1;
                    "<"
                };
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    offset: start,
                });
            }
            '>' => {
                let sym = if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    i += 2;
                    ">="
                } else {
                    i += 1;
                    ">"
                };
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    offset: start,
                });
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                i += 2;
                out.push(Spanned {
                    tok: Tok::Sym("<>"),
                    offset: start,
                });
            }
            '=' | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '%' | ';' => {
                let sym: &'static str = match c {
                    '=' => "=",
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    '+' => "+",
                    '-' => "-",
                    '/' => "/",
                    '%' => "%",
                    ';' => ";",
                    _ => unreachable!(),
                };
                i += 1;
                out.push(Spanned {
                    tok: Tok::Sym(sym),
                    offset: start,
                });
            }
            other => {
                return Err(QueryError::Syntax {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                });
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    tokens: Vec<Spanned>,
    pos: usize,
    catalog: &'a Catalog,
    udfs: &'a UdfRegistry,
    tables: Vec<TableBinding>,
    aliases: FxHashMap<String, usize>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |s| s.offset)
    }

    fn err(&self, msg: impl Into<String>) -> QueryError {
        QueryError::Syntax {
            message: msg.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), QueryError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected {sym:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos -= 1;
                Err(self.err("expected identifier"))
            }
        }
    }

    fn parse_query(&mut self) -> Result<Query, QueryError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");

        // The SELECT list references FROM aliases, so capture it raw and
        // resolve after FROM. We record token positions and re-parse.
        let select_start = self.pos;
        self.skip_until_kw("FROM")?;
        let select_end = self.pos;
        self.expect_kw("FROM")?;

        // FROM list
        loop {
            let name = self.ident()?;
            let alias = if self.eat_kw("AS") {
                self.ident()?
            } else if let Some(Tok::Ident(next)) = self.peek() {
                if is_clause_keyword(next) {
                    name.clone()
                } else {
                    self.ident()?
                }
            } else {
                name.clone()
            };
            if self.aliases.contains_key(&alias) {
                return Err(QueryError::Invalid(format!("duplicate alias: {alias}")));
            }
            let table = self.catalog.get(&name)?;
            self.aliases.insert(alias.clone(), self.tables.len());
            self.tables.push(TableBinding { alias, table });
            if !self.eat_sym(",") {
                break;
            }
        }

        // WHERE
        let mut predicates = Vec::new();
        if self.eat_kw("WHERE") {
            let pred = self.parse_or()?;
            split_conjuncts(pred, &mut predicates);
        }

        // GROUP BY
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_add()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        // ORDER BY (names resolved against the SELECT list below)
        let mut order_raw: Vec<(String, bool)> = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let name = match self.next() {
                    Some(Tok::Ident(s)) => s,
                    Some(Tok::Int(i)) => format!("#{i}"),
                    _ => return Err(self.err("expected ORDER BY key")),
                };
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_raw.push((name, asc));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }

        // LIMIT
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("expected LIMIT count")),
            }
        } else {
            None
        };

        self.eat_sym(";");
        if self.pos < self.tokens.len() {
            return Err(self.err("trailing tokens after query"));
        }

        // Now resolve the deferred SELECT list.
        let end_state = self.pos;
        self.pos = select_start;
        let select = self.parse_select_list(select_end)?;
        self.pos = end_state;

        // Resolve ORDER BY keys against output names / positions.
        let mut order_by = Vec::new();
        for (name, asc) in order_raw {
            let output = if let Some(stripped) = name.strip_prefix('#') {
                let idx: usize = stripped
                    .parse()
                    .map_err(|_| QueryError::Invalid(format!("bad ORDER BY position {name}")))?;
                idx.checked_sub(1)
                    .ok_or_else(|| QueryError::Invalid("ORDER BY position 0".into()))?
            } else {
                select
                    .iter()
                    .position(|s| s.name().eq_ignore_ascii_case(&name))
                    .ok_or_else(|| QueryError::UnknownColumn(name.clone()))?
            };
            order_by.push(OrderKey { output, asc });
        }

        Ok(Query {
            tables: std::mem::take(&mut self.tables),
            predicates,
            select,
            group_by,
            order_by,
            distinct,
            limit,
        })
    }

    fn skip_until_kw(&mut self, kw: &str) -> Result<(), QueryError> {
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Sym("(") => depth += 1,
                Tok::Sym(")") => depth = depth.saturating_sub(1),
                Tok::Ident(s) if depth == 0 && s.eq_ignore_ascii_case(kw) => return Ok(()),
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.err(format!("expected {kw} clause")))
    }

    fn parse_select_list(&mut self, end: usize) -> Result<Vec<SelectItem>, QueryError> {
        let mut items = Vec::new();
        loop {
            if self.pos >= end {
                return Err(self.err("empty SELECT item"));
            }
            // `*` or `alias.*`
            if self.eat_sym("*") {
                for (t, binding) in self.tables.iter().enumerate() {
                    for (c, def) in binding.table.schema().columns().iter().enumerate() {
                        items.push(SelectItem::Expr {
                            expr: Expr::col(t, c),
                            name: format!("{}.{}", binding.alias, def.name),
                        });
                    }
                }
            } else if let Some(item) = self.try_parse_star_qualified()? {
                items.extend(item);
            } else if let Some(agg) = self.try_parse_aggregate()? {
                let name = if self.eat_kw("AS") {
                    self.ident()?
                } else {
                    default_agg_name(&agg)
                };
                items.push(SelectItem::Agg { agg, name });
            } else {
                let expr = self.parse_add()?;
                let name = if self.eat_kw("AS") {
                    self.ident()?
                } else {
                    self.infer_name(&expr, items.len())
                };
                items.push(SelectItem::Expr { expr, name });
            }
            if self.pos >= end || !self.eat_sym(",") {
                break;
            }
        }
        if self.pos != end {
            return Err(self.err("unexpected token in SELECT list"));
        }
        Ok(items)
    }

    fn try_parse_star_qualified(&mut self) -> Result<Option<Vec<SelectItem>>, QueryError> {
        // alias.* — look ahead for Ident "." "*"
        let is_star = matches!(
            (
                self.peek(),
                self.tokens.get(self.pos + 1).map(|s| &s.tok),
                self.tokens.get(self.pos + 2).map(|s| &s.tok),
            ),
            (
                Some(Tok::Ident(_)),
                Some(Tok::Sym(".")),
                Some(Tok::Sym("*"))
            )
        );
        if is_star {
            let alias = match self.peek() {
                Some(Tok::Ident(a)) => a.clone(),
                _ => unreachable!(),
            };
            let &t = self
                .aliases
                .get(&alias)
                .ok_or_else(|| QueryError::UnknownAlias(alias.clone()))?;
            self.pos += 3;
            let binding = &self.tables[t];
            let items = binding
                .table
                .schema()
                .columns()
                .iter()
                .enumerate()
                .map(|(c, def)| SelectItem::Expr {
                    expr: Expr::col(t, c),
                    name: format!("{}.{}", binding.alias, def.name),
                })
                .collect();
            return Ok(Some(items));
        }
        Ok(None)
    }

    fn try_parse_aggregate(&mut self) -> Result<Option<Agg>, QueryError> {
        let func = match self.peek() {
            Some(Tok::Ident(s)) => match s.to_ascii_uppercase().as_str() {
                "COUNT" => AggFunc::Count,
                "SUM" => AggFunc::Sum,
                "MIN" => AggFunc::Min,
                "MAX" => AggFunc::Max,
                "AVG" => AggFunc::Avg,
                _ => return Ok(None),
            },
            _ => return Ok(None),
        };
        // must be followed by "("
        if !matches!(
            self.tokens.get(self.pos + 1).map(|s| &s.tok),
            Some(Tok::Sym("("))
        ) {
            return Ok(None);
        }
        self.pos += 2;
        let arg = if self.eat_sym("*") {
            if func != AggFunc::Count {
                return Err(self.err("only COUNT accepts *"));
            }
            None
        } else {
            Some(self.parse_add()?)
        };
        self.expect_sym(")")?;
        Ok(Some(Agg { func, arg }))
    }

    fn infer_name(&self, expr: &Expr, idx: usize) -> String {
        if let Expr::Col(c) = expr {
            let binding = &self.tables[c.table];
            let def = &binding.table.schema().columns()[c.column];
            return def.name.clone();
        }
        format!("col{idx}")
    }

    // --- expression grammar (precedence climbing) ---

    fn parse_or(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("OR") {
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("AND") {
            let rhs = self.parse_not()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, QueryError> {
        if self.eat_kw("NOT") {
            Ok(self.parse_not()?.not())
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.parse_add()?;

        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }

        // [NOT] IN / LIKE / BETWEEN
        let negated = self.eat_kw("NOT");
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_literal()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let e = lhs.in_list(list);
            return Ok(if negated { e.not() } else { e });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.next() {
                Some(Tok::Str(s)) => s,
                _ => return Err(self.err("expected LIKE pattern string")),
            };
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_add()?;
            self.expect_kw("AND")?;
            let high = self.parse_add()?;
            let e = lhs.clone().ge(low).and(lhs.le(high));
            return Ok(if negated { e.not() } else { e });
        }
        if negated {
            return Err(self.err("expected IN, LIKE or BETWEEN after NOT"));
        }

        let op = match self.peek() {
            Some(Tok::Sym("=")) => Some(BinOp::Eq),
            Some(Tok::Sym("<>")) => Some(BinOp::Ne),
            Some(Tok::Sym("<")) => Some(BinOp::Lt),
            Some(Tok::Sym("<=")) => Some(BinOp::Le),
            Some(Tok::Sym(">")) => Some(BinOp::Gt),
            Some(Tok::Sym(">=")) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.parse_add()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            });
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("+")) => BinOp::Add,
                Some(Tok::Sym("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym("*")) => BinOp::Mul,
                Some(Tok::Sym("/")) => BinOp::Div,
                Some(Tok::Sym("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary {
                op,
                left: Box::new(lhs),
                right: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, QueryError> {
        if self.eat_sym("-") {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
            });
        }
        self.parse_primary()
    }

    /// Parse a `DATE 'YYYY-MM-DD'` or `INTERVAL 'n' DAY[S]` literal when
    /// the keyword `name` was just consumed and a string literal follows
    /// (a column named `date` is otherwise unaffected).
    fn try_temporal_literal(&mut self, name: &str) -> Result<Option<Value>, QueryError> {
        let follows_str = matches!(self.peek(), Some(Tok::Str(_)));
        if name.eq_ignore_ascii_case("DATE") && follows_str {
            let Some(Tok::Str(s)) = self.next() else {
                unreachable!("peeked string");
            };
            let days = skinner_storage::parse_date(&s)
                .ok_or_else(|| self.err(format!("bad DATE literal: '{s}'")))?;
            return Ok(Some(Value::Date(days)));
        }
        if name.eq_ignore_ascii_case("INTERVAL") && follows_str {
            let Some(Tok::Str(s)) = self.next() else {
                unreachable!("peeked string");
            };
            let days: i64 = s
                .trim()
                .parse()
                .map_err(|_| self.err(format!("bad INTERVAL day count: '{s}'")))?;
            if !(self.eat_kw("DAY") || self.eat_kw("DAYS")) {
                return Err(self.err("expected DAY after INTERVAL literal"));
            }
            return Ok(Some(Value::Interval(days)));
        }
        Ok(None)
    }

    fn parse_literal(&mut self) -> Result<Value, QueryError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Float(f)) => Ok(Value::Float(f)),
            Some(Tok::Str(s)) => Ok(Value::str(s)),
            Some(Tok::Sym("-")) => match self.next() {
                Some(Tok::Int(i)) => Ok(Value::Int(-i)),
                Some(Tok::Float(f)) => Ok(Value::Float(-f)),
                _ => Err(self.err("expected number after -")),
            },
            Some(Tok::Ident(name)) => {
                if let Some(v) = self.try_temporal_literal(&name)? {
                    return Ok(v);
                }
                self.pos -= 1;
                Err(self.err("expected literal"))
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected literal"))
            }
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, QueryError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Tok::Str(s)) => Ok(Expr::Literal(Value::str(s))),
            Some(Tok::Sym("(")) => {
                let e = self.parse_or()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if let Some(v) = self.try_temporal_literal(&name)? {
                    return Ok(Expr::Literal(v));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Int(1)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Int(0)));
                }
                // UDF call?
                if matches!(self.peek(), Some(Tok::Sym("("))) {
                    let udf = self
                        .udfs
                        .get(&name)
                        .ok_or_else(|| QueryError::UnknownUdf(name.clone()))?;
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.parse_add()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                    }
                    return Ok(Expr::Udf { udf, args });
                }
                // qualified column alias.column?
                if self.eat_sym(".") {
                    let column = self.ident()?;
                    let &t = self
                        .aliases
                        .get(&name)
                        .ok_or_else(|| QueryError::UnknownAlias(name.clone()))?;
                    let c = self.tables[t]
                        .table
                        .schema()
                        .index_of(&column)
                        .ok_or_else(|| QueryError::UnknownColumn(format!("{name}.{column}")))?;
                    return Ok(Expr::col(t, c));
                }
                // unqualified column
                let mut found = None;
                for (t, binding) in self.tables.iter().enumerate() {
                    if let Some(c) = binding.table.schema().index_of(&name) {
                        if found.is_some() {
                            return Err(QueryError::AmbiguousColumn(name));
                        }
                        found = Some(Expr::col(t, c));
                    }
                }
                found.ok_or(QueryError::UnknownColumn(name))
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected expression"))
            }
        }
    }
}

fn is_clause_keyword(s: &str) -> bool {
    ["WHERE", "GROUP", "ORDER", "LIMIT", "AS", "ON"]
        .iter()
        .any(|k| s.eq_ignore_ascii_case(k))
}

fn default_agg_name(agg: &Agg) -> String {
    let f = match agg.func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
    };
    f.to_string()
}

/// Split an expression tree on top-level ANDs into conjuncts (CNF-lite:
/// ORs stay nested).
fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udf::Udf;
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "movies",
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("year", ValueType::Int),
                    ColumnDef::new("title", ValueType::Str),
                ]),
                vec![
                    Column::from_ints(vec![1, 2]),
                    Column::from_ints(vec![1999, 2005]),
                    Column::from_strs(["a", "b"]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "ratings",
                Schema::new([
                    ColumnDef::new("movie_id", ValueType::Int),
                    ColumnDef::new("score", ValueType::Float),
                ]),
                vec![Column::from_ints(vec![1]), Column::from_floats(vec![8.5])],
            )
            .unwrap(),
        );
        c
    }

    fn parse_ok(sql: &str) -> Query {
        parse(sql, &catalog(), &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn simple_select() {
        let q = parse_ok("SELECT m.title FROM movies m WHERE m.year > 2000");
        assert_eq!(q.num_tables(), 1);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.select[0].name(), "title");
    }

    #[test]
    fn join_with_conjunct_split() {
        let q = parse_ok(
            "SELECT m.title, r.score FROM movies m, ratings r \
             WHERE m.id = r.movie_id AND m.year >= 1990 AND r.score > 7.0",
        );
        assert_eq!(q.num_tables(), 2);
        assert_eq!(q.predicates.len(), 3);
        assert_eq!(q.join_predicates().count(), 1);
        assert_eq!(q.unary_predicates(0).count(), 1);
        assert_eq!(q.unary_predicates(1).count(), 1);
    }

    #[test]
    fn aggregates_and_grouping() {
        let q = parse_ok(
            "SELECT m.year, COUNT(*) AS n, AVG(r.score) AS avg_score \
             FROM movies m, ratings r WHERE m.id = r.movie_id \
             GROUP BY m.year ORDER BY n DESC LIMIT 5",
        );
        assert!(q.has_aggregates());
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.order_by[0].output, 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn distinct_and_star() {
        let q = parse_ok("SELECT DISTINCT * FROM movies");
        assert!(q.distinct);
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.select[0].name(), "movies.id");
    }

    #[test]
    fn qualified_star() {
        let q = parse_ok("SELECT m.* FROM movies m, ratings r WHERE m.id = r.movie_id");
        assert_eq!(q.select.len(), 3);
    }

    #[test]
    fn in_like_between_null() {
        let q = parse_ok(
            "SELECT m.id FROM movies m WHERE m.year IN (1999, 2005) \
             AND m.title LIKE 'a%' AND m.year BETWEEN 1990 AND 2010 \
             AND m.title IS NOT NULL",
        );
        // IN, LIKE, BETWEEN (as one conjunct: ge AND le splits into 2), IS NOT NULL
        assert_eq!(q.predicates.len(), 5);
    }

    #[test]
    fn not_in() {
        let q = parse_ok("SELECT m.id FROM movies m WHERE m.year NOT IN (1999)");
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn udf_call() {
        let mut udfs = UdfRegistry::new();
        udfs.register(Udf::new("is_good", |args| {
            Value::from(args[0].as_f64().is_some_and(|f| f > 8.0))
        }));
        let q = parse(
            "SELECT r.movie_id FROM ratings r WHERE is_good(r.score)",
            &catalog(),
            &udfs,
        )
        .unwrap();
        assert!(q.predicates[0].contains_udf());
    }

    #[test]
    fn unknown_udf_rejected() {
        let err = parse(
            "SELECT r.movie_id FROM ratings r WHERE nope(r.score)",
            &catalog(),
            &UdfRegistry::new(),
        );
        assert!(matches!(err, Err(QueryError::UnknownUdf(_))));
    }

    #[test]
    fn syntax_errors_have_position() {
        let err = parse("SELECT FROM movies", &catalog(), &UdfRegistry::new());
        assert!(err.is_err());
        let err = parse("SELECT m.id movies m", &catalog(), &UdfRegistry::new());
        assert!(err.is_err());
        let err = parse(
            "SELECT m.id FROM movies m WHERE",
            &catalog(),
            &UdfRegistry::new(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn string_literal_escaping() {
        let q = parse_ok("SELECT m.id FROM movies m WHERE m.title = 'it''s'");
        match &q.predicates[0] {
            Expr::Binary { right, .. } => match right.as_ref() {
                Expr::Literal(v) => assert_eq!(v.as_str(), Some("it's")),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn order_by_position() {
        let q = parse_ok("SELECT m.id, m.year FROM movies m ORDER BY 2 DESC");
        assert_eq!(q.order_by[0].output, 1);
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_ok("SELECT m.id + 2 * 3 AS x FROM movies m");
        if let SelectItem::Expr {
            expr: Expr::Binary { op, right, .. },
            ..
        } = &q.select[0]
        {
            // must parse as id + (2*3)
            assert_eq!(*op, BinOp::Add);
            assert!(matches!(
                right.as_ref(),
                Expr::Binary { op: BinOp::Mul, .. }
            ));
            return;
        }
        panic!("bad parse");
    }

    #[test]
    fn or_not_split() {
        let q = parse_ok("SELECT m.id FROM movies m WHERE m.year = 1999 OR m.year = 2005");
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn unary_minus() {
        let q = parse_ok("SELECT m.id FROM movies m WHERE m.year > -5");
        assert_eq!(q.predicates.len(), 1);
    }

    #[test]
    fn missing_table() {
        let err = parse("SELECT x.id FROM nope x", &catalog(), &UdfRegistry::new());
        assert!(err.is_err());
    }

    fn date_catalog() -> Catalog {
        use skinner_storage::days_from_ymd;
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "releases",
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("day", ValueType::Date),
                ]),
                vec![
                    Column::from_ints(vec![1, 2, 3]),
                    Column::from_dates(vec![
                        days_from_ymd(1995, 1, 1),
                        days_from_ymd(1995, 6, 1),
                        days_from_ymd(1996, 1, 1),
                    ]),
                ],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn date_and_interval_literals() {
        use skinner_storage::days_from_ymd;
        let q = parse(
            "SELECT r.id FROM releases r \
             WHERE r.day >= DATE '1995-03-15' \
             AND r.day < DATE '1995-03-15' + INTERVAL '90' DAY",
            &date_catalog(),
            &UdfRegistry::new(),
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        // First conjunct carries the parsed date constant.
        let found = q.predicates.iter().any(|p| {
            let mut hit = false;
            fn walk(e: &Expr, days: i64, hit: &mut bool) {
                match e {
                    Expr::Literal(Value::Date(d)) if *d == days => *hit = true,
                    Expr::Binary { left, right, .. } => {
                        walk(left, days, hit);
                        walk(right, days, hit);
                    }
                    _ => {}
                }
            }
            walk(p, days_from_ymd(1995, 3, 15), &mut hit);
            hit
        });
        assert!(found, "DATE literal not parsed into a Date value");

        // IN-list dates go through parse_literal.
        let q = parse(
            "SELECT r.id FROM releases r WHERE r.day IN (DATE '1995-01-01', DATE '1996-01-01')",
            &date_catalog(),
            &UdfRegistry::new(),
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 1);

        // Plural DAYS accepted; bad dates and missing DAY are errors.
        assert!(parse(
            "SELECT r.id FROM releases r WHERE r.day < DATE '1995-01-01' + INTERVAL '2' DAYS",
            &date_catalog(),
            &UdfRegistry::new(),
        )
        .is_ok());
        assert!(parse(
            "SELECT r.id FROM releases r WHERE r.day < DATE '1995-02-30'",
            &date_catalog(),
            &UdfRegistry::new(),
        )
        .is_err());
        assert!(parse(
            "SELECT r.id FROM releases r WHERE r.day < DATE '1995-01-01' + INTERVAL '2'",
            &date_catalog(),
            &UdfRegistry::new(),
        )
        .is_err());
    }

    #[test]
    fn date_keyword_does_not_shadow_columns() {
        // A column literally named "date" must still resolve when not
        // followed by a string literal.
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "t",
                Schema::new([ColumnDef::new("date", ValueType::Int)]),
                vec![Column::from_ints(vec![1, 2])],
            )
            .unwrap(),
        );
        let q = parse(
            "SELECT t.date FROM t WHERE date > 1",
            &c,
            &UdfRegistry::new(),
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 1);
    }
}
