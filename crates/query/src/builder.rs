//! Fluent, typed construction of resolved queries.

use crate::error::QueryError;
use crate::expr::Expr;
use crate::query::{Agg, AggFunc, OrderKey, Query, SelectItem, TableBinding};
use skinner_storage::{Catalog, FxHashMap};

/// Builds a [`Query`] against a [`Catalog`], resolving alias/column names
/// to indices as it goes.
///
/// ```
/// use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
/// use skinner_query::{QueryBuilder, Expr};
///
/// let mut catalog = Catalog::new();
/// catalog.register(Table::new(
///     "t",
///     Schema::new([ColumnDef::new("id", ValueType::Int)]),
///     vec![Column::from_ints(vec![1, 2, 3])],
/// ).unwrap());
///
/// let mut b = QueryBuilder::new(&catalog);
/// b.table("t").unwrap();
/// let id = b.col("t.id").unwrap();
/// b.filter(id.clone().gt(Expr::lit(1)));
/// b.select_expr(id, "id");
/// let query = b.build().unwrap();
/// assert_eq!(query.num_tables(), 1);
/// ```
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    catalog: &'a Catalog,
    tables: Vec<TableBinding>,
    aliases: FxHashMap<String, usize>,
    predicates: Vec<Expr>,
    select: Vec<SelectItem>,
    group_by: Vec<Expr>,
    order_by: Vec<(String, bool)>,
    distinct: bool,
    limit: Option<usize>,
}

impl<'a> QueryBuilder<'a> {
    /// Start building against `catalog`.
    pub fn new(catalog: &'a Catalog) -> QueryBuilder<'a> {
        QueryBuilder {
            catalog,
            tables: Vec::new(),
            aliases: FxHashMap::default(),
            predicates: Vec::new(),
            select: Vec::new(),
            group_by: Vec::new(),
            order_by: Vec::new(),
            distinct: false,
            limit: None,
        }
    }

    /// Add a FROM entry aliased by its own name.
    pub fn table(&mut self, name: &str) -> Result<&mut Self, QueryError> {
        self.table_as(name, name)
    }

    /// Add a FROM entry under an explicit alias.
    pub fn table_as(&mut self, name: &str, alias: &str) -> Result<&mut Self, QueryError> {
        if self.aliases.contains_key(alias) {
            return Err(QueryError::Invalid(format!("duplicate alias: {alias}")));
        }
        let table = self.catalog.get(name)?;
        self.aliases.insert(alias.to_string(), self.tables.len());
        self.tables.push(TableBinding {
            alias: alias.to_string(),
            table,
        });
        Ok(self)
    }

    /// Resolve `"alias.column"` (or an unqualified `"column"` that is
    /// unique across the FROM list) to a column expression.
    pub fn col(&self, qualified: &str) -> Result<Expr, QueryError> {
        match qualified.split_once('.') {
            Some((alias, column)) => {
                let &t = self
                    .aliases
                    .get(alias)
                    .ok_or_else(|| QueryError::UnknownAlias(alias.to_string()))?;
                let c = self.tables[t]
                    .table
                    .schema()
                    .index_of(column)
                    .ok_or_else(|| QueryError::UnknownColumn(qualified.to_string()))?;
                Ok(Expr::col(t, c))
            }
            None => {
                let mut found = None;
                for (t, binding) in self.tables.iter().enumerate() {
                    if let Some(c) = binding.table.schema().index_of(qualified) {
                        if found.is_some() {
                            return Err(QueryError::AmbiguousColumn(qualified.to_string()));
                        }
                        found = Some(Expr::col(t, c));
                    }
                }
                found.ok_or_else(|| QueryError::UnknownColumn(qualified.to_string()))
            }
        }
    }

    /// Add a WHERE conjunct.
    pub fn filter(&mut self, pred: Expr) -> &mut Self {
        self.predicates.push(pred);
        self
    }

    /// Add a plain SELECT output.
    pub fn select_expr(&mut self, expr: Expr, name: impl Into<String>) -> &mut Self {
        self.select.push(SelectItem::Expr {
            expr,
            name: name.into(),
        });
        self
    }

    /// Add a column to SELECT, named after the column.
    pub fn select_col(&mut self, qualified: &str) -> Result<&mut Self, QueryError> {
        let e = self.col(qualified)?;
        let name = qualified
            .rsplit('.')
            .next()
            .unwrap_or(qualified)
            .to_string();
        Ok(self.select_expr(e, name))
    }

    /// Add an aggregate output.
    pub fn select_agg(
        &mut self,
        func: AggFunc,
        arg: Option<Expr>,
        name: impl Into<String>,
    ) -> &mut Self {
        self.select.push(SelectItem::Agg {
            agg: Agg { func, arg },
            name: name.into(),
        });
        self
    }

    /// Add a GROUP BY expression.
    pub fn group_by(&mut self, expr: Expr) -> &mut Self {
        self.group_by.push(expr);
        self
    }

    /// Add an ORDER BY key referencing a SELECT output name.
    pub fn order_by(&mut self, output_name: &str, asc: bool) -> &mut Self {
        self.order_by.push((output_name.to_string(), asc));
        self
    }

    /// Request DISTINCT output.
    pub fn distinct(&mut self) -> &mut Self {
        self.distinct = true;
        self
    }

    /// Limit output rows.
    pub fn limit(&mut self, n: usize) -> &mut Self {
        self.limit = Some(n);
        self
    }

    /// Finish: resolve ORDER BY names, default the SELECT list to all
    /// columns if empty, and validate.
    pub fn build(self) -> Result<Query, QueryError> {
        let mut select = self.select;
        if select.is_empty() {
            // SELECT * default: every column of every table, qualified.
            for (t, binding) in self.tables.iter().enumerate() {
                for (c, def) in binding.table.schema().columns().iter().enumerate() {
                    select.push(SelectItem::Expr {
                        expr: Expr::col(t, c),
                        name: format!("{}.{}", binding.alias, def.name),
                    });
                }
            }
        }
        let mut order_by = Vec::with_capacity(self.order_by.len());
        for (name, asc) in self.order_by {
            let output = select
                .iter()
                .position(|s| s.name() == name)
                .ok_or_else(|| QueryError::UnknownColumn(name.clone()))?;
            order_by.push(OrderKey { output, asc });
        }
        let q = Query {
            tables: self.tables,
            predicates: self.predicates,
            select,
            group_by: self.group_by,
            order_by,
            distinct: self.distinct,
            limit: self.limit,
        };
        q.validate()?;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            Table::new(
                "users",
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("age", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(vec![1, 2]),
                    Column::from_ints(vec![30, 40]),
                ],
            )
            .unwrap(),
        );
        c.register(
            Table::new(
                "orders",
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("user_id", ValueType::Int),
                ]),
                vec![Column::from_ints(vec![1]), Column::from_ints(vec![2])],
            )
            .unwrap(),
        );
        c
    }

    #[test]
    fn build_join_query() {
        let cat = catalog();
        let mut b = QueryBuilder::new(&cat);
        b.table_as("users", "u").unwrap();
        b.table_as("orders", "o").unwrap();
        let join = b.col("u.id").unwrap().eq(b.col("o.user_id").unwrap());
        b.filter(join);
        b.select_col("u.age").unwrap();
        let q = b.build().unwrap();
        assert_eq!(q.num_tables(), 2);
        assert_eq!(q.join_predicates().count(), 1);
        assert_eq!(q.select[0].name(), "age");
    }

    #[test]
    fn unqualified_resolution() {
        let cat = catalog();
        let mut b = QueryBuilder::new(&cat);
        b.table("users").unwrap();
        b.table("orders").unwrap();
        // "age" unique → ok; "id" ambiguous
        assert!(b.col("age").is_ok());
        assert!(matches!(b.col("id"), Err(QueryError::AmbiguousColumn(_))));
        assert!(matches!(b.col("nope"), Err(QueryError::UnknownColumn(_))));
        assert!(matches!(b.col("x.id"), Err(QueryError::UnknownAlias(_))));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let cat = catalog();
        let mut b = QueryBuilder::new(&cat);
        b.table_as("users", "u").unwrap();
        assert!(b.table_as("orders", "u").is_err());
    }

    #[test]
    fn select_star_default() {
        let cat = catalog();
        let mut b = QueryBuilder::new(&cat);
        b.table("users").unwrap();
        let q = b.build().unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[0].name(), "users.id");
    }

    #[test]
    fn order_by_resolution() {
        let cat = catalog();
        let mut b = QueryBuilder::new(&cat);
        b.table("users").unwrap();
        let age = b.col("age").unwrap();
        b.select_expr(age, "age");
        b.order_by("age", false);
        let q = b.build().unwrap();
        assert_eq!(q.order_by[0].output, 0);
        assert!(!q.order_by[0].asc);

        let mut b = QueryBuilder::new(&cat);
        b.table("users").unwrap();
        b.select_col("users.age").unwrap();
        b.order_by("missing", true);
        assert!(b.build().is_err());
    }
}
