//! Resolved SPJ(+aggregation) queries.

use crate::expr::{Expr, TableSet};
use crate::TableId;
use skinner_storage::table::TableRef;

/// One entry of the FROM list: a catalog table bound to an alias.
#[derive(Debug, Clone)]
pub struct TableBinding {
    /// Alias used in expressions (defaults to the table name).
    pub alias: String,
    /// The bound table.
    pub table: TableRef,
}

/// Aggregate functions supported by the post-processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)`.
    Avg,
}

/// An aggregate call.
#[derive(Debug, Clone)]
pub struct Agg {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument; `None` only for `COUNT(*)`.
    pub arg: Option<Expr>,
}

/// One output column of the SELECT clause.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// Plain expression output.
    Expr {
        /// The expression.
        expr: Expr,
        /// Output column name.
        name: String,
    },
    /// Aggregate output.
    Agg {
        /// The aggregate.
        agg: Agg,
        /// Output column name.
        name: String,
    },
}

impl SelectItem {
    /// Output column name.
    pub fn name(&self) -> &str {
        match self {
            SelectItem::Expr { name, .. } | SelectItem::Agg { name, .. } => name,
        }
    }

    /// True if this item is an aggregate.
    pub fn is_agg(&self) -> bool {
        matches!(self, SelectItem::Agg { .. })
    }
}

/// ORDER BY key: output column plus direction.
#[derive(Debug, Clone)]
pub struct OrderKey {
    /// Index into the SELECT list.
    pub output: usize,
    /// Ascending?
    pub asc: bool,
}

/// One composite-key group as returned by
/// [`Query::composite_key_groups`]: the connected table pair (`a < b`)
/// and the distinct paired `(a-column, b-column)` component pairs in
/// canonical ascending order.
pub type CompositeGroup = ((TableId, TableId), Vec<(usize, usize)>);

/// A fully resolved query: SPJ core plus post-processing clauses.
///
/// `predicates` is the conjunctive normal form of the WHERE clause — each
/// element must hold. Conjuncts referencing a single table are *unary*
/// (applied by the pre-processor); conjuncts referencing two or more are
/// *join predicates* (applied during join processing). This is exactly the
/// split §3 of the paper describes.
#[derive(Debug, Clone)]
pub struct Query {
    /// FROM list; expression [`ColRef`](crate::ColRef)s index into it.
    pub tables: Vec<TableBinding>,
    /// WHERE conjuncts.
    pub predicates: Vec<Expr>,
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// GROUP BY expressions (empty = no grouping; aggregates over the
    /// whole result if any aggregate appears in SELECT).
    pub group_by: Vec<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// DISTINCT flag.
    pub distinct: bool,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl Query {
    /// Number of joined tables `m`.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Unary WHERE conjuncts that reference exactly the single table `t`
    /// (applied during pre-processing).
    pub fn unary_predicates(&self, t: TableId) -> impl Iterator<Item = &Expr> {
        let single = TableSet::single(t);
        self.predicates.iter().filter(move |p| p.tables() == single)
    }

    /// WHERE conjuncts referencing ≥ 2 tables (applied during join
    /// processing).
    pub fn join_predicates(&self) -> impl Iterator<Item = &Expr> {
        self.predicates.iter().filter(|p| p.tables().len() >= 2)
    }

    /// Equi-join column pairs among the join predicates (the columns the
    /// pre-processor builds hash indexes on, §4.5).
    pub fn equi_join_pairs(&self) -> Vec<(crate::ColRef, crate::ColRef)> {
        self.join_predicates()
            .filter_map(Expr::as_equi_join)
            .collect()
    }

    /// Composite (multi-column) equi-join key groups: for every pair of
    /// tables connected by **two or more** single-column equality
    /// conjuncts, the paired component columns in canonical order.
    ///
    /// Each entry is `((a, b), pairs)` with `a < b` (table ids) and
    /// `pairs` the distinct `(a-column, b-column)` pairs sorted
    /// ascending — the order both sides must fuse their components in
    /// for composite hash keys to agree (see
    /// [`fused_join_key`](skinner_storage::fused_join_key)). Groups are
    /// returned sorted by table pair, so the result is deterministic
    /// regardless of conjunct order in the WHERE clause.
    pub fn composite_key_groups(&self) -> Vec<CompositeGroup> {
        let mut groups: std::collections::BTreeMap<(TableId, TableId), Vec<(usize, usize)>> =
            std::collections::BTreeMap::new();
        for (ca, cb) in self.equi_join_pairs() {
            let ((ta, cola), (tb, colb)) = if ca.table < cb.table {
                ((ca.table, ca.column), (cb.table, cb.column))
            } else {
                ((cb.table, cb.column), (ca.table, ca.column))
            };
            debug_assert_ne!(ta, tb);
            groups.entry((ta, tb)).or_default().push((cola, colb));
        }
        groups
            .into_iter()
            .filter_map(|(tables, mut pairs)| {
                pairs.sort_unstable();
                pairs.dedup();
                (pairs.len() >= 2).then_some((tables, pairs))
            })
            .collect()
    }

    /// True if any aggregate appears in the SELECT list.
    pub fn has_aggregates(&self) -> bool {
        self.select.iter().any(SelectItem::is_agg)
    }

    /// The LIMIT that can be pushed into the join phase, if any.
    ///
    /// Each distinct join tuple maps to exactly one output row iff the
    /// query has no aggregates, no GROUP BY (both collapse tuples), no
    /// ORDER BY (any `n` tuples are a valid LIMIT prefix only when the
    /// output order is unconstrained), and no DISTINCT (projection may
    /// collapse distinct join tuples into equal rows). Under those
    /// conditions the join phase may stop as soon as `limit` distinct
    /// tuples exist instead of materializing the full result.
    pub fn join_limit(&self) -> Option<u64> {
        match self.limit {
            Some(n)
                if !self.has_aggregates()
                    && self.group_by.is_empty()
                    && self.order_by.is_empty()
                    && !self.distinct =>
            {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// Structural validation (arity limits, column references in range).
    pub fn validate(&self) -> Result<(), crate::QueryError> {
        use crate::QueryError;
        if self.tables.is_empty() {
            return Err(QueryError::Invalid("query joins zero tables".into()));
        }
        if self.tables.len() > 64 {
            return Err(QueryError::Invalid(format!(
                "query joins {} tables; at most 64 supported",
                self.tables.len()
            )));
        }
        let mut refs = Vec::new();
        for p in &self.predicates {
            p.col_refs(&mut refs);
        }
        for item in &self.select {
            match item {
                SelectItem::Expr { expr, .. } => expr.col_refs(&mut refs),
                SelectItem::Agg { agg, .. } => {
                    if let Some(a) = &agg.arg {
                        a.col_refs(&mut refs);
                    }
                }
            }
        }
        for g in &self.group_by {
            g.col_refs(&mut refs);
        }
        for r in refs {
            let binding = self
                .tables
                .get(r.table)
                .ok_or_else(|| QueryError::Invalid(format!("column ref to table #{}", r.table)))?;
            if r.column >= binding.table.schema().len() {
                return Err(QueryError::Invalid(format!(
                    "column ref {}.#{} out of range",
                    binding.alias, r.column
                )));
            }
        }
        for k in &self.order_by {
            if k.output >= self.select.len() {
                return Err(QueryError::Invalid(format!(
                    "ORDER BY position {} out of range",
                    k.output + 1
                )));
            }
        }
        Ok(())
    }

    /// A one-line human-readable sketch (alias list + predicate count),
    /// used in experiment logs.
    pub fn sketch(&self) -> String {
        let aliases: Vec<&str> = self.tables.iter().map(|t| t.alias.as_str()).collect();
        format!(
            "[{} tables: {}; {} predicates ({} joins)]",
            self.tables.len(),
            aliases.join(","),
            self.predicates.len(),
            self.join_predicates().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};
    use std::sync::Arc;

    fn table(name: &str) -> TableRef {
        Arc::new(
            Table::new(
                name,
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(vec![1, 2, 3]),
                    Column::from_ints(vec![10, 20, 30]),
                ],
            )
            .unwrap(),
        )
    }

    fn two_table_query() -> Query {
        Query {
            tables: vec![
                TableBinding {
                    alias: "a".into(),
                    table: table("ta"),
                },
                TableBinding {
                    alias: "b".into(),
                    table: table("tb"),
                },
            ],
            predicates: vec![
                Expr::col(0, 0).eq(Expr::col(1, 0)),
                Expr::col(0, 1).gt(Expr::lit(5)),
            ],
            select: vec![SelectItem::Expr {
                expr: Expr::col(0, 0),
                name: "id".into(),
            }],
            group_by: vec![],
            order_by: vec![],
            distinct: false,
            limit: None,
        }
    }

    #[test]
    fn predicate_classification() {
        let q = two_table_query();
        assert_eq!(q.unary_predicates(0).count(), 1);
        assert_eq!(q.unary_predicates(1).count(), 0);
        assert_eq!(q.join_predicates().count(), 1);
        assert_eq!(q.equi_join_pairs().len(), 1);
    }

    #[test]
    fn composite_groups_detected_and_canonical() {
        let mut q = two_table_query();
        assert!(
            q.composite_key_groups().is_empty(),
            "one conjunct: no group"
        );
        // Add a second equality on the same pair, written in the
        // opposite table order — the group must still come out with
        // table 0 first and pairs sorted.
        q.predicates.push(Expr::col(1, 1).eq(Expr::col(0, 1)));
        let groups = q.composite_key_groups();
        assert_eq!(groups, vec![((0, 1), vec![(0, 0), (1, 1)])]);
        // Duplicate conjuncts collapse; a group needs two *distinct*
        // column pairs.
        let mut dup = two_table_query();
        dup.predicates.push(Expr::col(0, 0).eq(Expr::col(1, 0)));
        assert!(dup.composite_key_groups().is_empty());
    }

    #[test]
    fn validation_catches_bad_refs() {
        let mut q = two_table_query();
        assert!(q.validate().is_ok());
        q.predicates.push(Expr::col(7, 0).gt(Expr::lit(1)));
        assert!(q.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_order_by() {
        let mut q = two_table_query();
        q.order_by.push(OrderKey {
            output: 3,
            asc: true,
        });
        assert!(q.validate().is_err());
    }

    #[test]
    fn aggregates_flag() {
        let mut q = two_table_query();
        assert!(!q.has_aggregates());
        q.select.push(SelectItem::Agg {
            agg: Agg {
                func: AggFunc::Count,
                arg: None,
            },
            name: "n".into(),
        });
        assert!(q.has_aggregates());
    }
}
