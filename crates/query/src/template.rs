//! Query-template normalization for cross-query learning reuse.
//!
//! SkinnerDB's learned join-order knowledge (the UCT tree, the set of
//! bound order plans) depends on the *shape* of a query — which tables
//! are joined, how they connect, which predicate forms filter them — but
//! not on the literal constants. Skinner-C's own design caches per-query
//! learning (§6 discusses per-query-template compiled code); the service
//! layer generalizes that across executions: two queries with the same
//! [`TemplateKey`] can share a learning-cache entry, so a repeated
//! template warm-starts instead of re-exploring from scratch.
//!
//! Normalization rules:
//!
//! * **Tables** — catalog table names in FROM order (aliases are
//!   irrelevant; FROM order matters because [`TableId`](crate::TableId)s
//!   index into it and the learned orders are sequences of those ids).
//! * **Predicates** — each WHERE conjunct is rendered structurally with
//!   every literal constant replaced by `?` (`IN` lists collapse to one
//!   `?`, `LIKE` patterns and `BETWEEN` bounds are stripped the same
//!   way); the rendered conjuncts are sorted so conjunct order does not
//!   split templates.
//! * **Everything else is ignored** — SELECT list, GROUP BY, ORDER BY,
//!   DISTINCT and LIMIT do not affect join-order learning, so queries
//!   differing only there deliberately share a template.
//!
//! Sharing across different constants is a heuristic: constants change
//! selectivities, so a warm-started UCT tree may begin from priors that
//! are slightly wrong for the new constants. That is safe — the tree
//! keeps learning during execution and corrects itself — and it is the
//! entire point of regret-bounded evaluation that bad priors cost
//! bounded extra slices, never wrong results.

use crate::expr::Expr;
use crate::query::Query;
use skinner_storage::hash::FxHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Normalized identity of a query template: join graph + predicate
/// shape, constants stripped. Cheap to hash and compare; the canonical
/// string is kept for logging and cache introspection.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemplateKey {
    canonical: String,
}

impl TemplateKey {
    /// Compute the template key of `query`.
    pub fn of(query: &Query) -> TemplateKey {
        let tables: Vec<&str> = query.tables.iter().map(|b| b.table.name()).collect();
        let mut preds: Vec<String> = query.predicates.iter().map(shape_of).collect();
        preds.sort_unstable();
        TemplateKey {
            canonical: format!("[{}]|{}", tables.join(","), preds.join("&")),
        }
    }

    /// Reconstruct a key from a stored canonical form (the learning
    /// cache's persistence format round-trips keys as their canonical
    /// strings). The string is trusted as-is: a mangled form simply
    /// names a template no live query will ever hash to, so the worst a
    /// corrupt record can do is occupy a cache slot until eviction.
    pub fn from_canonical(canonical: String) -> TemplateKey {
        TemplateKey { canonical }
    }

    /// The canonical normalized form (for logs and cache dumps).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// A stable 64-bit digest of the canonical form.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        self.canonical.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for TemplateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical)
    }
}

/// Render the structural shape of one predicate expression, replacing
/// every constant with `?`.
fn shape_of(e: &Expr) -> String {
    let mut out = String::new();
    render(e, &mut out);
    out
}

fn render(e: &Expr, out: &mut String) {
    match e {
        Expr::Literal(_) => out.push('?'),
        Expr::Col(c) => {
            out.push('t');
            out.push_str(&c.table.to_string());
            out.push('.');
            out.push('c');
            out.push_str(&c.column.to_string());
        }
        Expr::Binary { op, left, right } => {
            out.push('(');
            render(left, out);
            out.push_str(&format!("{op:?}"));
            render(right, out);
            out.push(')');
        }
        Expr::Unary { op, expr } => {
            out.push_str(&format!("{op:?}("));
            render(expr, out);
            out.push(')');
        }
        Expr::Udf { udf, args } => {
            out.push_str(&udf.name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(a, out);
            }
            out.push(')');
        }
        Expr::InList { expr, .. } => {
            render(expr, out);
            // List contents and length are constants: strip both.
            out.push_str(" in(?)");
        }
        Expr::Like { expr, negated, .. } => {
            render(expr, out);
            out.push_str(if *negated { " !like ?" } else { " like ?" });
        }
        Expr::IsNull { expr, negated } => {
            render(expr, out);
            out.push_str(if *negated { " notnull" } else { " isnull" });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QueryBuilder;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, Value, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b"] {
            cat.register(
                Table::new(
                    name,
                    Schema::new([
                        ColumnDef::new("k", ValueType::Int),
                        ColumnDef::new("v", ValueType::Int),
                    ]),
                    vec![
                        Column::from_ints(vec![1, 2, 3]),
                        Column::from_ints(vec![10, 20, 30]),
                    ],
                )
                .unwrap(),
            );
        }
        cat
    }

    fn query(cat: &Catalog, threshold: i64, flip: bool) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let f = qb.col("a.v").unwrap().lt(Expr::lit(threshold));
        // Conjunct order must not matter.
        if flip {
            qb.filter(f);
            qb.filter(j);
        } else {
            qb.filter(j);
            qb.filter(f);
        }
        qb.select_col("a.v").unwrap();
        qb.build().unwrap()
    }

    #[test]
    fn constants_and_conjunct_order_stripped() {
        let cat = catalog();
        let a = TemplateKey::of(&query(&cat, 5, false));
        let b = TemplateKey::of(&query(&cat, 9_999, true));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert!(a.canonical().contains('?'));
        assert!(!a.canonical().contains("9999"));
    }

    #[test]
    fn different_join_shapes_split_templates() {
        let cat = catalog();
        let base = TemplateKey::of(&query(&cat, 5, false));

        // Different comparison operator → different template.
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        let f = qb.col("a.v").unwrap().gt(Expr::lit(5));
        qb.filter(j);
        qb.filter(f);
        qb.select_col("a.v").unwrap();
        let other = TemplateKey::of(&qb.build().unwrap());
        assert_ne!(base, other);

        // Different FROM list → different template.
        let mut qb = QueryBuilder::new(&cat);
        qb.table("b").unwrap();
        qb.table("a").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_col("a.v").unwrap();
        let swapped = TemplateKey::of(&qb.build().unwrap());
        assert_ne!(base, swapped);
    }

    #[test]
    fn select_and_limit_do_not_split_templates() {
        let cat = catalog();
        let mut q1 = query(&cat, 5, false);
        let mut q2 = query(&cat, 5, false);
        q1.limit = Some(3);
        q2.distinct = true;
        assert_eq!(TemplateKey::of(&q1), TemplateKey::of(&q2));
    }

    #[test]
    fn in_list_length_stripped() {
        let cat = catalog();
        let mk = |vals: Vec<i64>| {
            let mut qb = QueryBuilder::new(&cat);
            qb.table("a").unwrap();
            qb.table("b").unwrap();
            let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
            let f = qb
                .col("a.v")
                .unwrap()
                .in_list(vals.into_iter().map(Value::Int).collect());
            qb.filter(j);
            qb.filter(f);
            qb.select_col("a.v").unwrap();
            TemplateKey::of(&qb.build().unwrap())
        };
        assert_eq!(mk(vec![1]), mk(vec![1, 2, 3, 4]));
    }
}
