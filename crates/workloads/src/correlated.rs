//! Correlated multi-column join keys + date-filtered queries (the
//! JOB-link-table workload-breadth item).
//!
//! The Join Order Benchmark's hardest tables are *link* tables —
//! `cast_info`, `movie_companies` — keyed by `(movie_id, person_id)`
//! style pairs whose components are individually non-selective but
//! jointly near-unique. A single-column hash jump enumerates every row
//! matching one component and rejects the rest per tuple; the engine's
//! composite indexes (see `skinner_engine::prepare::CompositeKeyGroup`)
//! jump straight to rows matching the fused pair. This workload builds
//! that shape deliberately:
//!
//! * `movie(id, release DATE, kind)` and `person(id, grp)` — entity
//!   tables with a [`ValueType::Date`] column for TPC-H-style date-range
//!   predicates (`release >= DATE '…' AND release < DATE '…' + INTERVAL
//!   '…' DAY`).
//! * `appearance(movie_id, person_id, role)` and
//!   `award(movie_id, person_id, won DATE)` — two link tables sharing
//!   the composite `(movie_id, person_id)` key, with correlated
//!   components (popular movies attract popular people), so the
//!   single-column fallback pays a real fan-out cost.
//!
//! The composite-key joins bind `KeyCol::Fused` jumps, which the codegen
//! tier compiles to `FusedEq` posting cursors (hash-derived, so the
//! driving conjuncts are always re-verified) — these queries exercise
//! the composite and compiled wins *composed*, with zero fallbacks,
//! asserted via `ExecMetrics::fallback_orders` in the tests below.
//!
//! All generators are seeded and deterministic. [`generate_case`]
//! produces small randomized single-query cases for the differential
//! property tests and the fuzz harness.

use crate::NamedQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_query::{AggFunc, Expr, Query, QueryBuilder};
use skinner_storage::{days_from_ymd, Catalog, Column, ColumnDef, Schema, Table, Value, ValueType};

/// A generated correlated link-table workload.
pub struct CorrelatedWorkload {
    /// The catalog (entity + link tables).
    pub catalog: Catalog,
    /// The benchmark queries.
    pub queries: Vec<NamedQuery>,
}

/// Base table sizes at `scale = 1.0`.
const MOVIES: usize = 600;
const PEOPLE: usize = 900;
const APPEARANCES: usize = 5_000;
const AWARDS: usize = 1_200;

fn sz(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(8)
}

/// Zipf-ish skewed id: the minimum of two uniform draws concentrates
/// mass on small ids, correlating link rows on popular entities.
fn skewed(rng: &mut SmallRng, n: i64) -> i64 {
    rng.gen_range(0..n).min(rng.gen_range(0..n))
}

/// Generate the workload. `scale` multiplies table sizes; `seed` fixes
/// data and query constants.
pub fn generate(scale: f64, seed: u64) -> CorrelatedWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_movies = sz(MOVIES, scale);
    let n_people = sz(PEOPLE, scale);
    let n_app = sz(APPEARANCES, scale);
    let n_awards = sz(AWARDS, scale);
    let epoch = days_from_ymd(1990, 1, 1);
    let span = days_from_ymd(2010, 1, 1) - epoch;

    let mut catalog = Catalog::new();

    // movie(id INT, release DATE, kind TEXT)
    catalog.register(
        Table::new(
            "movie",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("release", ValueType::Date),
                ColumnDef::new("kind", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..n_movies as i64).collect()),
                Column::from_dates(
                    (0..n_movies)
                        .map(|_| epoch + rng.gen_range(0..span))
                        .collect(),
                ),
                Column::from_strs(
                    (0..n_movies)
                        .map(|_| ["feature", "short", "series"][rng.gen_range(0..3)])
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .expect("movie"),
    );

    // person(id INT, grp INT)
    catalog.register(
        Table::new(
            "person",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("grp", ValueType::Int),
            ]),
            vec![
                Column::from_ints((0..n_people as i64).collect()),
                Column::from_ints((0..n_people).map(|_| rng.gen_range(0..8)).collect()),
            ],
        )
        .expect("person"),
    );

    // appearance(movie_id INT, person_id INT, role TEXT): the big link
    // table; components skewed toward popular movies/people.
    let app_pairs: Vec<(i64, i64)> = (0..n_app)
        .map(|_| {
            (
                skewed(&mut rng, n_movies as i64),
                skewed(&mut rng, n_people as i64),
            )
        })
        .collect();
    catalog.register(
        Table::new(
            "appearance",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("person_id", ValueType::Int),
                ColumnDef::new("role", ValueType::Str),
            ]),
            vec![
                Column::from_ints(app_pairs.iter().map(|&(m, _)| m).collect()),
                Column::from_ints(app_pairs.iter().map(|&(_, p)| p).collect()),
                Column::from_strs(
                    (0..n_app)
                        .map(|_| ["actor", "director", "writer", "crew"][rng.gen_range(0..4)])
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .expect("appearance"),
    );

    // award(movie_id INT, person_id INT, won DATE): the second link
    // table. Most rows reuse appearance pairs so the composite join has
    // real matches; the rest are noise pairs.
    let award_pairs: Vec<(i64, i64)> = (0..n_awards)
        .map(|_| {
            if rng.gen_range(0..4) > 0 && !app_pairs.is_empty() {
                app_pairs[rng.gen_range(0..app_pairs.len())]
            } else {
                (
                    rng.gen_range(0..n_movies as i64),
                    rng.gen_range(0..n_people as i64),
                )
            }
        })
        .collect();
    catalog.register(
        Table::new(
            "award",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("person_id", ValueType::Int),
                ColumnDef::new("won", ValueType::Date),
            ]),
            vec![
                Column::from_ints(award_pairs.iter().map(|&(m, _)| m).collect()),
                Column::from_ints(award_pairs.iter().map(|&(_, p)| p).collect()),
                Column::from_dates(
                    (0..n_awards)
                        .map(|_| epoch + rng.gen_range(0..span))
                        .collect(),
                ),
            ],
        )
        .expect("award"),
    );

    let queries = queries(&catalog, epoch, span);
    CorrelatedWorkload { catalog, queries }
}

/// The benchmark queries over a generated catalog.
fn queries(catalog: &Catalog, epoch: i64, span: i64) -> Vec<NamedQuery> {
    let mut out = Vec::new();

    // c01: the pure composite-key join — appearance ⋈ award on the
    // (movie_id, person_id) pair.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("appearance").expect("appearance");
    qb.table("award").expect("award");
    let j1 = qb
        .col("appearance.movie_id")
        .expect("col")
        .eq(qb.col("award.movie_id").expect("col"));
    let j2 = qb
        .col("appearance.person_id")
        .expect("col")
        .eq(qb.col("award.person_id").expect("col"));
    qb.filter(j1);
    qb.filter(j2);
    qb.select_agg(AggFunc::Count, None, "n");
    out.push(NamedQuery::new(
        "c01-composite-join",
        qb.build().expect("q"),
    ));

    // c02: composite join + single-key chain to movie, filtered by a
    // date range written as DATE + INTERVAL arithmetic.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("movie").expect("movie");
    qb.table("appearance").expect("appearance");
    qb.table("award").expect("award");
    let j0 = qb
        .col("movie.id")
        .expect("col")
        .eq(qb.col("appearance.movie_id").expect("col"));
    let j1 = qb
        .col("appearance.movie_id")
        .expect("col")
        .eq(qb.col("award.movie_id").expect("col"));
    let j2 = qb
        .col("appearance.person_id")
        .expect("col")
        .eq(qb.col("award.person_id").expect("col"));
    qb.filter(j0);
    qb.filter(j1);
    qb.filter(j2);
    let lo = epoch + span / 4;
    qb.filter(
        qb.col("movie.release")
            .expect("col")
            .ge(Expr::Literal(Value::Date(lo))),
    );
    qb.filter(
        qb.col("movie.release")
            .expect("col")
            .lt(Expr::Literal(Value::Date(lo)).add(Expr::Literal(Value::Interval(span / 2)))),
    );
    qb.select_agg(AggFunc::Count, None, "n");
    out.push(NamedQuery::new(
        "c02-composite-dates",
        qb.build().expect("q"),
    ));

    // c03: date-on-date join predicate (award won on the release date
    // window) plus group rollup — Date columns as first-class join and
    // grouping citizens.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("movie").expect("movie");
    qb.table("award").expect("award");
    let j = qb
        .col("movie.id")
        .expect("col")
        .eq(qb.col("award.movie_id").expect("col"));
    qb.filter(j);
    qb.filter(
        qb.col("award.won")
            .expect("col")
            .ge(qb.col("movie.release").expect("col")),
    );
    let kind = qb.col("movie.kind").expect("col");
    qb.select_expr(kind.clone(), "kind");
    qb.select_agg(AggFunc::Count, None, "n");
    qb.group_by(kind);
    qb.order_by("kind", true);
    out.push(NamedQuery::new("c03-date-rollup", qb.build().expect("q")));

    out
}

/// The c01 composite join rewritten so only a **single-column** jump
/// exists: the `person_id` equality becomes a `<= AND >=` residual pair,
/// which no index accelerates but which is semantically identical.
/// This is the pre-composite execution shape — the baseline both the
/// step-count test below and `benches/join_composite.rs` measure the
/// fused composite jump against.
pub fn single_key_variant(catalog: &Catalog) -> Query {
    let mut qb = QueryBuilder::new(catalog);
    qb.table("appearance").expect("appearance");
    qb.table("award").expect("award");
    let j1 = qb
        .col("appearance.movie_id")
        .expect("col")
        .eq(qb.col("award.movie_id").expect("col"));
    let le = qb
        .col("appearance.person_id")
        .expect("col")
        .le(qb.col("award.person_id").expect("col"));
    let ge = qb
        .col("appearance.person_id")
        .expect("col")
        .ge(qb.col("award.person_id").expect("col"));
    qb.filter(j1);
    qb.filter(le);
    qb.filter(ge);
    qb.select_agg(AggFunc::Count, None, "n");
    qb.build().expect("single-key variant")
}

/// A small randomized (catalog, query) case for property tests: a chain
/// of link tables where every adjacent pair joins on a **two-column**
/// composite key with correlated, individually non-selective components,
/// plus a date column and one random unary filter (date comparison,
/// date-range via interval arithmetic, or an int comparison).
pub fn generate_case(seed: u64) -> (Catalog, Query) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = rng.gen_range(2..4);
    let rows = rng.gen_range(6..28);
    let k1_space = rng.gen_range(2..5) as i64;
    let k2_space = rng.gen_range(2..5) as i64;
    let epoch = days_from_ymd(2000, 1, 1);

    let mut cat = Catalog::new();
    for t in 0..m {
        let n = rows + rng.gen_range(0..8);
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k1", ValueType::Int),
                    ColumnDef::new("k2", ValueType::Int),
                    ColumnDef::new("day", ValueType::Date),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints((0..n).map(|_| skewed(&mut rng, k1_space)).collect()),
                    Column::from_ints((0..n).map(|_| skewed(&mut rng, k2_space)).collect()),
                    Column::from_dates((0..n).map(|_| epoch + rng.gen_range(0..120)).collect()),
                    Column::from_ints((0..n).map(|_| rng.gen_range(0..20)).collect()),
                ],
            )
            .expect("case table"),
        );
    }

    let mut qb = QueryBuilder::new(&cat);
    for t in 0..m {
        qb.table(&format!("t{t}")).expect("table");
    }
    for t in 0..m - 1 {
        let j1 = qb
            .col(&format!("t{t}.k1"))
            .expect("col")
            .eq(qb.col(&format!("t{}.k1", t + 1)).expect("col"));
        let j2 = qb
            .col(&format!("t{t}.k2"))
            .expect("col")
            .eq(qb.col(&format!("t{}.k2", t + 1)).expect("col"));
        qb.filter(j1);
        qb.filter(j2);
    }
    let ft = rng.gen_range(0..m);
    let unary = match rng.gen_range(0..3) {
        0 => qb
            .col(&format!("t{ft}.day"))
            .expect("col")
            .lt(Expr::Literal(Value::Date(epoch + rng.gen_range(1..120)))),
        1 => qb
            .col(&format!("t{ft}.day"))
            .expect("col")
            .ge(Expr::Literal(Value::Date(epoch))
                .add(Expr::Literal(Value::Interval(rng.gen_range(0..90))))),
        _ => qb
            .col(&format!("t{ft}.v"))
            .expect("col")
            .lt(Expr::lit(rng.gen_range(1..20i64))),
    };
    qb.filter(unary);
    qb.select_col("t0.v").expect("select");
    (cat.clone(), qb.build().expect("case query"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_core::SkinnerDB;
    use skinner_engine::multiway::{ContinueResult, ResultSet};
    use skinner_engine::{MultiwayJoin, PreparedQuery, SkinnerC, SkinnerCConfig};
    use skinner_simdb::exec::ExecOptions;
    use skinner_simdb::{ColEngine, Engine};

    #[test]
    fn workload_is_deterministic_and_composite() {
        let a = generate(0.05, 13);
        let b = generate(0.05, 13);
        assert_eq!(a.queries.len(), 3);
        for (qa, qb_) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.id, qb_.id);
        }
        let ta = a.catalog.get("appearance").expect("appearance");
        let tb = b.catalog.get("appearance").expect("appearance");
        assert_eq!(ta.num_rows(), tb.num_rows());
        // The composite queries really have a composite key group.
        let q = &a.queries[0].query;
        assert_eq!(q.composite_key_groups().len(), 1);
        // And Date columns exist where claimed.
        assert_eq!(
            a.catalog
                .get("movie")
                .expect("movie")
                .column(1)
                .value_type(),
            ValueType::Date
        );
    }

    #[test]
    fn all_queries_match_engine_baseline() {
        let wl = generate(0.04, 29);
        let col = ColEngine::new();
        for nq in &wl.queries {
            let truth = col
                .execute(
                    &nq.query,
                    &ExecOptions {
                        count_only: true,
                        ..Default::default()
                    },
                )
                .result_count;
            let out = SkinnerDB::skinner_c(SkinnerCConfig {
                budget: 64,
                ..Default::default()
            })
            .execute(&nq.query);
            assert_eq!(out.stats.result_count, truth, "{} diverged", nq.id);
        }
    }

    /// The acceptance criterion: a composite-key join produces identical
    /// results across all three kernel tiers — generic reference,
    /// plan-bound, and the codegen tier, which compiles the fused
    /// composite jump (zero fallbacks: the composite and compilation
    /// wins compose).
    #[test]
    fn composite_join_identical_across_three_tiers() {
        let wl = generate(0.03, 41);
        let q = &wl.queries[0].query; // c01: pure composite join
        let m = q.num_tables();
        let order: Vec<usize> = (0..m).collect();
        let pq = PreparedQuery::new(q, true, 1);
        assert!(!pq.composites.is_empty(), "composite group must exist");

        // Tier 1: generic reference kernel, one shot.
        let spec = pq.plan_spec(&order);
        let mut join = MultiwayJoin::new(&pq);
        let offsets = vec![0u32; m];
        let mut state = offsets.clone();
        let mut rs_generic = ResultSet::new();
        join.continue_join_generic(
            &order,
            &spec,
            &offsets,
            &mut state,
            u64::MAX,
            &mut rs_generic,
        );

        // Tier 2: plan-bound kernel (the composite fused jump), sliced.
        let plan = pq.plan_order(&order);
        let mut state = offsets.clone();
        let mut rs_bound = ResultSet::new();
        loop {
            let (res, _) =
                join.continue_join(&order, &plan, &offsets, &mut state, 64, &mut rs_bound);
            if res == ContinueResult::Exhausted {
                break;
            }
        }

        // Tier 3: fused keys compile — every order runs on the codegen
        // tier and no fallback is counted.
        assert!(plan.compile_kernel(None).is_some());
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 64,
            ..Default::default()
        })
        .run(q);
        assert_eq!(
            out.metrics.fallback_orders, 0,
            "composite orders must compile, not fall back"
        );
        assert!(out.metrics.codegen_orders > 0);
        assert_eq!(out.metrics.codegen_slices, out.metrics.slices);

        let mut a: Vec<Vec<u32>> = rs_generic.iter().map(|t| t.to_vec()).collect();
        let mut b: Vec<Vec<u32>> = rs_bound.iter().map(|t| t.to_vec()).collect();
        let mut c: Vec<Vec<u32>> = out.tuples.chunks_exact(m).map(|t| t.to_vec()).collect();
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b, "generic vs plan-bound divergence");
        assert_eq!(a, c, "generic vs engine (fallback tier) divergence");
        assert!(!a.is_empty(), "composite join must produce matches");
    }

    /// Acceptance criterion: the whole correlated workload runs with
    /// zero codegen fallbacks — every order of every query compiles.
    #[test]
    fn workload_runs_entirely_on_codegen_tier() {
        let wl = generate(0.03, 7);
        for nq in &wl.queries {
            let out = SkinnerC::new(SkinnerCConfig {
                budget: 64,
                ..Default::default()
            })
            .run(&nq.query);
            assert_eq!(out.metrics.fallback_orders, 0, "{} fell back", nq.id);
            assert!(out.metrics.codegen_orders > 0, "{} never compiled", nq.id);
        }
    }

    #[test]
    fn composite_beats_single_column_enumeration() {
        // The point of the composite index: the fused jump enumerates
        // only rows matching *both* components. Measure kernel steps on
        // the same query with composite machinery (normal prepare) vs a
        // deliberately single-key plan (drop one conjunct from the
        // group so only a single-column jump exists, then re-add the
        // second conjunct as a residual filter — semantically identical).
        let wl = generate(0.06, 57);
        let q = &wl.queries[0].query;
        let pq = PreparedQuery::new(q, true, 1);
        let order = vec![0usize, 1];

        let steps_with = {
            let plan = pq.plan_order(&order);
            let mut join = MultiwayJoin::new(&pq);
            let offsets = vec![0u32; 2];
            let mut state = offsets.clone();
            let mut rs = ResultSet::new();
            let (_, steps) =
                join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
            steps
        };
        // Single-column baseline: the pre-composite execution shape
        // (jump on movie_id only, person_id as a residual check).
        let single_q = single_key_variant(&wl.catalog);
        let pq_single = PreparedQuery::new(&single_q, true, 1);
        assert!(pq_single.composites.is_empty());
        let steps_without = {
            let plan = pq_single.plan_order(&order);
            let mut join = MultiwayJoin::new(&pq_single);
            let offsets = vec![0u32; 2];
            let mut state = offsets.clone();
            let mut rs = ResultSet::new();
            let (_, steps) =
                join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
            steps
        };
        assert!(
            steps_with * 3 < steps_without * 2,
            "composite jump should cut kernel steps by at least a third \
             (with {steps_with}, without {steps_without})"
        );
    }

    #[test]
    fn generated_cases_have_composite_groups_and_dates() {
        let mut saw_multi_table = false;
        for seed in 0..10 {
            let (cat, q) = generate_case(seed);
            assert!(q.num_tables() >= 2);
            saw_multi_table |= q.num_tables() > 2;
            assert_eq!(q.composite_key_groups().len(), q.num_tables() - 1);
            for t in 0..q.num_tables() {
                let table = cat.get(&format!("t{t}")).expect("table");
                assert_eq!(table.column(2).value_type(), ValueType::Date);
            }
        }
        assert!(saw_multi_table, "no 3-table case in 10 seeds");
    }
}
