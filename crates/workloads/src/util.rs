//! Generator utilities: skewed distributions and UDF wrapping.

use rand::rngs::SmallRng;
use rand::Rng;
use skinner_query::{ColRef, Expr, RowContext, Udf};
use skinner_storage::Value;
use std::sync::Arc;

/// Sample from a Zipf-like distribution over `0..n` with exponent `s`
/// (inverse-CDF approximation; deterministic given the RNG).
pub fn zipf(rng: &mut SmallRng, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    // Inverse transform on the continuous approximation of the Zipf CDF.
    let u: f64 = rng.gen_range(0.0..1.0);
    if (s - 1.0).abs() < 1e-9 {
        let h = (n as f64).ln();
        return ((u * h).exp() - 1.0).clamp(0.0, (n - 1) as f64) as usize;
    }
    let e = 1.0 - s;
    let h_n = ((n as f64).powf(e) - 1.0) / e;
    let x = (1.0 + u * h_n * e).powf(1.0 / e) - 1.0;
    (x.clamp(0.0, (n - 1) as f64)) as usize
}

/// Wrap a (single- or multi-table) predicate expression into an opaque
/// UDF call with identical semantics. The optimizer sees a black box with
/// default selectivity; execution burns `cost` work units per call — the
/// paper's recipe for the TPC-UDF variant and the torture benchmarks.
pub fn wrap_predicate_as_udf(name: &str, expr: &Expr, cost: u32) -> Expr {
    let mut refs: Vec<ColRef> = Vec::new();
    expr.col_refs(&mut refs);
    refs.sort_by_key(|c| (c.table, c.column));
    refs.dedup();

    struct ArgsCtx<'a> {
        refs: &'a [ColRef],
        args: &'a [Value],
    }
    impl RowContext for ArgsCtx<'_> {
        fn value(&self, col: ColRef) -> Value {
            let i = self
                .refs
                .iter()
                .position(|r| *r == col)
                .expect("column captured by UDF wrapper");
            self.args[i].clone()
        }
    }

    let inner = expr.clone();
    let captured = refs.clone();
    let udf = Udf::with_cost(name, cost, move |args: &[Value]| {
        let ctx = ArgsCtx {
            refs: &captured,
            args,
        };
        Value::from(inner.eval_predicate(&ctx))
    });
    Expr::Udf {
        udf,
        args: refs.into_iter().map(Expr::Col).collect(),
    }
}

/// Always-true black-box join predicate between two columns ("bad"
/// predicate of the UDF torture benchmark).
pub fn udf_always_true(name: &str, a: ColRef, b: ColRef, cost: u32) -> Expr {
    Expr::Udf {
        udf: Udf::with_cost(name, cost, |_| Value::Int(1)),
        args: vec![Expr::Col(a), Expr::Col(b)],
    }
}

/// Never-true black-box join predicate ("good" predicate: the join
/// result is empty, so starting with this edge finishes instantly).
pub fn udf_always_false(name: &str, a: ColRef, b: ColRef, cost: u32) -> Expr {
    Expr::Udf {
        udf: Udf::with_cost(name, cost, |_| Value::Int(0)),
        args: vec![Expr::Col(a), Expr::Col(b)],
    }
}

/// Equality as an opaque UDF (trivial-optimization benchmark: "UDF
/// equality predicates").
pub fn udf_equality(name: &str, a: ColRef, b: ColRef, cost: u32) -> Expr {
    Expr::Udf {
        udf: Udf::with_cost(name, cost, |args: &[Value]| {
            Value::from(args[0].sql_eq(&args[1]) == Some(true))
        }),
        args: vec![Expr::Col(a), Expr::Col(b)],
    }
}

/// Pick `k` distinct values in `0..n` (deterministic).
pub fn distinct_values(rng: &mut SmallRng, n: i64, k: usize) -> Vec<Value> {
    let mut seen = std::collections::BTreeSet::new();
    while seen.len() < k.min(n as usize) {
        seen.insert(rng.gen_range(0..n));
    }
    seen.into_iter().map(Value::Int).collect()
}

/// Shared Arc-ed UDF handle shorthand.
pub type UdfHandle = Arc<Udf>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use skinner_query::TupleContext;
    use skinner_storage::{Column, ColumnDef, Schema, Table, ValueType};

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100;
        let mut counts = vec![0usize; n];
        for _ in 0..20_000 {
            let v = zipf(&mut rng, n, 1.2);
            assert!(v < n);
            counts[v] += 1;
        }
        // heavy head: rank 0 much more frequent than rank 50
        assert!(counts[0] > 10 * counts[50].max(1), "{:?}", &counts[..5]);
    }

    #[test]
    fn wrapped_udf_matches_original() {
        let t = Arc::new(
            Table::new(
                "t",
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![Column::from_ints(vec![1, 5, 9])],
            )
            .unwrap(),
        );
        let tables = vec![t];
        let orig = Expr::col(0, 0).gt(Expr::lit(4));
        let wrapped = wrap_predicate_as_udf("w", &orig, 10);
        assert!(wrapped.contains_udf());
        for r in 0..3u32 {
            let rows = [r];
            let ctx = TupleContext {
                rows: &rows,
                tables: &tables,
            };
            assert_eq!(
                orig.eval_predicate(&ctx),
                wrapped.eval_predicate(&ctx),
                "row {r}"
            );
        }
    }

    #[test]
    fn udf_constants() {
        let a = ColRef {
            table: 0,
            column: 0,
        };
        let b = ColRef {
            table: 1,
            column: 0,
        };
        let t = udf_always_true("t", a, b, 0);
        let f = udf_always_false("f", a, b, 0);
        // evaluate with a dummy context
        let ctx = |_c: ColRef| Value::Int(7);
        assert!(t.eval_predicate(&ctx));
        assert!(!f.eval_predicate(&ctx));
        let eq = udf_equality("e", a, b, 0);
        assert!(eq.eval_predicate(&ctx));
    }

    #[test]
    fn distinct_values_distinct() {
        let mut rng = SmallRng::seed_from_u64(2);
        let vals = distinct_values(&mut rng, 50, 10);
        assert_eq!(vals.len(), 10);
        let set: std::collections::BTreeSet<i64> =
            vals.iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(set.len(), 10);
    }
}
