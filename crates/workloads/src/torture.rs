//! Optimizer-torture micro-benchmarks (paper appendix).
//!
//! * **UDF torture** — every join predicate is a black-box UDF. One
//!   "good" predicate always fails (its join is empty: starting there
//!   finishes instantly); the rest always succeed (their joins are full
//!   Cartesian blow-ups). No statistics can distinguish them.
//! * **Correlation torture** (extended from Wu et al. \[50\]) — chain
//!   queries over skewed, correlated data: all equi-join edges have
//!   identical statistics (same distinct counts, same sizes) but one
//!   edge, at position `m`, is empty while the others fan out massively.
//! * **Trivial optimization** — every join (a UDF-wrapped equality on
//!   unique keys) has fanout ≤ 1 and all non-Cartesian plans are
//!   equivalent: the benchmark where exploration is pure overhead.

use crate::util::{udf_always_false, udf_always_true, udf_equality};
use crate::NamedQuery;
use skinner_query::{AggFunc, ColRef, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

/// Join-graph shape for the UDF torture benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// t0–t1–t2–… (edge i connects i and i+1).
    Chain,
    /// t0 is the hub (edge i connects 0 and i+1).
    Star,
}

/// One torture scenario: a catalog plus a single query.
pub struct TortureCase {
    /// Tables.
    pub catalog: Catalog,
    /// The query.
    pub query: NamedQuery,
}

fn simple_tables(m: usize, rows: usize) -> Catalog {
    let mut cat = Catalog::new();
    for t in 0..m {
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints((0..rows as i64).collect()),
                    Column::from_ints((0..rows as i64).map(|i| i * 7 % 13).collect()),
                ],
            )
            .expect("torture table"),
        );
    }
    cat
}

fn edges(shape: Shape, m: usize) -> Vec<(usize, usize)> {
    match shape {
        Shape::Chain => (0..m - 1).map(|i| (i, i + 1)).collect(),
        Shape::Star => (1..m).map(|i| (0, i)).collect(),
    }
}

/// Build a UDF-torture case: `m` tables of `rows` tuples, joined along
/// `shape`; the edge at `good_edge` carries the always-false predicate.
/// `udf_cost` is burned per predicate call.
pub fn udf_torture(
    shape: Shape,
    m: usize,
    rows: usize,
    good_edge: usize,
    udf_cost: u32,
) -> TortureCase {
    assert!(m >= 2);
    let catalog = simple_tables(m, rows);
    let es = edges(shape, m);
    assert!(good_edge < es.len());
    let mut qb = QueryBuilder::new(&catalog);
    for t in 0..m {
        qb.table(&format!("t{t}")).unwrap();
    }
    for (i, &(a, b)) in es.iter().enumerate() {
        let ca = ColRef {
            table: a,
            column: 0,
        };
        let cb = ColRef {
            table: b,
            column: 0,
        };
        let pred = if i == good_edge {
            udf_always_false(&format!("good_{a}_{b}"), ca, cb, udf_cost)
        } else {
            udf_always_true(&format!("bad_{a}_{b}"), ca, cb, udf_cost)
        };
        qb.filter(pred);
    }
    qb.select_agg(AggFunc::Count, None, "n");
    let query = qb.build().expect("udf torture query");
    TortureCase {
        catalog,
        query: NamedQuery::new(
            format!(
                "udf-{}-{m}t",
                if shape == Shape::Chain {
                    "chain"
                } else {
                    "star"
                }
            ),
            query,
        ),
    }
}

/// Build a correlation-torture case: a chain of `m` tables with `rows`
/// tuples each. Every adjacent pair joins on a key column; the edge
/// leaving table `good_pos` (0-based) is empty, all other edges fan out
/// by `fanout`. All columns have identical distinct counts, so the
/// estimator cannot tell the edges apart.
pub fn correlation_torture(m: usize, rows: usize, good_pos: usize, fanout: usize) -> TortureCase {
    assert!(m >= 2 && good_pos < m - 1);
    let distinct = (rows / fanout).max(1);
    let mut cat = Catalog::new();
    for t in 0..m {
        // `left` joins with table t-1, `right` with table t+1.
        let left: Vec<i64> = (0..rows as i64).map(|i| i % distinct as i64).collect();
        let right: Vec<i64> = (0..rows as i64)
            .map(|i| {
                let base = i % distinct as i64;
                if t == good_pos {
                    // the good edge: keys shifted out of range → empty join
                    base + 1_000_000
                } else {
                    base
                }
            })
            .collect();
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("left_k", ValueType::Int),
                    ColumnDef::new("right_k", ValueType::Int),
                ]),
                vec![Column::from_ints(left), Column::from_ints(right)],
            )
            .expect("correlation table"),
        );
    }
    let mut qb = QueryBuilder::new(&cat);
    for t in 0..m {
        qb.table(&format!("t{t}")).unwrap();
    }
    for t in 0..m - 1 {
        let j = qb
            .col(&format!("t{t}.right_k"))
            .unwrap()
            .eq(qb.col(&format!("t{}.left_k", t + 1)).unwrap());
        qb.filter(j);
    }
    qb.select_agg(AggFunc::Count, None, "n");
    let query = qb.build().expect("correlation torture query");
    TortureCase {
        catalog: cat,
        query: NamedQuery::new(format!("corr-{m}t-m{good_pos}"), query),
    }
}

/// Build a trivial-optimization case: all non-Cartesian plans are
/// equivalent — each table has `rows` unique keys `0..rows`, chained by
/// UDF-wrapped equality (fanout exactly 1 everywhere).
pub fn trivial_optimization(m: usize, rows: usize, udf_cost: u32) -> TortureCase {
    assert!(m >= 2);
    let catalog = simple_tables(m, rows);
    let mut qb = QueryBuilder::new(&catalog);
    for t in 0..m {
        qb.table(&format!("t{t}")).unwrap();
    }
    for t in 0..m - 1 {
        let a = ColRef {
            table: t,
            column: 0,
        };
        let b = ColRef {
            table: t + 1,
            column: 0,
        };
        qb.filter(udf_equality(&format!("eq_{t}"), a, b, udf_cost));
    }
    qb.select_agg(AggFunc::Count, None, "n");
    let query = qb.build().expect("trivial query");
    TortureCase {
        catalog,
        query: NamedQuery::new(format!("trivial-{m}t"), query),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_engine::{SkinnerC, SkinnerCConfig};
    use skinner_simdb::exec::ExecOptions;
    use skinner_simdb::{ColEngine, Engine};

    #[test]
    fn udf_torture_result_is_empty() {
        for shape in [Shape::Chain, Shape::Star] {
            let case = udf_torture(shape, 4, 12, 1, 0);
            let out = SkinnerC::new(SkinnerCConfig {
                budget: 100,
                ..Default::default()
            })
            .run(&case.query.query);
            assert_eq!(out.result_count, 0, "{:?}", shape);
        }
    }

    #[test]
    fn udf_torture_good_edge_first_is_fast() {
        let case = udf_torture(Shape::Chain, 4, 16, 0, 0);
        // Force the engine through the good edge first vs last.
        let engine = ColEngine::new();
        let good = engine.execute(
            &case.query.query,
            &ExecOptions {
                join_order: Some(vec![0, 1, 2, 3]),
                ..Default::default()
            },
        );
        let bad = engine.execute(
            &case.query.query,
            &ExecOptions {
                join_order: Some(vec![3, 2, 1, 0]),
                ..Default::default()
            },
        );
        assert_eq!(good.result_count, 0);
        assert_eq!(bad.result_count, 0);
        assert!(
            bad.intermediate_cardinality > 10 * good.intermediate_cardinality.max(1),
            "bad {} vs good {}",
            bad.intermediate_cardinality,
            good.intermediate_cardinality
        );
    }

    #[test]
    fn correlation_torture_empty_and_asymmetric() {
        let case = correlation_torture(4, 64, 1, 4);
        let engine = ColEngine::new();
        let out = engine.execute(&case.query.query, &ExecOptions::default());
        assert_eq!(out.result_count, 0);
        // stats are symmetric: distinct counts match across tables
        let t0 = case.catalog.get("t0").unwrap();
        let t2 = case.catalog.get("t2").unwrap();
        let d0 = skinner_simdb::analyze(&t0).cols[1].distinct;
        let d2 = skinner_simdb::analyze(&t2).cols[1].distinct;
        assert_eq!(d0, d2);
    }

    #[test]
    fn trivial_all_orders_equal_cost() {
        let case = trivial_optimization(4, 32, 0);
        let engine = ColEngine::new();
        let fwd = engine.execute(
            &case.query.query,
            &ExecOptions {
                join_order: Some(vec![0, 1, 2, 3]),
                ..Default::default()
            },
        );
        let rev = engine.execute(
            &case.query.query,
            &ExecOptions {
                join_order: Some(vec![3, 2, 1, 0]),
                ..Default::default()
            },
        );
        assert_eq!(fwd.result_count, 32);
        assert_eq!(fwd.result_count, rev.result_count);
        assert_eq!(fwd.intermediate_cardinality, rev.intermediate_cardinality);
    }

    #[test]
    fn skinner_c_solves_correlation_torture() {
        let case = correlation_torture(5, 48, 2, 4);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 200,
            ..Default::default()
        })
        .run(&case.query.query);
        assert_eq!(out.result_count, 0);
    }
}
