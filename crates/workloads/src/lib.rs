//! # skinner-workloads
//!
//! Deterministic workload generators reproducing the paper's benchmark
//! suite (with documented substitutions — see DESIGN.md §3):
//!
//! * [`job`] — a synthetic stand-in for the Join Order Benchmark over
//!   IMDB: ten correlated, Zipf-skewed tables and 33 query templates of
//!   3–8 joins. The real JOB's difficulty comes from correlated real
//!   data breaking the independence assumption; the generator injects the
//!   same pathologies synthetically.
//! * [`tpch`] — dbgen-lite: the eight TPC-H tables at a configurable
//!   scale factor, plus SPJA forms of Q2, Q3, Q5, Q7, Q8, Q9, Q10, Q11,
//!   Q18, Q21 and their UDF variants (every unary predicate wrapped in an
//!   opaque, semantically identical UDF — the paper's TPC-UDF).
//! * [`torture`] — the appendix micro-benchmarks: UDF torture
//!   (chain/star, one empty-result "good" predicate among always-true
//!   ones), correlation torture (skewed, correlated chains with the
//!   selective join at parameterized position `m`), and the trivial
//!   optimization benchmark (all non-Cartesian plans equivalent).
//! * [`nulls`] — NULL-heavy, string-join stress: nullable
//!   dictionary-encoded string keys exercising the engine's
//!   `KeyCol::Other` fallback (hash-verified string keys, NULL
//!   semantics through joins, indexes and aggregates).
//! * [`wide`] — wide-schema stress: dozen-plus-column tables,
//!   high-cardinality string dictionaries, and non-nullable **Float**
//!   join keys exercising the engine's `KeyCol::Float` jumps and the
//!   codegen tier's `FloatEq` posting cursors.
//! * [`correlated`] — JOB-shaped link tables with **composite**
//!   `(movie_id, person_id)` join keys (the engine's fused `KeyCol::
//!   Fused` jumps; the codegen tier takes its fallback) and `DATE`
//!   columns with TPC-H-style date-range predicates.
//!
//! All generators are seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlated;
pub mod job;
pub mod nulls;
pub mod torture;
pub mod tpch;
pub mod util;
pub mod wide;

use skinner_query::Query;

/// A benchmark query with a stable identifier.
pub struct NamedQuery {
    /// Identifier (e.g. `"q07"`, `"chain-6"`).
    pub id: String,
    /// The resolved query.
    pub query: Query,
}

impl NamedQuery {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, query: Query) -> NamedQuery {
        NamedQuery {
            id: id.into(),
            query,
        }
    }
}
