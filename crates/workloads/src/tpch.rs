//! TPC-H dbgen-lite and SPJA forms of ten benchmark queries.
//!
//! The generator produces the eight TPC-H tables at a configurable scale
//! factor with the columns the query set needs (uniform keys, seeded
//! RNG). Queries Q2, Q3, Q5, Q7, Q8, Q9, Q10, Q11, Q18 and Q21 are
//! expressed in their SPJ + aggregation form (subqueries decomposed away,
//! per the paper's §4 note on nested queries). `queries(…, udf = true)`
//! produces the paper's **TPC-UDF** variant: every unary predicate is
//! wrapped in a semantically identical but opaque UDF, which destroys the
//! traditional optimizer's selectivity estimates while leaving results
//! unchanged.

use crate::util::wrap_predicate_as_udf;
use crate::NamedQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_query::{AggFunc, Expr, Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
const TYPES: [&str; 6] = [
    "ECONOMY BRASS",
    "ECONOMY COPPER",
    "STANDARD TIN",
    "STANDARD NICKEL",
    "PROMO STEEL",
    "PROMO BRASS",
];
const FLAGS: [&str; 3] = ["A", "N", "R"];

/// Generate the TPC-H catalog at scale factor `sf` (sf = 1.0 would be
/// the official 6M-row lineitem; the default experiments use ~0.01).
pub fn generate(sf: f64, seed: u64) -> Catalog {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let n_part = ((200_000.0 * sf) as usize).max(20);
    let n_supp = ((10_000.0 * sf) as usize).max(5);
    let n_cust = ((150_000.0 * sf) as usize).max(15);
    let n_ord = ((1_500_000.0 * sf) as usize).max(50);
    let n_line = ((6_000_000.0 * sf) as usize).max(100);
    let n_psupp = n_part * 4;

    // region / nation
    cat.register(
        Table::new(
            "region",
            Schema::new([
                ColumnDef::new("regionkey", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..5).collect()),
                Column::from_strs(REGIONS),
            ],
        )
        .expect("region"),
    );
    cat.register(
        Table::new(
            "nation",
            Schema::new([
                ColumnDef::new("nationkey", ValueType::Int),
                ColumnDef::new("regionkey", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..25).collect()),
                Column::from_ints((0..25).map(|i| i % 5).collect()),
                Column::from_strs((0..25).map(|i| format!("NATION{i:02}"))),
            ],
        )
        .expect("nation"),
    );

    // supplier
    cat.register(
        Table::new(
            "supplier",
            Schema::new([
                ColumnDef::new("suppkey", ValueType::Int),
                ColumnDef::new("nationkey", ValueType::Int),
                ColumnDef::new("acctbal", ValueType::Float),
            ]),
            vec![
                Column::from_ints((0..n_supp as i64).collect()),
                Column::from_ints((0..n_supp).map(|_| rng.gen_range(0..25i64)).collect()),
                Column::from_floats(
                    (0..n_supp)
                        .map(|_| rng.gen_range(-999.0..9999.0f64))
                        .collect(),
                ),
            ],
        )
        .expect("supplier"),
    );

    // customer
    cat.register(
        Table::new(
            "customer",
            Schema::new([
                ColumnDef::new("custkey", ValueType::Int),
                ColumnDef::new("nationkey", ValueType::Int),
                ColumnDef::new("mktsegment", ValueType::Str),
                ColumnDef::new("acctbal", ValueType::Float),
            ]),
            vec![
                Column::from_ints((0..n_cust as i64).collect()),
                Column::from_ints((0..n_cust).map(|_| rng.gen_range(0..25i64)).collect()),
                Column::from_strs((0..n_cust).map(|_| SEGMENTS[rng.gen_range(0..SEGMENTS.len())])),
                Column::from_floats(
                    (0..n_cust)
                        .map(|_| rng.gen_range(-999.0..9999.0f64))
                        .collect(),
                ),
            ],
        )
        .expect("customer"),
    );

    // part
    cat.register(
        Table::new(
            "part",
            Schema::new([
                ColumnDef::new("partkey", ValueType::Int),
                ColumnDef::new("brand", ValueType::Str),
                ColumnDef::new("ptype", ValueType::Str),
                ColumnDef::new("size", ValueType::Int),
                ColumnDef::new("retailprice", ValueType::Float),
            ]),
            vec![
                Column::from_ints((0..n_part as i64).collect()),
                Column::from_strs((0..n_part).map(|_| BRANDS[rng.gen_range(0..BRANDS.len())])),
                Column::from_strs((0..n_part).map(|_| TYPES[rng.gen_range(0..TYPES.len())])),
                Column::from_ints((0..n_part).map(|_| rng.gen_range(1..51i64)).collect()),
                Column::from_floats(
                    (0..n_part)
                        .map(|_| rng.gen_range(900.0..2100.0f64))
                        .collect(),
                ),
            ],
        )
        .expect("part"),
    );

    // partsupp
    cat.register(
        Table::new(
            "partsupp",
            Schema::new([
                ColumnDef::new("partkey", ValueType::Int),
                ColumnDef::new("suppkey", ValueType::Int),
                ColumnDef::new("supplycost", ValueType::Float),
                ColumnDef::new("availqty", ValueType::Int),
            ]),
            vec![
                Column::from_ints((0..n_psupp).map(|i| (i % n_part) as i64).collect()),
                Column::from_ints(
                    (0..n_psupp)
                        .map(|_| rng.gen_range(0..n_supp as i64))
                        .collect(),
                ),
                Column::from_floats(
                    (0..n_psupp)
                        .map(|_| rng.gen_range(1.0..1000.0f64))
                        .collect(),
                ),
                Column::from_ints((0..n_psupp).map(|_| rng.gen_range(1..10_000i64)).collect()),
            ],
        )
        .expect("partsupp"),
    );

    // orders (orderdate as day number 0..2557 ≈ 1992-1998)
    cat.register(
        Table::new(
            "orders",
            Schema::new([
                ColumnDef::new("orderkey", ValueType::Int),
                ColumnDef::new("custkey", ValueType::Int),
                ColumnDef::new("orderdate", ValueType::Int),
                ColumnDef::new("orderpriority", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..n_ord as i64).collect()),
                Column::from_ints(
                    (0..n_ord)
                        .map(|_| rng.gen_range(0..n_cust as i64))
                        .collect(),
                ),
                Column::from_ints((0..n_ord).map(|_| rng.gen_range(0..2557i64)).collect()),
                Column::from_strs((0..n_ord).map(|_| {
                    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
                        [rng.gen_range(0..5)]
                })),
            ],
        )
        .expect("orders"),
    );

    // lineitem
    cat.register(
        Table::new(
            "lineitem",
            Schema::new([
                ColumnDef::new("orderkey", ValueType::Int),
                ColumnDef::new("partkey", ValueType::Int),
                ColumnDef::new("suppkey", ValueType::Int),
                ColumnDef::new("quantity", ValueType::Int),
                ColumnDef::new("extendedprice", ValueType::Float),
                ColumnDef::new("discount", ValueType::Float),
                ColumnDef::new("shipdate", ValueType::Int),
                ColumnDef::new("returnflag", ValueType::Str),
            ]),
            vec![
                Column::from_ints(
                    (0..n_line)
                        .map(|_| rng.gen_range(0..n_ord as i64))
                        .collect(),
                ),
                Column::from_ints(
                    (0..n_line)
                        .map(|_| rng.gen_range(0..n_part as i64))
                        .collect(),
                ),
                Column::from_ints(
                    (0..n_line)
                        .map(|_| rng.gen_range(0..n_supp as i64))
                        .collect(),
                ),
                Column::from_ints((0..n_line).map(|_| rng.gen_range(1..51i64)).collect()),
                Column::from_floats(
                    (0..n_line)
                        .map(|_| rng.gen_range(900.0..105_000.0f64))
                        .collect(),
                ),
                Column::from_floats((0..n_line).map(|_| rng.gen_range(0.0..0.11f64)).collect()),
                Column::from_ints((0..n_line).map(|_| rng.gen_range(0..2557i64)).collect()),
                Column::from_strs((0..n_line).map(|_| FLAGS[rng.gen_range(0..FLAGS.len())])),
            ],
        )
        .expect("lineitem"),
    );

    cat
}

/// Build the ten SPJA queries. With `udf = true`, every unary predicate
/// is wrapped in an opaque UDF of `udf_cost` work units (TPC-UDF).
pub fn queries(catalog: &Catalog, udf: bool, udf_cost: u32) -> Vec<NamedQuery> {
    let mut out = Vec::new();
    let mut push = |id: &str, q: Query| out.push(NamedQuery::new(id, q));

    let maybe_wrap = |name: &str, e: Expr| -> Expr {
        if udf {
            wrap_predicate_as_udf(name, &e, udf_cost)
        } else {
            e
        }
    };

    // Q2: min supply cost for brass parts of a size in Europe.
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("part", "p").unwrap();
        qb.table_as("partsupp", "ps").unwrap();
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("nation", "n").unwrap();
        qb.table_as("region", "r").unwrap();
        for (a, b) in [
            ("p.partkey", "ps.partkey"),
            ("ps.suppkey", "s.suppkey"),
            ("s.nationkey", "n.nationkey"),
            ("n.regionkey", "r.regionkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap("q2_size", qb.col("p.size").unwrap().eq(Expr::lit(15)));
        let f2 = maybe_wrap(
            "q2_type",
            qb.col("p.ptype").unwrap().eq(Expr::lit("ECONOMY BRASS")),
        );
        let f3 = maybe_wrap(
            "q2_region",
            qb.col("r.name").unwrap().eq(Expr::lit("EUROPE")),
        );
        qb.filter(f1);
        qb.filter(f2);
        qb.filter(f3);
        let sc = qb.col("ps.supplycost").unwrap();
        qb.select_agg(AggFunc::Min, Some(sc), "min_cost");
        push("q02", qb.build().expect("q2"));
    }

    // Q3: revenue of building-segment orders shipped after a date.
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("customer", "c").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        for (a, b) in [("c.custkey", "o.custkey"), ("o.orderkey", "l.orderkey")] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap(
            "q3_seg",
            qb.col("c.mktsegment").unwrap().eq(Expr::lit("BUILDING")),
        );
        let f2 = maybe_wrap(
            "q3_odate",
            qb.col("o.orderdate").unwrap().lt(Expr::lit(1100)),
        );
        let f3 = maybe_wrap(
            "q3_sdate",
            qb.col("l.shipdate").unwrap().gt(Expr::lit(1100)),
        );
        qb.filter(f1);
        qb.filter(f2);
        qb.filter(f3);
        let rev = qb
            .col("l.extendedprice")
            .unwrap()
            .mul(Expr::lit(1.0).sub(qb.col("l.discount").unwrap()));
        qb.select_agg(AggFunc::Sum, Some(rev), "revenue");
        push("q03", qb.build().expect("q3"));
    }

    // Q5: local supplier volume (6-way with same-nation predicate).
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("customer", "c").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("nation", "n").unwrap();
        qb.table_as("region", "r").unwrap();
        for (a, b) in [
            ("c.custkey", "o.custkey"),
            ("o.orderkey", "l.orderkey"),
            ("l.suppkey", "s.suppkey"),
            ("c.nationkey", "s.nationkey"),
            ("s.nationkey", "n.nationkey"),
            ("n.regionkey", "r.regionkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap("q5_region", qb.col("r.name").unwrap().eq(Expr::lit("ASIA")));
        let f2 = maybe_wrap("q5_lo", qb.col("o.orderdate").unwrap().ge(Expr::lit(365)));
        let f3 = maybe_wrap("q5_hi", qb.col("o.orderdate").unwrap().lt(Expr::lit(730)));
        qb.filter(f1);
        qb.filter(f2);
        qb.filter(f3);
        let rev = qb
            .col("l.extendedprice")
            .unwrap()
            .mul(Expr::lit(1.0).sub(qb.col("l.discount").unwrap()));
        qb.select_agg(AggFunc::Sum, Some(rev), "revenue");
        push("q05", qb.build().expect("q5"));
    }

    // Q7: volume shipping between two nations (nation joined twice).
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("customer", "c").unwrap();
        qb.table_as("nation", "n1").unwrap();
        qb.table_as("nation", "n2").unwrap();
        for (a, b) in [
            ("s.suppkey", "l.suppkey"),
            ("o.orderkey", "l.orderkey"),
            ("c.custkey", "o.custkey"),
            ("s.nationkey", "n1.nationkey"),
            ("c.nationkey", "n2.nationkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap(
            "q7_n1",
            qb.col("n1.name").unwrap().eq(Expr::lit("NATION03")),
        );
        let f2 = maybe_wrap(
            "q7_n2",
            qb.col("n2.name").unwrap().eq(Expr::lit("NATION07")),
        );
        let f3 = maybe_wrap("q7_date", qb.col("l.shipdate").unwrap().ge(Expr::lit(730)));
        qb.filter(f1);
        qb.filter(f2);
        qb.filter(f3);
        let rev = qb
            .col("l.extendedprice")
            .unwrap()
            .mul(Expr::lit(1.0).sub(qb.col("l.discount").unwrap()));
        qb.select_agg(AggFunc::Sum, Some(rev), "revenue");
        push("q07", qb.build().expect("q7"));
    }

    // Q8: national market share (8-way).
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("part", "p").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("customer", "c").unwrap();
        qb.table_as("nation", "n1").unwrap();
        qb.table_as("nation", "n2").unwrap();
        qb.table_as("region", "r").unwrap();
        for (a, b) in [
            ("p.partkey", "l.partkey"),
            ("s.suppkey", "l.suppkey"),
            ("l.orderkey", "o.orderkey"),
            ("o.custkey", "c.custkey"),
            ("c.nationkey", "n1.nationkey"),
            ("n1.regionkey", "r.regionkey"),
            ("s.nationkey", "n2.nationkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap(
            "q8_region",
            qb.col("r.name").unwrap().eq(Expr::lit("AMERICA")),
        );
        let f2 = maybe_wrap(
            "q8_type",
            qb.col("p.ptype").unwrap().eq(Expr::lit("PROMO BRASS")),
        );
        qb.filter(f1);
        qb.filter(f2);
        let rev = qb
            .col("l.extendedprice")
            .unwrap()
            .mul(Expr::lit(1.0).sub(qb.col("l.discount").unwrap()));
        qb.select_agg(AggFunc::Sum, Some(rev), "volume");
        push("q08", qb.build().expect("q8"));
    }

    // Q9: product type profit (6-way).
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("part", "p").unwrap();
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        qb.table_as("partsupp", "ps").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("nation", "n").unwrap();
        for (a, b) in [
            ("s.suppkey", "l.suppkey"),
            ("ps.suppkey", "l.suppkey"),
            ("ps.partkey", "l.partkey"),
            ("p.partkey", "l.partkey"),
            ("o.orderkey", "l.orderkey"),
            ("s.nationkey", "n.nationkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f = maybe_wrap(
            "q9_brand",
            qb.col("p.brand").unwrap().eq(Expr::lit("Brand#33")),
        );
        qb.filter(f);
        let profit = qb
            .col("l.extendedprice")
            .unwrap()
            .mul(Expr::lit(1.0).sub(qb.col("l.discount").unwrap()))
            .sub(
                qb.col("ps.supplycost")
                    .unwrap()
                    .mul(qb.col("l.quantity").unwrap()),
            );
        qb.select_agg(AggFunc::Sum, Some(profit), "profit");
        push("q09", qb.build().expect("q9"));
    }

    // Q10: returned item reporting.
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("customer", "c").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        qb.table_as("nation", "n").unwrap();
        for (a, b) in [
            ("c.custkey", "o.custkey"),
            ("l.orderkey", "o.orderkey"),
            ("c.nationkey", "n.nationkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap(
            "q10_flag",
            qb.col("l.returnflag").unwrap().eq(Expr::lit("R")),
        );
        let f2 = maybe_wrap("q10_lo", qb.col("o.orderdate").unwrap().ge(Expr::lit(900)));
        let f3 = maybe_wrap("q10_hi", qb.col("o.orderdate").unwrap().lt(Expr::lit(990)));
        qb.filter(f1);
        qb.filter(f2);
        qb.filter(f3);
        let rev = qb
            .col("l.extendedprice")
            .unwrap()
            .mul(Expr::lit(1.0).sub(qb.col("l.discount").unwrap()));
        qb.select_agg(AggFunc::Sum, Some(rev), "revenue");
        push("q10", qb.build().expect("q10"));
    }

    // Q11: important stock (3-way + grouping by part).
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("partsupp", "ps").unwrap();
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("nation", "n").unwrap();
        for (a, b) in [("ps.suppkey", "s.suppkey"), ("s.nationkey", "n.nationkey")] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f = maybe_wrap(
            "q11_nation",
            qb.col("n.name").unwrap().eq(Expr::lit("NATION11")),
        );
        qb.filter(f);
        let value = qb
            .col("ps.supplycost")
            .unwrap()
            .mul(qb.col("ps.availqty").unwrap());
        qb.select_agg(AggFunc::Sum, Some(value), "value");
        push("q11", qb.build().expect("q11"));
    }

    // Q18: large volume customers.
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("customer", "c").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        for (a, b) in [("c.custkey", "o.custkey"), ("o.orderkey", "l.orderkey")] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f = maybe_wrap("q18_qty", qb.col("l.quantity").unwrap().gt(Expr::lit(45)));
        qb.filter(f);
        let qty = qb.col("l.quantity").unwrap();
        qb.select_agg(AggFunc::Sum, Some(qty), "total_qty");
        qb.select_agg(AggFunc::Count, None, "n");
        push("q18", qb.build().expect("q18"));
    }

    // Q21: suppliers who kept orders waiting (4-way).
    {
        let mut qb = QueryBuilder::new(catalog);
        qb.table_as("supplier", "s").unwrap();
        qb.table_as("lineitem", "l").unwrap();
        qb.table_as("orders", "o").unwrap();
        qb.table_as("nation", "n").unwrap();
        for (a, b) in [
            ("s.suppkey", "l.suppkey"),
            ("o.orderkey", "l.orderkey"),
            ("s.nationkey", "n.nationkey"),
        ] {
            let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
            qb.filter(j);
        }
        let f1 = maybe_wrap(
            "q21_nation",
            qb.col("n.name").unwrap().eq(Expr::lit("NATION17")),
        );
        let f2 = maybe_wrap(
            "q21_prio",
            qb.col("o.orderpriority").unwrap().eq(Expr::lit("1-URGENT")),
        );
        qb.filter(f1);
        qb.filter(f2);
        qb.select_agg(AggFunc::Count, None, "numwait");
        push("q21", qb.build().expect("q21"));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_core::run_engine;
    use skinner_simdb::exec::ExecOptions;
    use skinner_simdb::ColEngine;

    #[test]
    fn catalog_has_all_tables() {
        let cat = generate(0.002, 1);
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(cat.contains(t), "missing {t}");
        }
        assert!(cat.get("lineitem").unwrap().num_rows() >= 100);
    }

    #[test]
    fn all_queries_build_and_validate() {
        let cat = generate(0.002, 1);
        let qs = queries(&cat, false, 0);
        assert_eq!(qs.len(), 10);
        for nq in &qs {
            assert!(nq.query.validate().is_ok(), "{}", nq.id);
        }
    }

    #[test]
    fn udf_variant_matches_plain_results() {
        let cat = generate(0.002, 2);
        let plain = queries(&cat, false, 0);
        let udf = queries(&cat, true, 10);
        let engine = ColEngine::new();
        for (p, u) in plain.iter().zip(&udf) {
            assert!(
                u.query.predicates.iter().any(|e| e.contains_udf()),
                "{}",
                u.id
            );
            let rp = run_engine(&engine, &p.query, &ExecOptions::default());
            let ru = run_engine(&engine, &u.query, &ExecOptions::default());
            // SUM over floats accumulates in plan order, so compare with a
            // relative tolerance rather than exactly.
            assert_eq!(rp.table.num_rows(), ru.table.num_rows(), "{}", p.id);
            for (ra, rb) in rp
                .table
                .canonical_rows()
                .iter()
                .zip(ru.table.canonical_rows().iter())
            {
                for (a, b) in ra.iter().zip(rb.iter()) {
                    match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => assert!(
                            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
                            "{}: {x} vs {y}",
                            p.id
                        ),
                        _ => assert_eq!(a, b, "{}", p.id),
                    }
                }
            }
        }
    }
}
