//! NULL-heavy + string-join stress workload.
//!
//! Every other workload in this crate joins on dense non-nullable
//! integer keys — the fast path the engine's plan-time specialization
//! targets (`KeyCol::Int`). This workload deliberately exercises the
//! `KeyCol::Other` shape, which the codegen tier compiles to `KeyEq`
//! posting cursors: dictionary-encoded **string** join keys (whose
//! 64-bit join keys are content hashes that may collide and must be
//! re-verified by the predicate) and **nullable** columns (NULL never
//! matches an equality, never enters a hash index, rejects at the
//! compiled jump's NULL check, and must survive three-valued predicate
//! logic end to end). These queries run with zero codegen fallbacks,
//! asserted below.
//!
//! The scenario is a small "log analytics" schema: `users` and `events`
//! join on a nullable string `uid`, `domains` joins `users` on a
//! lower-cardinality string `domain` (hash-collision pressure), and
//! `scores` carries a nullable int key. Queries mix string equi-joins,
//! `IS [NOT] NULL` filters, `LIKE` filters and aggregates.
//!
//! All generators are seeded and deterministic. [`generate_case`]
//! produces small randomized single-query cases for the differential
//! property tests in `tests/property.rs`.

use crate::NamedQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_query::{AggFunc, Expr, Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnBuilder, ColumnDef, Schema, Table, Value, ValueType};

/// A generated NULL/string stress workload.
pub struct NullsWorkload {
    /// The catalog (string-keyed, NULL-riddled tables).
    pub catalog: Catalog,
    /// The benchmark queries.
    pub queries: Vec<NamedQuery>,
}

/// Base table sizes at `scale = 1.0`.
const USERS: usize = 2_000;
const EVENTS: usize = 6_000;
const DOMAINS: usize = 24;
const SCORES: usize = 1_500;

fn sz(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(6)
}

/// Build a nullable string column: `gen` yields `Some(string)` or `None`.
fn str_col(n: usize, mut gen: impl FnMut(usize) -> Option<String>) -> Column {
    let mut b = ColumnBuilder::new(ValueType::Str);
    for i in 0..n {
        match gen(i) {
            Some(s) => b.push(&Value::Str(s.into())),
            None => b.push(&Value::Null),
        }
    }
    b.finish()
}

/// Build a nullable int column.
fn int_col(n: usize, mut gen: impl FnMut(usize) -> Option<i64>) -> Column {
    let mut b = ColumnBuilder::new(ValueType::Int);
    for i in 0..n {
        match gen(i) {
            Some(v) => b.push(&Value::Int(v)),
            None => b.push(&Value::Null),
        }
    }
    b.finish()
}

/// Generate the workload. `scale` multiplies table sizes; `seed` fixes
/// data and query constants.
pub fn generate(scale: f64, seed: u64) -> NullsWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_users = sz(USERS, scale);
    let n_events = sz(EVENTS, scale);
    let n_domains = sz(DOMAINS, scale.max(0.25));
    let n_scores = sz(SCORES, scale);

    let mut catalog = Catalog::new();

    // users(uid TEXT ~5% NULL, domain TEXT, age INT ~10% NULL)
    let uid = |i: usize| format!("user-{i:05}");
    let domain_name = |d: usize| format!("host{d}.example"); // shared prefix: LIKE pressure
    let user_domains: Vec<usize> = (0..n_users).map(|_| rng.gen_range(0..n_domains)).collect();
    let user_uid_null: Vec<bool> = (0..n_users).map(|_| rng.gen_range(0..20) == 0).collect();
    catalog.register(
        Table::new(
            "users",
            Schema::new([
                ColumnDef::new("uid", ValueType::Str),
                ColumnDef::new("domain", ValueType::Str),
                ColumnDef::new("age", ValueType::Int),
            ]),
            vec![
                str_col(n_users, |i| (!user_uid_null[i]).then(|| uid(i))),
                str_col(n_users, |i| Some(domain_name(user_domains[i]))),
                int_col(n_users, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 1);
                    move |_| (r.gen_range(0..10) != 0).then(|| r.gen_range(18..80))
                }),
            ],
        )
        .expect("users"),
    );

    // events(uid TEXT ~15% NULL, kind TEXT, weight INT)
    catalog.register(
        Table::new(
            "events",
            Schema::new([
                ColumnDef::new("uid", ValueType::Str),
                ColumnDef::new("kind", ValueType::Str),
                ColumnDef::new("weight", ValueType::Int),
            ]),
            vec![
                str_col(n_events, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 2);
                    move |_| (r.gen_range(0..7) != 0).then(|| uid(r.gen_range(0..n_users)))
                }),
                str_col(n_events, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 3);
                    let kinds = ["click", "view", "purchase", "error"];
                    move |_| Some(kinds[r.gen_range(0..kinds.len())].to_string())
                }),
                int_col(n_events, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 4);
                    move |_| Some(r.gen_range(0..100))
                }),
            ],
        )
        .expect("events"),
    );

    // domains(name TEXT, tier INT ~20% NULL)
    catalog.register(
        Table::new(
            "domains",
            Schema::new([
                ColumnDef::new("name", ValueType::Str),
                ColumnDef::new("tier", ValueType::Int),
            ]),
            vec![
                str_col(n_domains, |i| Some(domain_name(i))),
                int_col(n_domains, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 5);
                    move |_| (r.gen_range(0..5) != 0).then(|| r.gen_range(1..4))
                }),
            ],
        )
        .expect("domains"),
    );

    // scores(uid TEXT, points INT ~25% NULL) — nullable *int* join side.
    catalog.register(
        Table::new(
            "scores",
            Schema::new([
                ColumnDef::new("uid", ValueType::Str),
                ColumnDef::new("points", ValueType::Int),
            ]),
            vec![
                str_col(n_scores, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 6);
                    move |_| Some(uid(r.gen_range(0..n_users)))
                }),
                int_col(n_scores, {
                    let mut r = SmallRng::seed_from_u64(seed ^ 7);
                    move |_| (r.gen_range(0..4) != 0).then(|| r.gen_range(0..1000))
                }),
            ],
        )
        .expect("scores"),
    );

    let queries = queries(&catalog);
    NullsWorkload { catalog, queries }
}

/// The benchmark queries over a generated catalog.
fn queries(catalog: &Catalog) -> Vec<NamedQuery> {
    let mut out = Vec::new();

    // n01: plain string equi-join; NULL uids on either side must drop out.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("users").expect("users");
    qb.table("events").expect("events");
    let j = qb
        .col("users.uid")
        .expect("col")
        .eq(qb.col("events.uid").expect("col"));
    qb.filter(j);
    qb.select_agg(AggFunc::Count, None, "n");
    out.push(NamedQuery::new("n01-string-join", qb.build().expect("q")));

    // n02: three-way string join through the low-cardinality domain key,
    // grouped by a nullable grouping column.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("users").expect("users");
    qb.table("events").expect("events");
    qb.table("domains").expect("domains");
    let j1 = qb
        .col("users.uid")
        .expect("col")
        .eq(qb.col("events.uid").expect("col"));
    let j2 = qb
        .col("users.domain")
        .expect("col")
        .eq(qb.col("domains.name").expect("col"));
    qb.filter(j1);
    qb.filter(j2);
    let tier = qb.col("domains.tier").expect("col");
    qb.select_expr(tier.clone(), "tier");
    qb.select_agg(AggFunc::Count, None, "n");
    qb.group_by(tier);
    qb.order_by("tier", true);
    out.push(NamedQuery::new("n02-domain-rollup", qb.build().expect("q")));

    // n03: IS NULL / IS NOT NULL filters astride a string join.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("users").expect("users");
    qb.table("scores").expect("scores");
    let j = qb
        .col("users.uid")
        .expect("col")
        .eq(qb.col("scores.uid").expect("col"));
    qb.filter(j);
    qb.filter(Expr::IsNull {
        expr: Box::new(qb.col("scores.points").expect("col")),
        negated: true,
    });
    qb.filter(Expr::IsNull {
        expr: Box::new(qb.col("users.age").expect("col")),
        negated: false,
    });
    qb.select_agg(
        AggFunc::Sum,
        Some(qb.col("scores.points").expect("col")),
        "pts",
    );
    out.push(NamedQuery::new("n03-null-filters", qb.build().expect("q")));

    // n04: LIKE over the shared-prefix domain strings + string join.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("users").expect("users");
    qb.table("domains").expect("domains");
    let j = qb
        .col("users.domain")
        .expect("col")
        .eq(qb.col("domains.name").expect("col"));
    qb.filter(j);
    qb.filter(qb.col("domains.name").expect("col").like("host1%"));
    qb.select_agg(AggFunc::Count, None, "n");
    out.push(NamedQuery::new("n04-like-join", qb.build().expect("q")));

    // n05: four-way join mixing every fallback: two string joins, one of
    // them NULL-heavy, plus a predicate on a nullable int.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("users").expect("users");
    qb.table("events").expect("events");
    qb.table("domains").expect("domains");
    qb.table("scores").expect("scores");
    let j1 = qb
        .col("users.uid")
        .expect("col")
        .eq(qb.col("events.uid").expect("col"));
    let j2 = qb
        .col("users.domain")
        .expect("col")
        .eq(qb.col("domains.name").expect("col"));
    let j3 = qb
        .col("users.uid")
        .expect("col")
        .eq(qb.col("scores.uid").expect("col"));
    qb.filter(j1);
    qb.filter(j2);
    qb.filter(j3);
    let f = qb.col("scores.points").expect("col").gt(Expr::lit(500));
    qb.filter(f);
    qb.select_agg(AggFunc::Count, None, "n");
    qb.select_agg(
        AggFunc::Min,
        Some(qb.col("events.weight").expect("col")),
        "wmin",
    );
    out.push(NamedQuery::new("n05-four-way", qb.build().expect("q")));

    out
}

/// A small randomized (catalog, query) case for property tests: a chain
/// of 2–4 tables joined on nullable *string* keys drawn from a small
/// alphabet (high collision rate in the dictionary and the hash keys),
/// with one random unary filter (`IS NOT NULL`, `LIKE`, or a comparison
/// on a nullable int).
pub fn generate_case(seed: u64) -> (Catalog, Query) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = rng.gen_range(2..5);
    let rows = rng.gen_range(4..24);
    let key_space = rng.gen_range(2..6);
    let null_pct = rng.gen_range(0..40);

    let mut cat = Catalog::new();
    for t in 0..m {
        let n = rows + rng.gen_range(0..8);
        cat.register(
            Table::new(
                format!("t{t}"),
                Schema::new([
                    ColumnDef::new("k", ValueType::Str),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    str_col(n, |_| {
                        (rng.gen_range(0..100) >= null_pct)
                            .then(|| format!("key-{}", rng.gen_range(0..key_space)))
                    }),
                    int_col(n, |_| {
                        (rng.gen_range(0..10) != 0).then(|| rng.gen_range(0..20))
                    }),
                ],
            )
            .expect("case table"),
        );
    }

    let mut qb = QueryBuilder::new(&cat);
    for t in 0..m {
        qb.table(&format!("t{t}")).expect("table");
    }
    for t in 0..m - 1 {
        let j = qb
            .col(&format!("t{t}.k"))
            .expect("col")
            .eq(qb.col(&format!("t{}.k", t + 1)).expect("col"));
        qb.filter(j);
    }
    let ft = rng.gen_range(0..m);
    let unary = match rng.gen_range(0..3) {
        0 => Expr::IsNull {
            expr: Box::new(qb.col(&format!("t{ft}.k")).expect("col")),
            negated: true,
        },
        1 => qb
            .col(&format!("t{ft}.k"))
            .expect("col")
            .like(format!("key-{}%", rng.gen_range(0..key_space))),
        _ => qb
            .col(&format!("t{ft}.v"))
            .expect("col")
            .lt(Expr::lit(rng.gen_range(1..20i64))),
    };
    qb.filter(unary);
    qb.select_col("t0.v").expect("select");
    (cat.clone(), qb.build().expect("case query"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_core::{run_engine, SkinnerDB};
    use skinner_engine::SkinnerCConfig;
    use skinner_simdb::exec::ExecOptions;
    use skinner_simdb::{ColEngine, Engine};

    #[test]
    fn workload_is_deterministic() {
        let a = generate(0.02, 9);
        let b = generate(0.02, 9);
        assert_eq!(a.queries.len(), 5);
        for (qa, qb_) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.id, qb_.id);
        }
        let ta = a.catalog.get("users").expect("users");
        let tb = b.catalog.get("users").expect("users");
        assert_eq!(ta.num_rows(), tb.num_rows());
    }

    #[test]
    fn null_join_keys_never_match() {
        // The NULL-uid rows must not contribute to the string join.
        let wl = generate(0.02, 9);
        let users = wl.catalog.get("users").expect("users");
        let nulls = (0..users.num_rows())
            .filter(|&i| users.column(0).is_null(i))
            .count();
        assert!(nulls > 0, "workload must actually contain NULL keys");
        let q = &wl.queries[0].query;
        let skinner = SkinnerDB::skinner_c(SkinnerCConfig {
            budget: 100,
            ..Default::default()
        })
        .execute(q);
        let engine = run_engine(&ColEngine::new(), q, &ExecOptions::default());
        assert!(skinner.table.same_rows(&engine.table));
    }

    #[test]
    fn all_queries_match_engine_baseline() {
        let wl = generate(0.015, 5);
        let col = ColEngine::new();
        for nq in &wl.queries {
            let truth = col
                .execute(
                    &nq.query,
                    &ExecOptions {
                        count_only: true,
                        ..Default::default()
                    },
                )
                .result_count;
            let out = SkinnerDB::skinner_c(SkinnerCConfig {
                budget: 64,
                ..Default::default()
            })
            .execute(&nq.query);
            assert_eq!(out.stats.result_count, truth, "{} diverged", nq.id);
        }
    }

    /// Acceptance criterion: the whole NULL/string workload runs with
    /// zero codegen fallbacks — string and nullable key shapes compile.
    #[test]
    fn workload_runs_entirely_on_codegen_tier() {
        use skinner_engine::SkinnerC;
        let wl = generate(0.015, 5);
        for nq in &wl.queries {
            let out = SkinnerC::new(SkinnerCConfig {
                budget: 64,
                ..Default::default()
            })
            .run(&nq.query);
            assert_eq!(out.metrics.fallback_orders, 0, "{} fell back", nq.id);
            assert!(out.metrics.codegen_orders > 0, "{} never compiled", nq.id);
        }
    }

    #[test]
    fn generated_cases_have_nullable_string_keys() {
        // The property-test generator must actually hit the KeyCol::Other
        // path: string key columns, frequently nullable.
        let mut saw_nullable = false;
        for seed in 0..20 {
            let (cat, q) = generate_case(seed);
            assert!(q.num_tables() >= 2);
            for t in 0..q.num_tables() {
                let table = cat.get(&format!("t{t}")).expect("table");
                assert_eq!(table.column(0).value_type(), ValueType::Str);
                saw_nullable |= table.column(0).nullable();
            }
        }
        assert!(saw_nullable, "no nullable key column in 20 seeds");
    }
}
