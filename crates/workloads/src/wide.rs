//! Wide-schema + Float-keyed workload stress.
//!
//! The other workloads join narrow tables on integer (or string) keys.
//! This one stresses three axes the engine's specialization layers must
//! survive together (ROADMAP workload-breadth item):
//!
//! * **Wide schemas** — tables carry a dozen-plus columns, so plan-time
//!   binding must keep the inner loop independent of schema width (only
//!   the touched columns matter).
//! * **High-cardinality string dictionaries** — hundreds of distinct
//!   dictionary codes behind equality and `IN`-style filters.
//! * **Float join keys** — non-nullable `f64` key columns, exercising
//!   the engine's `KeyCol::Float` jumps and the codegen tier's
//!   `FloatEq` posting cursors (bit-pattern keys, full predicate
//!   re-verification; the generators only emit non-negative exact
//!   binary fractions, so bit-pattern equality coincides with IEEE
//!   equality).
//!
//! All generators are seeded and deterministic. [`generate_case`]
//! produces small randomized single-query cases for the differential
//! property tests in `tests/property.rs`.

use crate::NamedQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_query::{AggFunc, Expr, Query, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

/// A generated wide-schema workload.
pub struct WideWorkload {
    /// The catalog (wide, Float-keyed tables).
    pub catalog: Catalog,
    /// The benchmark queries.
    pub queries: Vec<NamedQuery>,
}

/// Base table sizes at `scale = 1.0`.
const READINGS: usize = 6_000;
const SENSORS: usize = 1_200;
const SITES: usize = 300;

/// Distinct strings in the high-cardinality dictionaries.
const DICT: usize = 400;

fn sz(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(8)
}

/// An exact-binary-fraction float key for id `v` (quarters are exactly
/// representable, so equality survives the bit-pattern round trip).
fn fkey(v: i64) -> f64 {
    v as f64 * 0.25
}

/// A wide table: a non-nullable Float key column `key`, then `extra`
/// filler columns cycling int / float / high-cardinality string, with a
/// labeled int column `val` and string column `tag` in the middle.
fn wide_table(
    name: &str,
    n: usize,
    extra: usize,
    rng: &mut SmallRng,
    key_of: impl Fn(usize, &mut SmallRng) -> i64,
) -> Table {
    let mut defs = vec![ColumnDef::new("key", ValueType::Float)];
    let mut cols = Vec::new();
    let keys: Vec<f64> = (0..n).map(|i| fkey(key_of(i, rng))).collect();
    cols.push(Column::from_floats(keys));
    defs.push(ColumnDef::new("val", ValueType::Int));
    let vals: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1_000)).collect();
    cols.push(Column::from_ints(vals));
    defs.push(ColumnDef::new("tag", ValueType::Str));
    let tags: Vec<String> = (0..n)
        .map(|_| format!("item-{:04}", rng.gen_range(0..DICT)))
        .collect();
    cols.push(Column::from_strs(tags.iter().map(String::as_str)));
    for c in 0..extra {
        match c % 3 {
            0 => {
                defs.push(ColumnDef::new(format!("i{c}"), ValueType::Int));
                cols.push(Column::from_ints(
                    (0..n).map(|_| rng.gen_range(0..50)).collect(),
                ));
            }
            1 => {
                defs.push(ColumnDef::new(format!("f{c}"), ValueType::Float));
                cols.push(Column::from_floats(
                    (0..n).map(|_| rng.gen_range(0..200) as f64 * 0.5).collect(),
                ));
            }
            _ => {
                defs.push(ColumnDef::new(format!("s{c}"), ValueType::Str));
                let ss: Vec<String> = (0..n)
                    .map(|_| format!("w-{:03}", rng.gen_range(0..DICT / 2)))
                    .collect();
                cols.push(Column::from_strs(ss.iter().map(String::as_str)));
            }
        }
    }
    Table::new(name, Schema::new(defs), cols).expect("wide table")
}

/// Generate the workload. `scale` multiplies table sizes; `seed` fixes
/// data and query constants.
pub fn generate(scale: f64, seed: u64) -> WideWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_readings = sz(READINGS, scale);
    let n_sensors = sz(SENSORS, scale);
    let n_sites = sz(SITES, scale);

    let mut catalog = Catalog::new();
    // sites: key = site id (dense).
    catalog.register(wide_table("sites", n_sites, 12, &mut rng, |i, _| i as i64));
    // sensors: key = owning site (skewed), plus 14 filler columns.
    catalog.register(wide_table("sensors", n_sensors, 14, &mut rng, {
        let n_sites = n_sites as i64;
        move |_, r| r.gen_range(0..n_sites).min(r.gen_range(0..n_sites))
    }));
    // readings: key = site of the reading (uniform), 16 filler columns.
    catalog.register(wide_table("readings", n_readings, 16, &mut rng, {
        let n_sites = n_sites as i64;
        move |_, r| r.gen_range(0..n_sites)
    }));

    let queries = queries(&catalog);
    WideWorkload { catalog, queries }
}

/// The benchmark queries over a generated catalog.
fn queries(catalog: &Catalog) -> Vec<NamedQuery> {
    let mut out = Vec::new();

    // w01: two-way float-keyed join + high-cardinality tag filter.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("sensors").expect("sensors");
    qb.table("sites").expect("sites");
    let j = qb
        .col("sensors.key")
        .expect("col")
        .eq(qb.col("sites.key").expect("col"));
    qb.filter(j);
    qb.filter(qb.col("sites.tag").expect("col").like("item-0%"));
    qb.select_agg(AggFunc::Count, None, "n");
    out.push(NamedQuery::new("w01-float-join", qb.build().expect("q")));

    // w02: three-way float chain with a float range filter.
    let mut qb = QueryBuilder::new(catalog);
    qb.table("readings").expect("readings");
    qb.table("sensors").expect("sensors");
    qb.table("sites").expect("sites");
    let j1 = qb
        .col("readings.key")
        .expect("col")
        .eq(qb.col("sensors.key").expect("col"));
    let j2 = qb
        .col("sensors.key")
        .expect("col")
        .eq(qb.col("sites.key").expect("col"));
    qb.filter(j1);
    qb.filter(j2);
    let f = qb.col("readings.key").expect("col").lt(Expr::lit(8.0));
    qb.filter(f);
    qb.select_agg(AggFunc::Count, None, "n");
    qb.select_agg(
        AggFunc::Max,
        Some(qb.col("readings.val").expect("col")),
        "vmax",
    );
    out.push(NamedQuery::new("w02-float-chain", qb.build().expect("q")));

    // w03: wide projection through a join (schema width on the output
    // path, not just the join path).
    let mut qb = QueryBuilder::new(catalog);
    qb.table("sensors").expect("sensors");
    qb.table("sites").expect("sites");
    let j = qb
        .col("sensors.key")
        .expect("col")
        .eq(qb.col("sites.key").expect("col"));
    qb.filter(j);
    let f = qb.col("sensors.val").expect("col").lt(Expr::lit(40));
    qb.filter(f);
    qb.select_col("sensors.val").expect("col");
    qb.select_col("sensors.tag").expect("col");
    qb.select_col("sites.tag").expect("col");
    qb.select_col("sites.val").expect("col");
    out.push(NamedQuery::new("w03-wide-project", qb.build().expect("q")));

    out
}

/// A small randomized (catalog, query) case for property tests: a chain
/// of 2–4 wide tables joined on non-nullable **Float** keys drawn from a
/// small space (dense matches), with one random unary filter over a
/// float, int, or high-cardinality string column.
pub fn generate_case(seed: u64) -> (Catalog, Query) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = rng.gen_range(2..5);
    let rows = rng.gen_range(4..24);
    let key_space = rng.gen_range(2..6) as i64;

    let mut cat = Catalog::new();
    for t in 0..m {
        let n = rows + rng.gen_range(0..8);
        let extra = rng.gen_range(6..12);
        let table = wide_table(&format!("t{t}"), n, extra, &mut rng, {
            move |_, r| r.gen_range(0..key_space)
        });
        cat.register(table);
    }

    let mut qb = QueryBuilder::new(&cat);
    for t in 0..m {
        qb.table(&format!("t{t}")).expect("table");
    }
    for t in 0..m - 1 {
        let j = qb
            .col(&format!("t{t}.key"))
            .expect("col")
            .eq(qb.col(&format!("t{}.key", t + 1)).expect("col"));
        qb.filter(j);
    }
    let ft = rng.gen_range(0..m);
    let unary = match rng.gen_range(0..3) {
        0 => qb
            .col(&format!("t{ft}.key"))
            .expect("col")
            .le(Expr::lit(fkey(rng.gen_range(0..key_space)))),
        1 => qb
            .col(&format!("t{ft}.val"))
            .expect("col")
            .lt(Expr::lit(rng.gen_range(100..1_000i64))),
        _ => qb
            .col(&format!("t{ft}.tag"))
            .expect("col")
            .like(format!("item-{}%", rng.gen_range(0..4))),
    };
    qb.filter(unary);
    qb.select_col("t0.val").expect("select");
    (cat.clone(), qb.build().expect("case query"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_core::SkinnerDB;
    use skinner_engine::{PreparedQuery, SkinnerCConfig};
    use skinner_simdb::exec::ExecOptions;
    use skinner_simdb::{ColEngine, Engine};

    #[test]
    fn workload_is_deterministic_and_wide() {
        let a = generate(0.02, 7);
        let b = generate(0.02, 7);
        assert_eq!(a.queries.len(), 3);
        for (qa, qb_) in a.queries.iter().zip(&b.queries) {
            assert_eq!(qa.id, qb_.id);
        }
        for name in ["sites", "sensors", "readings"] {
            let t = a.catalog.get(name).expect("table");
            assert!(t.schema().len() >= 12, "{name} not wide");
            assert_eq!(t.column(0).value_type(), ValueType::Float);
            assert!(!t.column(0).nullable());
        }
        let ta = a.catalog.get("sites").expect("sites");
        let tb = b.catalog.get("sites").expect("sites");
        assert_eq!(ta.num_rows(), tb.num_rows());
    }

    #[test]
    fn all_queries_match_engine_baseline() {
        let wl = generate(0.02, 11);
        let col = ColEngine::new();
        for nq in &wl.queries {
            let truth = col
                .execute(
                    &nq.query,
                    &ExecOptions {
                        count_only: true,
                        ..Default::default()
                    },
                )
                .result_count;
            let out = SkinnerDB::skinner_c(SkinnerCConfig {
                budget: 64,
                ..Default::default()
            })
            .execute(&nq.query);
            assert_eq!(out.stats.result_count, truth, "{} diverged", nq.id);
        }
    }

    #[test]
    fn generated_cases_take_float_jumps_in_the_codegen_tier() {
        // The property-test generator must actually exercise FloatEq
        // posting cursors: float key columns, compiled kernels.
        let mut saw_compiled = false;
        for seed in 0..10 {
            let (cat, q) = generate_case(seed);
            for t in 0..q.num_tables() {
                let table = cat.get(&format!("t{t}")).expect("table");
                assert_eq!(table.column(0).value_type(), ValueType::Float);
            }
            let pq = PreparedQuery::new(&q, true, 1);
            let order: Vec<usize> = (0..q.num_tables()).collect();
            let plan = pq.plan_order(&order);
            if let Some(kernel) = plan.compile_kernel(None) {
                saw_compiled = true;
                assert_eq!(kernel.key().tables(), q.num_tables());
            }
        }
        assert!(saw_compiled, "no compiled kernel in 10 seeds");
    }
}
