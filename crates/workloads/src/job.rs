//! Synthetic Join Order Benchmark (JOB-like) over an IMDB-style schema.
//!
//! The real JOB runs 113 queries over the 3.6 GB IMDB snapshot; its
//! difficulty comes from *correlated, skewed* real data that breaks the
//! independence assumption ("How good are query optimizers, really?",
//! Leis et al., VLDB 2015). This generator reproduces those pathologies
//! synthetically:
//!
//! * **Skew** — foreign keys are Zipf-distributed (a few blockbuster
//!   movies account for most companies, cast entries, keywords).
//! * **Correlation** — `production_year` correlates with `kind_id`;
//!   `movie_info.info_val` correlates with both its `info_type_id` and
//!   the movie's year; company country correlates with company id;
//!   `cast_info.role_id` correlates with the person's gender. Conjuncts
//!   over these columns are exactly where independence-based estimates go
//!   wrong by orders of magnitude.
//!
//! 33 query templates (one per JOB template family shape) join 3–8
//! tables with MIN aggregates, matching the benchmark's profile: most
//! queries are easy, a handful punish bad join orders catastrophically
//! (the Figure 6 profile).

use crate::util::zipf;
use crate::NamedQuery;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_query::{AggFunc, Expr, QueryBuilder};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

/// A generated JOB-like workload.
pub struct JobWorkload {
    /// The IMDB-like catalog.
    pub catalog: Catalog,
    /// 33 benchmark queries.
    pub queries: Vec<NamedQuery>,
}

/// Base table sizes at `scale = 1.0`.
const TITLES: usize = 12_000;
const COMPANIES: usize = 2_500;
const MOVIE_COMPANIES: usize = 30_000;
const INFO_TYPES: usize = 40;
const MOVIE_INFO: usize = 36_000;
const MOVIE_INFO_IDX: usize = 15_000;
const NAMES: usize = 10_000;
const CAST_INFO: usize = 45_000;
const KEYWORDS: usize = 3_000;
const MOVIE_KEYWORD: usize = 30_000;

const KINDS: i64 = 7;
const COUNTRIES: [&str; 8] = ["us", "de", "fr", "jp", "uk", "in", "it", "ca"];

fn sz(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(8)
}

/// Generate the workload. `scale` multiplies all table sizes; `seed`
/// fixes both data and query constants.
pub fn generate(scale: f64, seed: u64) -> JobWorkload {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut catalog = Catalog::new();

    // -- title -------------------------------------------------------
    let n_title = sz(TITLES, scale);
    let mut kind_id = Vec::with_capacity(n_title);
    let mut year = Vec::with_capacity(n_title);
    let mut votes = Vec::with_capacity(n_title);
    for m in 0..n_title {
        let k = rng.gen_range(0..KINDS);
        // correlation: kind determines the plausible year range
        let base_year = 1930 + k * 12;
        let y = base_year + rng.gen_range(0..30);
        kind_id.push(k);
        year.push(y);
        // votes decay with id: low-id movies are the popular ones — the
        // same movies the Zipf-distributed foreign keys concentrate on.
        // A votes filter therefore selects exactly the high-fanout hub
        // rows, which is what makes bad join orders catastrophic.
        let v = (100_000.0 / (1.0 + m as f64)) as i64 + rng.gen_range(0..50i64);
        votes.push(v);
    }
    catalog.register(
        Table::new(
            "title",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("kind_id", ValueType::Int),
                ColumnDef::new("production_year", ValueType::Int),
                ColumnDef::new("votes", ValueType::Int),
            ]),
            vec![
                Column::from_ints((0..n_title as i64).collect()),
                Column::from_ints(kind_id),
                Column::from_ints(year.clone()),
                Column::from_ints(votes),
            ],
        )
        .expect("title schema"),
    );

    // -- company_name --------------------------------------------------
    let n_comp = sz(COMPANIES, scale);
    let country: Vec<&str> = (0..n_comp)
        .map(|i| {
            // correlation: country clusters by id range
            let bucket = (i * COUNTRIES.len()) / n_comp;
            COUNTRIES[bucket.min(COUNTRIES.len() - 1)]
        })
        .collect();
    catalog.register(
        Table::new(
            "company_name",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("country_code", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..n_comp as i64).collect()),
                Column::from_strs(country),
            ],
        )
        .expect("company_name schema"),
    );

    // -- movie_companies -----------------------------------------------
    let n_mc = sz(MOVIE_COMPANIES, scale);
    let mut mc_movie = Vec::with_capacity(n_mc);
    let mut mc_comp = Vec::with_capacity(n_mc);
    let mut mc_type = Vec::with_capacity(n_mc);
    for _ in 0..n_mc {
        let movie = zipf(&mut rng, n_title, 1.1) as i64;
        mc_movie.push(movie);
        // correlation: popular (low-id) movies use low-id companies
        let comp = if movie < (n_title / 10) as i64 {
            rng.gen_range(0..(n_comp as i64 / 4).max(1))
        } else {
            rng.gen_range(0..n_comp as i64)
        };
        mc_comp.push(comp);
        mc_type.push(rng.gen_range(0..4i64));
    }
    catalog.register(
        Table::new(
            "movie_companies",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("company_id", ValueType::Int),
                ColumnDef::new("company_type_id", ValueType::Int),
            ]),
            vec![
                Column::from_ints(mc_movie),
                Column::from_ints(mc_comp),
                Column::from_ints(mc_type),
            ],
        )
        .expect("movie_companies schema"),
    );

    // -- info_type ------------------------------------------------------
    let n_it = INFO_TYPES;
    let it_names: Vec<String> = (0..n_it).map(|i| format!("info{i}")).collect();
    catalog.register(
        Table::new(
            "info_type",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("info", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..n_it as i64).collect()),
                Column::from_strs(&it_names),
            ],
        )
        .expect("info_type schema"),
    );

    // -- movie_info / movie_info_idx ------------------------------------
    let gen_info = |rng: &mut SmallRng, n: usize| {
        let mut movie = Vec::with_capacity(n);
        let mut ty = Vec::with_capacity(n);
        let mut val = Vec::with_capacity(n);
        for _ in 0..n {
            let m = zipf(rng, n_title, 1.05);
            let t = rng.gen_range(0..n_it as i64);
            // correlation: value depends on info type AND the movie's year
            let v = t * 100 + (year[m] - 1930) / 3 + rng.gen_range(0..5);
            movie.push(m as i64);
            ty.push(t);
            val.push(v);
        }
        (movie, ty, val)
    };
    let (mi_m, mi_t, mi_v) = gen_info(&mut rng, sz(MOVIE_INFO, scale));
    catalog.register(
        Table::new(
            "movie_info",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("info_type_id", ValueType::Int),
                ColumnDef::new("info_val", ValueType::Int),
            ]),
            vec![
                Column::from_ints(mi_m),
                Column::from_ints(mi_t),
                Column::from_ints(mi_v),
            ],
        )
        .expect("movie_info schema"),
    );
    let (mx_m, mx_t, mx_v) = gen_info(&mut rng, sz(MOVIE_INFO_IDX, scale));
    catalog.register(
        Table::new(
            "movie_info_idx",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("info_type_id", ValueType::Int),
                ColumnDef::new("info_val", ValueType::Int),
            ]),
            vec![
                Column::from_ints(mx_m),
                Column::from_ints(mx_t),
                Column::from_ints(mx_v),
            ],
        )
        .expect("movie_info_idx schema"),
    );

    // -- name / cast_info -----------------------------------------------
    let n_name = sz(NAMES, scale);
    let gender: Vec<&str> = (0..n_name)
        .map(|_| if rng.gen_bool(0.45) { "f" } else { "m" })
        .collect();
    let gender_flags: Vec<bool> = gender.iter().map(|g| *g == "f").collect();
    catalog.register(
        Table::new(
            "name",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("gender", ValueType::Str),
            ]),
            vec![
                Column::from_ints((0..n_name as i64).collect()),
                Column::from_strs(gender),
            ],
        )
        .expect("name schema"),
    );
    let n_ci = sz(CAST_INFO, scale);
    let mut ci_movie = Vec::with_capacity(n_ci);
    let mut ci_person = Vec::with_capacity(n_ci);
    let mut ci_role = Vec::with_capacity(n_ci);
    for _ in 0..n_ci {
        let p = zipf(&mut rng, n_name, 1.2);
        ci_movie.push(zipf(&mut rng, n_title, 1.05) as i64);
        ci_person.push(p as i64);
        // correlation: role depends on gender
        let r = if gender_flags[p] {
            rng.gen_range(0..3i64)
        } else {
            rng.gen_range(2..6i64)
        };
        ci_role.push(r);
    }
    catalog.register(
        Table::new(
            "cast_info",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("person_id", ValueType::Int),
                ColumnDef::new("role_id", ValueType::Int),
            ]),
            vec![
                Column::from_ints(ci_movie),
                Column::from_ints(ci_person),
                Column::from_ints(ci_role),
            ],
        )
        .expect("cast_info schema"),
    );

    // -- keyword / movie_keyword -----------------------------------------
    let n_kw = sz(KEYWORDS, scale);
    catalog.register(
        Table::new(
            "keyword",
            Schema::new([
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("bucket", ValueType::Int),
            ]),
            vec![
                Column::from_ints((0..n_kw as i64).collect()),
                Column::from_ints((0..n_kw as i64).map(|i| i % 50).collect()),
            ],
        )
        .expect("keyword schema"),
    );
    let n_mk = sz(MOVIE_KEYWORD, scale);
    let mut mk_movie = Vec::with_capacity(n_mk);
    let mut mk_kw = Vec::with_capacity(n_mk);
    for _ in 0..n_mk {
        mk_movie.push(zipf(&mut rng, n_title, 1.1) as i64);
        mk_kw.push(zipf(&mut rng, n_kw, 1.4) as i64);
    }
    catalog.register(
        Table::new(
            "movie_keyword",
            Schema::new([
                ColumnDef::new("movie_id", ValueType::Int),
                ColumnDef::new("keyword_id", ValueType::Int),
            ]),
            vec![Column::from_ints(mk_movie), Column::from_ints(mk_kw)],
        )
        .expect("movie_keyword schema"),
    );

    let queries = build_queries(&catalog, &mut rng);
    JobWorkload { catalog, queries }
}

/// 33 templates over the schema. Constants vary with the RNG so each
/// seed yields a distinct but structurally identical workload.
fn build_queries(catalog: &Catalog, rng: &mut SmallRng) -> Vec<NamedQuery> {
    let mut queries = Vec::new();
    let mut add = |id: String, q: skinner_query::Query| {
        queries.push(NamedQuery::new(id, q));
    };

    for template in 0..33 {
        let mut qb = QueryBuilder::new(catalog);
        let id = format!("job-{:02}", template + 1);
        // Template families cycle through join shapes of growing size;
        // constants are drawn fresh each time.
        let kind = rng.gen_range(0..KINDS);
        let year_lo = 1930 + rng.gen_range(0..60);
        let country = COUNTRIES[rng.gen_range(0..COUNTRIES.len())];
        let it = rng.gen_range(0..INFO_TYPES as i64);
        match template % 6 {
            0 => {
                // 3-way: title ⋈ movie_companies ⋈ company_name
                qb.table_as("title", "t").unwrap();
                qb.table_as("movie_companies", "mc").unwrap();
                qb.table_as("company_name", "cn").unwrap();
                let j1 = qb.col("t.id").unwrap().eq(qb.col("mc.movie_id").unwrap());
                let j2 = qb
                    .col("mc.company_id")
                    .unwrap()
                    .eq(qb.col("cn.id").unwrap());
                qb.filter(j1);
                qb.filter(j2);
                let f1 = qb.col("cn.country_code").unwrap().eq(Expr::lit(country));
                // correlated pair: kind + year (independence fails here)
                let f2 = qb.col("t.kind_id").unwrap().eq(Expr::lit(kind));
                let f3 = qb.col("t.production_year").unwrap().gt(Expr::lit(year_lo));
                qb.filter(f1);
                qb.filter(f2);
                qb.filter(f3);
                let y = qb.col("t.production_year").unwrap();
                qb.select_agg(AggFunc::Min, Some(y), "min_year");
            }
            1 => {
                // 4-way: title ⋈ movie_info ⋈ info_type, + movie_keyword
                qb.table_as("title", "t").unwrap();
                qb.table_as("movie_info", "mi").unwrap();
                qb.table_as("info_type", "it").unwrap();
                qb.table_as("movie_keyword", "mk").unwrap();
                let j1 = qb.col("t.id").unwrap().eq(qb.col("mi.movie_id").unwrap());
                let j2 = qb
                    .col("mi.info_type_id")
                    .unwrap()
                    .eq(qb.col("it.id").unwrap());
                let j3 = qb.col("t.id").unwrap().eq(qb.col("mk.movie_id").unwrap());
                qb.filter(j1);
                qb.filter(j2);
                qb.filter(j3);
                let f1 = qb.col("it.id").unwrap().eq(Expr::lit(it));
                // correlated: info_val range implied by info type
                let f2 = qb.col("mi.info_val").unwrap().ge(Expr::lit(it * 100));
                let f3 = qb.col("mi.info_val").unwrap().lt(Expr::lit(it * 100 + 40));
                qb.filter(f1);
                qb.filter(f2);
                qb.filter(f3);
                let v = qb.col("mi.info_val").unwrap();
                qb.select_agg(AggFunc::Min, Some(v), "min_val");
            }
            2 => {
                // 5-way star around title
                qb.table_as("title", "t").unwrap();
                qb.table_as("movie_companies", "mc").unwrap();
                qb.table_as("company_name", "cn").unwrap();
                qb.table_as("movie_keyword", "mk").unwrap();
                qb.table_as("keyword", "k").unwrap();
                for (a, b) in [
                    ("t.id", "mc.movie_id"),
                    ("mc.company_id", "cn.id"),
                    ("t.id", "mk.movie_id"),
                    ("mk.keyword_id", "k.id"),
                ] {
                    let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
                    qb.filter(j);
                }
                let f1 = qb.col("cn.country_code").unwrap().eq(Expr::lit(country));
                let f2 = qb
                    .col("k.bucket")
                    .unwrap()
                    .eq(Expr::lit(rng.gen_range(0..50i64)));
                let f3 = qb.col("t.votes").unwrap().gt(Expr::lit(80));
                let f3b = qb.col("t.votes").unwrap().lt(Expr::lit(400));
                qb.filter(f3b);
                let f4 = qb.col("mc.company_type_id").unwrap().eq(Expr::lit(0));
                qb.filter(f1);
                qb.filter(f2);
                qb.filter(f3);
                qb.filter(f4);
                let y = qb.col("t.production_year").unwrap();
                qb.select_agg(AggFunc::Min, Some(y), "min_year");
            }
            3 => {
                // 6-way: cast chain
                qb.table_as("title", "t").unwrap();
                qb.table_as("cast_info", "ci").unwrap();
                qb.table_as("name", "n").unwrap();
                qb.table_as("movie_companies", "mc").unwrap();
                qb.table_as("company_name", "cn").unwrap();
                qb.table_as("movie_keyword", "mk").unwrap();
                for (a, b) in [
                    ("t.id", "ci.movie_id"),
                    ("ci.person_id", "n.id"),
                    ("t.id", "mc.movie_id"),
                    ("mc.company_id", "cn.id"),
                    ("t.id", "mk.movie_id"),
                    // transitive closure, as real JOB queries spell out —
                    // these adjacencies let bad plans join skewed fact
                    // tables directly (the catastrophic shape)
                    ("ci.movie_id", "mc.movie_id"),
                    ("mc.movie_id", "mk.movie_id"),
                ] {
                    let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
                    qb.filter(j);
                }
                // correlated pair: gender + role; every m:n fact table
                // carries a fanout-cutting filter (as real JOB queries
                // do), so results stay small while *unfiltered prefixes*
                // of bad join orders still explode
                let n_kw = catalog.get("keyword").expect("keyword").num_rows() as i64;
                let f1 = qb.col("n.gender").unwrap().eq(Expr::lit("f"));
                let f2 = qb.col("ci.role_id").unwrap().le(Expr::lit(0));
                let f3 = qb.col("t.kind_id").unwrap().eq(Expr::lit(kind));
                let f4 = qb.col("t.votes").unwrap().gt(Expr::lit(60));
                let f4b = qb.col("t.votes").unwrap().lt(Expr::lit(300));
                qb.filter(f4b);
                let f5 = qb.col("mc.company_type_id").unwrap().eq(Expr::lit(1));
                let f6 = qb.col("mk.keyword_id").unwrap().gt(Expr::lit(n_kw / 2));
                qb.filter(f1);
                qb.filter(f2);
                qb.filter(f3);
                qb.filter(f4);
                qb.filter(f5);
                qb.filter(f6);
                let y = qb.col("t.production_year").unwrap();
                qb.select_agg(AggFunc::Min, Some(y), "min_year");
            }
            4 => {
                // 7-way: two info branches + companies
                qb.table_as("title", "t").unwrap();
                qb.table_as("movie_info", "mi").unwrap();
                qb.table_as("movie_info_idx", "mx").unwrap();
                qb.table_as("info_type", "it1").unwrap();
                qb.table_as("info_type", "it2").unwrap();
                qb.table_as("movie_companies", "mc").unwrap();
                qb.table_as("company_name", "cn").unwrap();
                for (a, b) in [
                    ("t.id", "mi.movie_id"),
                    ("t.id", "mx.movie_id"),
                    ("mi.info_type_id", "it1.id"),
                    ("mx.info_type_id", "it2.id"),
                    ("t.id", "mc.movie_id"),
                    ("mc.company_id", "cn.id"),
                    // transitive closure (see the 6-way template)
                    ("mi.movie_id", "mx.movie_id"),
                    ("mx.movie_id", "mc.movie_id"),
                ] {
                    let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
                    qb.filter(j);
                }
                let f1 = qb.col("it1.id").unwrap().eq(Expr::lit(it));
                let f2 = qb
                    .col("it2.id")
                    .unwrap()
                    .eq(Expr::lit((it + 7) % INFO_TYPES as i64));
                // correlated year/kind trap
                let f3 = qb.col("t.kind_id").unwrap().eq(Expr::lit(kind));
                let f4 = qb
                    .col("t.production_year")
                    .unwrap()
                    .lt(Expr::lit(1930 + kind * 12 + 15));
                // narrow correlated value band keeps the result small
                let f5 = qb.col("mi.info_val").unwrap().lt(Expr::lit(it * 100 + 15));
                let f6 = qb.col("mc.company_type_id").unwrap().eq(Expr::lit(2));
                qb.filter(f1);
                qb.filter(f2);
                qb.filter(f3);
                qb.filter(f4);
                qb.filter(f5);
                qb.filter(f6);
                let v = qb.col("mx.info_val").unwrap();
                qb.select_agg(AggFunc::Min, Some(v), "min_val");
            }
            _ => {
                // 8-way: the heavy template (the "catastrophic" family)
                qb.table_as("title", "t").unwrap();
                qb.table_as("cast_info", "ci").unwrap();
                qb.table_as("name", "n").unwrap();
                qb.table_as("movie_info", "mi").unwrap();
                qb.table_as("info_type", "it").unwrap();
                qb.table_as("movie_keyword", "mk").unwrap();
                qb.table_as("keyword", "k").unwrap();
                qb.table_as("movie_companies", "mc").unwrap();
                for (a, b) in [
                    ("t.id", "ci.movie_id"),
                    ("ci.person_id", "n.id"),
                    ("t.id", "mi.movie_id"),
                    ("mi.info_type_id", "it.id"),
                    ("t.id", "mk.movie_id"),
                    ("mk.keyword_id", "k.id"),
                    ("t.id", "mc.movie_id"),
                    // transitive closure (see the 6-way template)
                    ("ci.movie_id", "mi.movie_id"),
                    ("mi.movie_id", "mk.movie_id"),
                    ("mk.movie_id", "mc.movie_id"),
                ] {
                    let j = qb.col(a).unwrap().eq(qb.col(b).unwrap());
                    qb.filter(j);
                }
                // The trap: kind/year look independent (each ~1/7, ~1/2)
                // but are perfectly correlated, so `title` filters to far
                // more rows than estimated and must NOT be joined late.
                let f1 = qb.col("t.kind_id").unwrap().eq(Expr::lit(kind));
                let f2 = qb
                    .col("t.production_year")
                    .unwrap()
                    .ge(Expr::lit(1930 + kind * 12));
                let band = rng.gen_range(0..20i64) * 100;
                let f3 = qb.col("mi.info_val").unwrap().ge(Expr::lit(band));
                let f4 = qb.col("mi.info_val").unwrap().lt(Expr::lit(band + 110));
                let f5 = qb.col("t.votes").unwrap().gt(Expr::lit(60));
                let f5b = qb.col("t.votes").unwrap().lt(Expr::lit(200));
                qb.filter(f5b);
                let f6 = qb
                    .col("k.bucket")
                    .unwrap()
                    .eq(Expr::lit(rng.gen_range(0..50i64)));
                let f7 = qb.col("ci.role_id").unwrap().eq(Expr::lit(0));
                let f8 = qb.col("mc.company_type_id").unwrap().eq(Expr::lit(3));
                qb.filter(f1);
                qb.filter(f2);
                qb.filter(f3);
                qb.filter(f4);
                qb.filter(f5);
                qb.filter(f6);
                qb.filter(f7);
                qb.filter(f8);
                let y = qb.col("t.production_year").unwrap();
                qb.select_agg(AggFunc::Min, Some(y), "min_year");
            }
        }
        add(id, qb.build().expect("template query builds"));
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_33_valid_queries() {
        let wl = generate(0.05, 42);
        assert_eq!(wl.queries.len(), 33);
        for nq in &wl.queries {
            assert!(nq.query.validate().is_ok(), "{} invalid", nq.id);
            assert!(nq.query.num_tables() >= 3, "{} too small", nq.id);
            assert!(nq.query.join_predicates().count() >= 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.05, 7);
        let b = generate(0.05, 7);
        assert_eq!(
            a.catalog.get("title").unwrap().num_rows(),
            b.catalog.get("title").unwrap().num_rows()
        );
        let ta = a.catalog.get("cast_info").unwrap();
        let tb = b.catalog.get("cast_info").unwrap();
        for c in 0..ta.schema().len() {
            for r in [0usize, 5, 100] {
                assert_eq!(ta.column(c).get(r), tb.column(c).get(r));
            }
        }
    }

    #[test]
    fn correlations_present() {
        let wl = generate(0.1, 1);
        // kind_id determines year range: year ∈ [1930+k*12, 1930+k*12+30)
        let t = wl.catalog.get("title").unwrap();
        for r in 0..t.num_rows() {
            let k = t.column(1).int(r);
            let y = t.column(2).int(r);
            assert!(y >= 1930 + k * 12 && y < 1930 + k * 12 + 30);
        }
    }

    #[test]
    fn sizes_scale() {
        let small = generate(0.02, 3);
        let big = generate(0.1, 3);
        assert!(
            big.catalog.get("title").unwrap().num_rows()
                > 3 * small.catalog.get("title").unwrap().num_rows()
        );
    }
}
