//! Learning-cache persistence: a restarted service starts warm, and
//! every corruption mode degrades (fewer warm starts) instead of
//! failing (no service, wrong answers).
//!
//! "Restart" here is two `QueryService` instances over identically
//! constructed catalogs — the second loads what the first saved and
//! must (a) serve its first repeat of a persisted template as a cache
//! hit with a warm start, and (b) answer byte-for-byte what the first
//! service answered.

use skinner_engine::SkinnerCConfig;
use skinner_service::{QueryService, ServiceConfig};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use std::path::PathBuf;
use std::sync::Arc;

fn catalog(seed: u64) -> Catalog {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let mut mk = |name: &str, n: usize, keys: u64| {
        let k: Vec<i64> = (0..n).map(|_| rng.gen_range(0..keys) as i64).collect();
        let v: Vec<i64> = (0..n).map(|i| i as i64).collect();
        Table::new(
            name,
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![Column::from_ints(k), Column::from_ints(v)],
        )
        .unwrap()
    };
    let (r, s, u) = (mk("r", 256, 32), mk("s", 512, 32), mk("u", 128, 32));
    cat.register(r);
    cat.register(s);
    cat.register(u);
    cat
}

fn service(seed: u64) -> Arc<QueryService> {
    QueryService::new(
        catalog(seed),
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

const SQL_A: &str = "SELECT COUNT(*) AS n FROM r, s, u WHERE r.k = s.k AND s.k = u.k";
const SQL_B: &str = "SELECT MIN(s.v) AS lo, MAX(s.v) AS hi FROM s, u WHERE s.k = u.k";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skinner-persistence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn restarted_service_starts_warm() {
    let path = tmp("warm.bin");
    let first = service(41);
    let expected_a = first.session().execute(SQL_A).expect("first run").table;
    let expected_b = first.session().execute(SQL_B).expect("first run").table;
    let n = first.save_learning_cache(&path).expect("save");
    assert_eq!(n, 2, "both templates persisted");

    // "Restart": a fresh service over the same data, warm-started from
    // the file. Its *first* execution of each template must already be
    // a cache hit with a warm start, and the answers must match.
    let second = service(41);
    let report = second.load_learning_cache(&path).expect("load");
    assert_eq!(report.loaded, 2);
    assert_eq!(report.corrupt, 0);
    assert_eq!(report.stale, 0);
    assert!(!report.truncated);

    let a = second.session().execute(SQL_A).expect("warm run");
    assert!(a.stats.cache_hit, "persisted entry not served as a hit");
    assert!(a.stats.warm_start, "persisted snapshot not warm-starting");
    assert_eq!(a.table, expected_a);
    let b = second.session().execute(SQL_B).expect("warm run");
    assert!(b.stats.cache_hit);
    assert_eq!(b.table, expected_b);
    std::fs::remove_file(&path).ok();
}

#[test]
fn stale_entries_are_skipped_on_load() {
    let path = tmp("stale.bin");
    let first = service(43);
    first.session().execute(SQL_A).expect("run"); // touches r, s, u
    first.session().execute(SQL_B).expect("run"); // touches s, u
    first.save_learning_cache(&path).expect("save");

    // The restarted service has a *different* `r` (data changed across
    // the restart): entries depending on r must be dropped as stale,
    // the s/u-only entry must survive.
    let second = service(43);
    second.register_table(
        Table::new(
            "r",
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_ints(vec![10, 20, 30]),
            ],
        )
        .unwrap(),
    );
    let report = second.load_learning_cache(&path).expect("load");
    assert_eq!(report.loaded, 1, "s/u template survives");
    assert_eq!(report.stale, 1, "r-dependent template dropped");

    // The stale template runs cold — and correct for the *new* data.
    let a = second.session().execute(SQL_A).expect("cold run");
    assert!(!a.stats.cache_hit, "stale learning must not be served");
    let b = second.session().execute(SQL_B).expect("warm run");
    assert!(b.stats.cache_hit);
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_file_keeps_the_complete_prefix() {
    let path = tmp("truncated.bin");
    let first = service(47);
    first.session().execute(SQL_A).expect("run");
    first.session().execute(SQL_B).expect("run");
    first.save_learning_cache(&path).expect("save");

    // Tear the file mid-way through the second record (what a crash
    // during a non-atomic write would leave; the atomic protocol makes
    // this unreachable in practice, but the loader defends anyway).
    let bytes = std::fs::read(&path).unwrap();
    let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let cut = 8 + 12 + first_len + 20;
    assert!(cut < bytes.len(), "need two records to tear the second");
    std::fs::write(&path, &bytes[..cut]).unwrap();

    let second = service(47);
    let report = second.load_learning_cache(&path).expect("load");
    assert_eq!(report.loaded, 1);
    assert!(report.truncated);
    // Still correct, still serving; one template warm, one cold.
    let warm_hits: usize = [SQL_A, SQL_B]
        .iter()
        .filter(|sql| {
            second
                .session()
                .execute(sql)
                .expect("post-truncation run")
                .stats
                .cache_hit
        })
        .count();
    assert_eq!(warm_hits, 1);
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_and_foreign_files_load_empty_not_fatal() {
    let path = tmp("garbage.bin");
    std::fs::write(&path, b"this is not a skinner cache file at all").unwrap();
    let svc = service(53);
    let report = svc.load_learning_cache(&path).expect("load");
    assert_eq!(report.loaded, 0);
    assert!(report.format_mismatch);
    svc.session().execute(SQL_A).expect("service serves cold");

    // Empty file: same story.
    std::fs::write(&path, b"").unwrap();
    let report = svc.load_learning_cache(&path).expect("load");
    assert_eq!(report.loaded, 0);
    assert!(report.format_mismatch);
    std::fs::remove_file(&path).ok();
}

#[test]
fn save_load_save_is_stable() {
    // A second generation of save/load (including entries that were
    // themselves loaded from disk) round-trips identically.
    let p1 = tmp("gen1.bin");
    let p2 = tmp("gen2.bin");
    let first = service(59);
    let expected = first.session().execute(SQL_A).expect("run").table;
    first.save_learning_cache(&p1).expect("save gen1");

    let second = service(59);
    second.load_learning_cache(&p1).expect("load gen1");
    second.save_learning_cache(&p2).expect("save gen2");

    let third = service(59);
    let report = third.load_learning_cache(&p2).expect("load gen2");
    assert_eq!(report.loaded, 1);
    let a = third.session().execute(SQL_A).expect("run");
    assert!(a.stats.cache_hit && a.stats.warm_start);
    assert_eq!(a.table, expected);
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}
