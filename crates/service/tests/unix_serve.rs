//! Unix-socket server lifecycle: the socket file must be gone after
//! *every* exit path (it is removed by a drop guard, not by happy-path
//! code), and the externally raised shutdown flag must drain the accept
//! loop.

#![cfg(unix)]

use skinner_engine::SkinnerCConfig;
use skinner_service::repl::{serve_unix_with, ServeOptions};
use skinner_service::{QueryService, ServiceConfig, ShutdownFlag};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service() -> Arc<QueryService> {
    let mut cat = Catalog::new();
    let k: Vec<i64> = (0..64).map(|i| (i % 8) as i64).collect();
    let v: Vec<i64> = (0..64).map(|i| i as i64).collect();
    cat.register(
        Table::new(
            "r",
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![Column::from_ints(k), Column::from_ints(v)],
        )
        .unwrap(),
    );
    QueryService::new(
        cat,
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 100,
                threads: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn shutdown_flag_drains_and_removes_socket_file() {
    let path = std::env::temp_dir().join(format!(
        "skinner-unix-serve-{}-{:?}.sock",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);

    let shutdown = ShutdownFlag::new();
    let opts = ServeOptions {
        shutdown: shutdown.clone(),
        ..Default::default()
    };
    let svc = service();
    let server = {
        let path = path.clone();
        std::thread::spawn(move || serve_unix_with(svc, &path, opts))
    };

    assert!(
        wait_for(Duration::from_secs(10), || path.exists()),
        "socket file never appeared"
    );

    // A real client round-trip proves the server is actually serving
    // before we tear it down (not just that the file exists).
    let stream = UnixStream::connect(&path).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "SELECT COUNT(*) AS n FROM r").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).expect("response line");
    assert!(!line.trim().is_empty(), "server answered nothing");
    drop(writer);
    drop(reader);

    shutdown.raise();
    let result = server.join().expect("server thread panicked");
    result.expect("serve_unix_with failed");
    assert!(
        !path.exists(),
        "socket file leaked after shutdown: {}",
        path.display()
    );
}
