//! Pool stress: the persistent morsel pool under concurrent sessions,
//! cancels, timeouts and mid-morsel panics.
//!
//! The pool is service-wide and long-lived, so the failure modes worth
//! testing are *systemic*: a wedged queue (a morsel lost ⇒ its batch
//! never completes ⇒ the submitting query hangs forever), dead workers
//! that never come back (pool capacity decays to zero over a long
//! uptime), and leaked admission permits (the core budget drains until
//! every query serializes). Each test provokes one storm through the
//! public API and asserts the recovery invariants:
//!
//! 1. every session returns — `Ok` or a clean error — within the
//!    harness deadline (no wedge);
//! 2. the pool is back to full strength: `live_workers == workers`,
//!    with panicked workers replaced, not merely buried;
//! 3. `CoreBudget::available()` equals the initial total and the
//!    in-flight gauge is zero (no permit leaks);
//! 4. the very next query answers byte-for-byte what an unfaulted
//!    service answers.
//!
//! Failpoints are process-global, so these tests serialize behind one
//! mutex (this file is its own test binary — other binaries are
//! separate processes).

use skinner_engine::failpoints;
use skinner_engine::SkinnerCConfig;
use skinner_service::{CancelToken, ExecuteOptions, QueryService, ServiceConfig, ServiceError};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Serializes the tests in this binary (failpoints are process-global).
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn catalog(seed: u64) -> Catalog {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let mut mk = |name: &str, n: usize, keys: u64| {
        let k: Vec<i64> = (0..n).map(|_| rng.gen_range(0..keys) as i64).collect();
        let v: Vec<i64> = (0..n).map(|i| i as i64).collect();
        Table::new(
            name,
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![Column::from_ints(k), Column::from_ints(v)],
        )
        .unwrap()
    };
    let (r, s, u) = (mk("r", 256, 32), mk("s", 512, 32), mk("u", 128, 32));
    cat.register(r);
    cat.register(s);
    cat.register(u);
    cat
}

fn service(seed: u64, threads: usize) -> Arc<QueryService> {
    QueryService::new(
        catalog(seed),
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

const SQL: &str = "SELECT COUNT(*) AS n FROM r, s, u WHERE r.k = s.k AND s.k = u.k";

/// Post-storm invariants: pool at full strength, budget whole, gauge
/// zero, next query byte-for-byte correct.
fn assert_recovered(svc: &Arc<QueryService>, expected: &skinner_core::ResultTable) {
    let pool = svc.worker_pool();
    assert_eq!(
        pool.live_workers(),
        pool.workers(),
        "pool not at full strength — panicked workers were not replaced"
    );
    assert_eq!(
        svc.core_budget().available(),
        svc.core_budget().total(),
        "core budget leaked permits across the storm"
    );
    assert_eq!(svc.stats().queries_in_flight, 0, "in-flight gauge leaked");
    let after = svc.session().execute(SQL).expect("post-storm query").table;
    assert_eq!(&after, expected, "post-storm answer diverged");
}

#[test]
fn concurrent_sessions_with_morsel_panics_never_wedge_the_pool() {
    let _g = gate();
    failpoints::reset();
    let expected = service(41, 4)
        .session()
        .execute(SQL)
        .expect("baseline")
        .table;
    let svc = service(41, 4);

    // ---- Phase 1: deterministic mid-morsel panics, contention-free.
    //
    // A panicked execution never stores learning, so the template stays
    // *cold* and every retry re-partitions (a warm template would be
    // admitted with 1 worker and take the sequential path, never
    // reaching the failpoint). Each partitioned slice runs one morsel
    // per granted worker and ALL of them hit the armed site — sibling
    // morsels keep running after one panics (join-then-propagate) — so
    // the 8 armed fires fail a couple of executions, then the next
    // execution finds the site disarmed and completes.
    failpoints::config("partition.chunk", "panic*8");
    let mut internals = 0usize;
    loop {
        match svc.session().execute(SQL) {
            Err(ServiceError::Internal(msg)) => {
                assert!(
                    msg.contains("injected failpoint panic"),
                    "panic payload lost: {msg}"
                );
                internals += 1;
                assert!(internals <= 8, "more failures than armed fires");
            }
            Ok(out) => {
                assert_eq!(out.table, expected);
                break;
            }
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    failpoints::reset();
    assert!(
        internals >= 1,
        "partitioned path never reached the morsel failpoint"
    );
    assert_eq!(svc.stats().panicked as usize, internals);
    assert!(
        svc.worker_pool().task_panics() as usize >= internals,
        "morsel panics must be caught at the pool task boundary"
    );

    // ---- Phase 2: concurrent chaos — cancels, timeouts, plain
    // sessions, with more panics armed. Whether each panic fires
    // depends on adaptive admission (warm templates run sequentially),
    // so this phase asserts *recovery*, not fire counts.
    failpoints::config("partition.chunk", "panic@2*4");
    let sessions = 12;
    let mut outcomes = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..sessions {
            let svc = Arc::clone(&svc);
            handles.push(scope.spawn(move || {
                let mut session = svc.session();
                match i % 4 {
                    // Cancelled mid-run: raise the token from a sibling
                    // thread while the query executes.
                    0 => {
                        let token = CancelToken::new();
                        let raiser = token.clone();
                        let t = scope.spawn(move || {
                            std::thread::sleep(Duration::from_micros(200));
                            raiser.cancel();
                        });
                        let r = session.execute_with(
                            SQL,
                            &ExecuteOptions {
                                cancel: Some(token),
                                ..Default::default()
                            },
                        );
                        t.join().unwrap();
                        r
                    }
                    // Timed out (checked at the first slice boundary).
                    1 => session.execute_with(
                        SQL,
                        &ExecuteOptions {
                            timeout: Some(Duration::ZERO),
                            ..Default::default()
                        },
                    ),
                    // Plain execution racing the panics above.
                    _ => session.execute(SQL),
                }
            }));
        }
        for h in handles {
            // `join` returning at all IS the no-wedge assertion: a lost
            // morsel would leave its batch incomplete and the session
            // blocked in `run_batch_mut` forever.
            outcomes.push(h.join().expect("session thread itself panicked"));
        }
    });
    failpoints::reset();

    for r in &outcomes {
        match r {
            Ok(out) => assert_eq!(out.table, expected, "storm survivor returned wrong answer"),
            Err(ServiceError::Cancelled) | Err(ServiceError::TimedOut) => {}
            Err(ServiceError::Internal(msg)) => assert!(
                msg.contains("injected failpoint panic"),
                "unexpected panic payload: {msg}"
            ),
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_recovered(&svc, &expected);
}

#[test]
fn cancel_storm_releases_every_permit() {
    let _g = gate();
    failpoints::reset();
    let expected = service(43, 4)
        .session()
        .execute(SQL)
        .expect("baseline")
        .table;
    let svc = service(43, 4);

    for round in 0..24 {
        let token = CancelToken::new();
        if round % 2 == 0 {
            // Pre-raised: the admission path must release its grant
            // without ever submitting morsels.
            token.cancel();
        }
        let raiser = token.clone();
        let svc2 = Arc::clone(&svc);
        let runner = std::thread::spawn(move || {
            svc2.session().execute_with(
                SQL,
                &ExecuteOptions {
                    cancel: Some(token),
                    ..Default::default()
                },
            )
        });
        raiser.cancel();
        match runner.join().expect("runner panicked") {
            Ok(out) => assert_eq!(out.table, expected),
            Err(ServiceError::Cancelled) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
    assert_recovered(&svc, &expected);
}

#[test]
fn timeout_storm_under_contention_releases_every_permit() {
    let _g = gate();
    failpoints::reset();
    let expected = service(47, 4)
        .session()
        .execute(SQL)
        .expect("baseline")
        .table;
    let svc = service(47, 4);

    // More sessions than budget permits, every one on a tiny deadline:
    // some time out *queued* (admission path), some time out mid-run
    // (slice boundary). Either way the grant must come back.
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..16 {
            let svc = Arc::clone(&svc);
            handles.push(scope.spawn(move || {
                svc.session().execute_with(
                    SQL,
                    &ExecuteOptions {
                        timeout: Some(Duration::from_micros(50 * i as u64)),
                        ..Default::default()
                    },
                )
            }));
        }
        for h in handles {
            match h.join().expect("session thread panicked") {
                Ok(out) => assert_eq!(out.table, expected),
                Err(ServiceError::TimedOut) => {}
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
    });
    assert_recovered(&svc, &expected);
}
