//! Service-level integration tests:
//!
//! * **Concurrent-session stress** — N OS threads hammer the service
//!   with repeated templates; every result must be identical to serial
//!   execution, the core budget must never be exceeded, and the cache
//!   must end up warm.
//! * **Cache correctness** — warm-started answers are byte-for-byte
//!   equal to cold ones, including after catalog-invalidating updates.
//!
//! `SKINNER_TEST_THREADS` (default 4) sets the service's total core
//! budget, so CI exercises the admission path with a multi-core budget.

use skinner_core::ResultTable;
use skinner_engine::SkinnerCConfig;
use skinner_service::{QueryService, ServiceConfig};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use std::sync::Arc;

fn env_threads() -> usize {
    std::env::var("SKINNER_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// A three-table catalog with enough rows that queries take multiple
/// slices (so admission, warm starts, and interleavings all matter).
fn catalog(seed: u64) -> Catalog {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let mk = |name: &str, n: usize, keys: u64, rng: &mut SmallRng| {
        let k: Vec<i64> = (0..n).map(|_| rng.gen_range(0..keys) as i64).collect();
        let v: Vec<i64> = (0..n).map(|i| i as i64).collect();
        Table::new(
            name,
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![Column::from_ints(k), Column::from_ints(v)],
        )
        .unwrap()
    };
    cat.register(mk("r", 256, 32, &mut rng));
    cat.register(mk("s", 512, 32, &mut rng));
    cat.register(mk("u", 128, 32, &mut rng));
    cat
}

fn service(seed: u64) -> Arc<QueryService> {
    QueryService::new(
        catalog(seed),
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads: env_threads(),
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

/// Query templates (varying constants per iteration).
fn sql(template: usize, constant: i64) -> String {
    match template {
        0 => format!("SELECT COUNT(*) AS n FROM r, s WHERE r.k = s.k AND r.v < {constant}"),
        1 => format!(
            "SELECT r.k AS k, COUNT(*) AS n FROM r, s, u \
             WHERE r.k = s.k AND s.k = u.k AND u.v < {constant} \
             GROUP BY r.k ORDER BY k"
        ),
        _ => format!(
            "SELECT MIN(s.v) AS lo, MAX(s.v) AS hi FROM s, u WHERE s.k = u.k AND s.v > {constant}"
        ),
    }
}

#[test]
fn concurrent_sessions_match_serial_execution() {
    const SESSIONS: usize = 4;
    const QUERIES_PER_SESSION: usize = 12;

    // Serial ground truth on a service of its own (cold and warm runs
    // both happen here too — results must be constant regardless).
    let serial = service(7);
    let mut expected: Vec<Vec<ResultTable>> = Vec::new();
    {
        let mut session = serial.session();
        for worker in 0..SESSIONS {
            let mut per_worker = Vec::new();
            for i in 0..QUERIES_PER_SESSION {
                let q = sql(i % 3, 10 + (worker * QUERIES_PER_SESSION + i) as i64);
                per_worker.push(session.execute(&q).expect("serial query").table);
            }
            expected.push(per_worker);
        }
    }

    // The same queries, now from 4 concurrent sessions.
    let svc = service(7);
    let mut handles = Vec::new();
    for worker in 0..SESSIONS {
        let svc = svc.clone();
        handles.push(std::thread::spawn(move || {
            let mut session = svc.session();
            let mut tables = Vec::new();
            for i in 0..QUERIES_PER_SESSION {
                let q = sql(i % 3, 10 + (worker * QUERIES_PER_SESSION + i) as i64);
                tables.push(session.execute(&q).expect("concurrent query").table);
            }
            tables
        }));
    }
    for (worker, h) in handles.into_iter().enumerate() {
        let got = h.join().expect("session thread");
        for (i, (g, e)) in got.iter().zip(&expected[worker]).enumerate() {
            assert!(
                g.same_rows(e),
                "worker {worker} query {i}: concurrent result diverged from serial"
            );
        }
    }

    let stats = svc.stats();
    assert_eq!(stats.queries, (SESSIONS * QUERIES_PER_SESSION) as u64);
    // 3 templates across 48 executions: the cache must be doing work.
    assert_eq!(svc.learning_cache().len(), 3);
    assert!(
        stats.cache.hits >= (SESSIONS * QUERIES_PER_SESSION - 3 * SESSIONS) as u64,
        "cache barely hit: {:?}",
        stats.cache
    );
    assert!(stats.warm_starts > 0, "no warm starts under repetition");
}

#[test]
fn warm_answers_equal_cold_answers() {
    // The learning cache must never change answers — only convergence
    // speed. Run each template cold on a fresh service, then repeatedly
    // on a shared one; all answers must match exactly (canonical rows,
    // i.e. byte-for-byte modulo row order, which grouped/sorted queries
    // pin down anyway).
    let shared = service(21);
    let mut session = shared.session();
    for template in 0..3 {
        for round in 0..4 {
            let q = sql(template, 25);
            let cold = {
                let fresh = service(21);
                let mut s = fresh.session();
                s.execute(&q).expect("cold").table
            };
            let warm = session.execute(&q).expect("warm");
            assert!(
                warm.table.same_rows(&cold),
                "template {template} round {round}: warm result differs from cold"
            );
            if round > 0 {
                assert!(warm.stats.cache_hit, "repeat execution missed the cache");
            }
        }
    }
}

#[test]
fn warm_answers_survive_catalog_invalidation() {
    let svc = service(33);
    let mut session = svc.session();
    let q = sql(0, 40);
    let before = session.execute(&q).expect("before update");
    assert!(session.execute(&q).expect("warm repeat").stats.cache_hit);

    // Replace table "s": different rows, same schema. The cached entry
    // for the template is now stale and must be invalidated, and the
    // fresh answer must match a cold service over the *new* catalog.
    let new_s = {
        let k: Vec<i64> = (0..300).map(|i| i % 16).collect();
        let v: Vec<i64> = (0..300).collect();
        Table::new(
            "s",
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![Column::from_ints(k), Column::from_ints(v)],
        )
        .unwrap()
    };
    svc.register_table(new_s.clone());

    let after = session.execute(&q).expect("after update");
    assert!(
        !after.stats.cache_hit,
        "stale learning served across a catalog update"
    );
    assert!(
        !after.table.same_rows(&before.table),
        "sanity: the update should change the answer"
    );

    // Cold oracle over the updated catalog.
    let mut oracle_cat = catalog(33);
    oracle_cat.register(new_s);
    let oracle = QueryService::new(
        oracle_cat,
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads: env_threads(),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let expected = oracle.session().execute(&q).expect("oracle").table;
    assert!(after.table.same_rows(&expected));

    // And the template re-warms against the new catalog version.
    assert!(session.execute(&q).expect("re-warm").stats.cache_hit);
}

/// Two link tables sharing a composite `(a, b)` key: the engine joins
/// them through a fused composite index (see
/// `skinner_engine::prepare::CompositeKeyGroup`).
fn composite_catalog(seed: u64) -> Catalog {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let mut mk = |name: &str, n: usize| {
        let a: Vec<i64> = (0..n).map(|_| rng.gen_range(0..12)).collect();
        let b: Vec<i64> = (0..n).map(|_| rng.gen_range(0..12)).collect();
        let v: Vec<i64> = (0..n).map(|i| i as i64).collect();
        Table::new(
            name,
            Schema::new([
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::new("b", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![
                Column::from_ints(a),
                Column::from_ints(b),
                Column::from_ints(v),
            ],
        )
        .unwrap()
    };
    let l1 = mk("l1", 300);
    let l2 = mk("l2", 400);
    let l3 = mk("l3", 150);
    cat.register(l1);
    cat.register(l2);
    cat.register(l3);
    cat
}

fn composite_service(seed: u64) -> Arc<QueryService> {
    QueryService::new(
        composite_catalog(seed),
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads: env_threads(),
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[test]
fn composite_template_warm_survives_catalog_invalidation() {
    // A composite-key template: l1 ⋈ l2 on (a, b), l2 ⋈ l3 on a. After
    // a catalog update to ONE table of the template, the cached learning
    // must be invalidated and the warm-path answer must equal a cold
    // service's answer over the new catalog byte for byte.
    let sql = "SELECT l1.v AS v, COUNT(*) AS n FROM l1, l2, l3 \
               WHERE l1.a = l2.a AND l1.b = l2.b AND l2.a = l3.a AND l3.v < 60 \
               GROUP BY l1.v ORDER BY v";

    let svc = composite_service(91);
    let mut session = svc.session();
    let cold = session.execute(sql).expect("cold");
    assert!(!cold.stats.cache_hit);
    let warm = session.execute(sql).expect("warm");
    assert!(warm.stats.cache_hit, "composite template must cache");
    assert!(
        warm.table.same_rows(&cold.table),
        "warm composite answer differs from cold"
    );

    // Replace l2 (a table inside the composite group). Same schema,
    // different rows.
    let new_l2 = {
        let a: Vec<i64> = (0..350).map(|i| i % 7).collect();
        let b: Vec<i64> = (0..350).map(|i| (i / 2) % 9).collect();
        let v: Vec<i64> = (0..350).collect();
        Table::new(
            "l2",
            Schema::new([
                ColumnDef::new("a", ValueType::Int),
                ColumnDef::new("b", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![
                Column::from_ints(a),
                Column::from_ints(b),
                Column::from_ints(v),
            ],
        )
        .unwrap()
    };
    svc.register_table(new_l2.clone());

    let after = session.execute(sql).expect("after update");
    assert!(
        !after.stats.cache_hit,
        "stale composite learning served across a catalog update"
    );

    // Cold oracle over the updated catalog — byte-for-byte equality
    // (canonical rows; the GROUP BY/ORDER BY pins row order anyway).
    let mut oracle_cat = composite_catalog(91);
    oracle_cat.register(new_l2);
    let oracle_svc = QueryService::new(
        oracle_cat,
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads: env_threads(),
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let expected = oracle_svc.session().execute(sql).expect("oracle");
    assert!(
        after.table.same_rows(&expected.table),
        "post-invalidation composite answer differs from cold oracle"
    );

    // Re-warms against the new catalog version, still byte-for-byte.
    let rewarm = session.execute(sql).expect("re-warm");
    assert!(rewarm.stats.cache_hit);
    assert!(rewarm.table.same_rows(&expected.table));

    // Updating a table OUTSIDE the template must keep the entry warm.
    let unrelated = Table::new(
        "zz_unrelated",
        Schema::new([ColumnDef::new("x", ValueType::Int)]),
        vec![Column::from_ints(vec![1, 2, 3])],
    )
    .unwrap();
    svc.register_table(unrelated);
    assert!(
        session.execute(sql).expect("still warm").stats.cache_hit,
        "unrelated catalog update must not invalidate the composite template"
    );
}

#[test]
fn memory_budget_fails_cleanly_without_limit() {
    use skinner_service::{ExecuteOptions, ServiceError};
    let svc = service(71);
    let mut session = svc.session();
    let sql = sql(1, 100); // multi-table GROUP BY: no LIMIT pushdown
    let opts = ExecuteOptions {
        max_result_bytes: Some(64), // absurdly small: must trip
        ..Default::default()
    };
    let err = session.execute_with(&sql, &opts).expect_err("budget trips");
    assert!(matches!(err, ServiceError::MemoryExceeded), "{err:?}");
    assert_eq!(svc.stats().memory_exceeded, 1);
    // No leaks: the same session answers the uncapped query correctly.
    assert_eq!(svc.stats().queries_in_flight, 0);
    let clean = session.execute(&sql).expect("uncapped run");
    let oracle = service(71).session().execute(&sql).expect("oracle");
    assert!(clean.table.same_rows(&oracle.table));
}

#[test]
fn memory_budget_keeps_streamed_prefix_under_limit() {
    use skinner_engine::StopReason;
    use skinner_service::ExecuteOptions;
    let svc = service(73);
    // LIMIT pushdown active (plain projection): a tripped byte budget
    // keeps the already-delivered prefix instead of failing.
    let sql = "SELECT r.v AS v FROM r, s WHERE r.k = s.k LIMIT 5000";
    let full = service(73)
        .session()
        .execute("SELECT r.v AS v FROM r, s WHERE r.k = s.k")
        .expect("full result");
    let opts = ExecuteOptions {
        max_result_bytes: Some(256),
        ..Default::default()
    };
    let capped = svc
        .session()
        .execute_with(sql, &opts)
        .expect("prefix kept, not an error");
    assert_eq!(capped.stats.stop, Some(StopReason::MemoryExceeded));
    assert!(
        (capped.table.num_rows() as u64) < full.table.num_rows() as u64,
        "cap did not bite"
    );
    assert!(capped.table.num_rows() > 0, "prefix empty");
    // Every prefix row is a row of the full result.
    for row in &capped.table.rows {
        assert!(full.table.rows.contains(row), "phantom row {row:?}");
    }
    assert_eq!(svc.stats().memory_exceeded, 1);
}

#[test]
fn service_default_memory_budget_applies() {
    use skinner_service::ServiceError;
    let svc = QueryService::new(
        catalog(79),
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads: env_threads(),
                ..Default::default()
            },
            max_result_bytes: Some(64),
            ..Default::default()
        },
    );
    let err = svc
        .session()
        .execute(&sql(1, 100))
        .expect_err("service-wide cap trips");
    assert!(matches!(err, ServiceError::MemoryExceeded), "{err:?}");
    // A per-query override can raise the cap back up.
    let opts = skinner_service::ExecuteOptions {
        max_result_bytes: Some(usize::MAX),
        ..Default::default()
    };
    svc.session()
        .execute_with(&sql(1, 100), &opts)
        .expect("override lifts the cap");
}
