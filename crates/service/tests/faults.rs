//! Fault-injection tests: the service must stay **available and
//! correct** under injected panics and I/O errors.
//!
//! Each test arms a named failpoint (see `skinner_engine::failpoints`),
//! provokes the fault through the public service API, and then checks
//! the three recovery invariants:
//!
//! 1. the fault surfaces as a clean error (`ServiceError::Internal` /
//!    `io::Error`), never a crash or a hang;
//! 2. no resource leaks: the core budget returns to full, the in-flight
//!    gauge returns to zero;
//! 3. the very next query on the same service answers **byte-for-byte**
//!    what an unfaulted service answers.
//!
//! Failpoints are process-global, so these tests serialize behind one
//! mutex (this file is its own test binary — other test binaries are
//! separate processes and unaffected).

use skinner_engine::failpoints;
use skinner_engine::SkinnerCConfig;
use skinner_service::{QueryService, ServiceConfig, ServiceError};
use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Serializes the tests in this binary (failpoints are process-global).
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn catalog(seed: u64) -> Catalog {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cat = Catalog::new();
    let mut mk = |name: &str, n: usize, keys: u64| {
        let k: Vec<i64> = (0..n).map(|_| rng.gen_range(0..keys) as i64).collect();
        let v: Vec<i64> = (0..n).map(|i| i as i64).collect();
        Table::new(
            name,
            Schema::new([
                ColumnDef::new("k", ValueType::Int),
                ColumnDef::new("v", ValueType::Int),
            ]),
            vec![Column::from_ints(k), Column::from_ints(v)],
        )
        .unwrap()
    };
    let (r, s, u) = (mk("r", 256, 32), mk("s", 512, 32), mk("u", 128, 32));
    cat.register(r);
    cat.register(s);
    cat.register(u);
    cat
}

fn service(seed: u64, threads: usize) -> Arc<QueryService> {
    QueryService::new(
        catalog(seed),
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                budget: 200,
                threads,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

const SQL: &str = "SELECT COUNT(*) AS n FROM r, s, u WHERE r.k = s.k AND s.k = u.k";

/// The unfaulted ground truth for [`SQL`] over `catalog(seed)`.
fn baseline(seed: u64, threads: usize) -> skinner_core::ResultTable {
    let svc = service(seed, threads);
    svc.session().execute(SQL).expect("baseline").table
}

/// Assert the post-fault invariants: budget whole, gauge zero, next
/// query byte-for-byte correct.
fn assert_recovered(svc: &Arc<QueryService>, expected: &skinner_core::ResultTable) {
    assert_eq!(
        svc.core_budget().available(),
        svc.core_budget().total(),
        "core budget leaked permits across the fault"
    );
    assert_eq!(svc.stats().queries_in_flight, 0, "in-flight gauge leaked");
    let after = svc.session().execute(SQL).expect("post-fault query").table;
    assert_eq!(&after, expected, "post-fault answer diverged");
}

#[test]
fn panic_mid_slice_is_isolated() {
    let _g = gate();
    failpoints::reset();
    let expected = baseline(11, 1);
    let svc = service(11, 1);
    failpoints::config("engine.slice", "panic");
    let err = svc.session().execute(SQL).expect_err("injected panic");
    failpoints::reset();
    match err {
        ServiceError::Internal(msg) => {
            assert!(
                msg.contains("injected failpoint panic"),
                "payload lost: {msg}"
            )
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(svc.stats().panicked, 1);
    assert_recovered(&svc, &expected);
}

#[test]
fn panic_in_partition_worker_is_isolated() {
    let _g = gate();
    failpoints::reset();
    let expected = baseline(13, 4);
    let svc = service(13, 4);
    failpoints::config("partition.chunk", "panic");
    let result = svc.session().execute(SQL);
    failpoints::reset();
    // The scoped worker's panic joins its siblings, unwinds to the
    // slice driver, and is caught at the service boundary.
    match result {
        Err(ServiceError::Internal(_)) => {}
        Ok(_) => panic!("partitioned path not taken — worker failpoint never fired"),
        Err(other) => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(svc.stats().panicked, 1);
    assert_recovered(&svc, &expected);
}

#[test]
fn panic_under_budget_lock_recovers() {
    let _g = gate();
    failpoints::reset();
    let expected = baseline(17, 2);
    let svc = service(17, 2);
    failpoints::config("budget.acquire", "panic");
    let err = svc.session().execute(SQL).expect_err("injected panic");
    failpoints::reset();
    assert!(matches!(err, ServiceError::Internal(_)), "{err:?}");
    // The failpoint fired while the budget mutex was held: the mutex is
    // poisoned but no permits were taken, so recovery must be total.
    assert_recovered(&svc, &expected);
}

#[test]
fn repeated_faults_do_not_wedge_the_service() {
    let _g = gate();
    failpoints::reset();
    let expected = baseline(19, 2);
    let svc = service(19, 2);
    // Panic on every third query, five times over.
    for round in 0..15 {
        if round % 3 == 0 {
            failpoints::config("engine.slice", "panic");
            let err = svc.session().execute(SQL).expect_err("injected panic");
            assert!(matches!(err, ServiceError::Internal(_)), "{err:?}");
        } else {
            let r = svc.session().execute(SQL).expect("healthy round").table;
            assert_eq!(r, expected, "round {round} diverged");
        }
    }
    failpoints::reset();
    assert_eq!(svc.stats().panicked, 5);
    assert_recovered(&svc, &expected);
}

#[test]
fn transient_persist_write_errors_are_retried() {
    let _g = gate();
    failpoints::reset();
    let dir = std::env::temp_dir().join(format!("skinner-faults-retry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.bin");
    let svc = service(23, 1);
    svc.session().execute(SQL).expect("populate cache");

    // Two transient failures, third attempt lands.
    failpoints::config("persist.write", "err*2");
    let n = svc
        .save_learning_cache_with_retry(&path, 3, Duration::from_millis(1))
        .expect("retry should outlast two transient errors");
    failpoints::reset();
    assert!(n >= 1);

    // Persistent failure exhausts the attempts and surfaces cleanly…
    failpoints::config("persist.write", "err*10");
    let err = svc
        .save_learning_cache_with_retry(&path, 3, Duration::from_millis(1))
        .expect_err("all attempts failed");
    failpoints::reset();
    assert!(err.to_string().contains("injected"), "{err}");
    // …and the service keeps serving.
    svc.session().execute(SQL).expect("service still up");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failed_rename_leaves_previous_file_intact() {
    let _g = gate();
    failpoints::reset();
    let dir = std::env::temp_dir().join(format!("skinner-faults-rename-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cache.bin");
    let svc = service(29, 1);
    svc.session().execute(SQL).expect("populate cache");
    let n = svc.save_learning_cache(&path).expect("clean save");
    let before = std::fs::read(&path).unwrap();

    // The atomic-write protocol fails *before* the rename: the
    // published file must be byte-identical to the previous save.
    failpoints::config("persist.rename", "err");
    svc.session().execute(SQL).expect("more learning");
    let err = svc
        .save_learning_cache(&path)
        .expect_err("injected rename error");
    failpoints::reset();
    assert!(err.to_string().contains("injected"), "{err}");
    assert_eq!(std::fs::read(&path).unwrap(), before, "torn publish");

    // And the surviving file still loads completely.
    let fresh = service(29, 1);
    let report = fresh.load_learning_cache(&path).expect("load");
    assert_eq!(report.loaded, n);
    assert_eq!(report.corrupt, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn read_error_fails_load_but_not_the_service() {
    let _g = gate();
    failpoints::reset();
    let svc = service(31, 1);
    failpoints::config("persist.read", "err");
    let err = svc
        .load_learning_cache(std::path::Path::new("/nonexistent/skinner.bin"))
        .expect_err("injected read error");
    failpoints::reset();
    assert!(err.to_string().contains("injected"), "{err}");
    svc.session().execute(SQL).expect("service still up");
}
