//! The query service: SQL in, results out, across many concurrent
//! sessions, with cross-query learning reuse.
//!
//! One [`QueryService`] owns the catalog, the UDF registry, the shared
//! [`CoreBudget`] and the template-keyed [`LearningCache`]. Sessions
//! ([`Session`]) are cheap clonable handles; any number of threads may
//! execute queries concurrently — admission is FIFO-fair over the core
//! budget, so `SkinnerCConfig.threads` bounds the *total* worker count
//! across concurrent queries and within-query join partitioning alike.

use crate::budget::{AdmissionError, CoreBudget};
use crate::cache::{CacheStats, LearningCache, TableDeps, DEFAULT_CACHE_CAPACITY};
use skinner_core::{postprocess, project_tuple, QueryResult, RunStats};
use skinner_engine::{
    KernelCache, KernelCacheStats, LearnedState, RunOptions, SkinnerC, SkinnerCConfig,
    SkinnerOutcome, StopReason, WorkerPool, DEFAULT_KERNEL_CACHE_CAPACITY,
};
use skinner_knowledge::{observe, KnowledgeConfig, KnowledgeStats, KnowledgeStore};
use skinner_query::{parse, Query, QueryError, TemplateKey, UdfRegistry};
use skinner_storage::table::TableRef;
use skinner_storage::{Catalog, FxHashMap, Table, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Base Skinner-C configuration. `engine.threads` is the service's
    /// *total* core budget: an idle service hands it all to one query
    /// (intra-query partitioning); under load it is split across
    /// concurrent queries (see [`CoreBudget`]).
    pub engine: SkinnerCConfig,
    /// Default per-query timeout (covers queueing and execution);
    /// `None` = unlimited. Individual executions may override it.
    pub default_timeout: Option<Duration>,
    /// Enable the cross-query learning cache (on by default; disable to
    /// reproduce the paper's from-scratch-per-query behaviour).
    pub learning_cache: bool,
    /// Maximum number of cached templates (LRU eviction past this;
    /// default [`DEFAULT_CACHE_CAPACITY`]).
    pub cache_capacity: usize,
    /// Maximum total approximate bytes held by the learning cache
    /// (`None` = unbounded). Exceeding it evicts least-recently-used
    /// templates, so a byte budget can be enforced independently of the
    /// entry count.
    pub cache_max_bytes: Option<usize>,
    /// Default per-query cap on result-materialization bytes (the
    /// engine's flat tuple arena + dedup table), `None` = unbounded.
    /// Exceeding it degrades gracefully: a LIMIT-pushdown query keeps
    /// its streamed prefix (flagged via `RunStats::stop`), any other
    /// query fails with [`ServiceError::MemoryExceeded`] instead of
    /// growing until the OS kills the process. Individual executions
    /// may override it ([`ExecuteOptions::max_result_bytes`]).
    pub max_result_bytes: Option<usize>,
    /// Seed cold UCT trees with cross-query knowledge priors (on by
    /// default; requires `learning_cache`). Priors only shift the
    /// learner's exploration order — results are identical either way —
    /// so disabling this reproduces fully cold first runs per template.
    pub knowledge_priors: bool,
    /// Maximum number of memoized kernel-shape resolutions (LRU
    /// eviction past this; default
    /// `skinner_engine::DEFAULT_KERNEL_CACHE_CAPACITY`). Entries are
    /// tiny and data-independent, but a process-lifetime server must
    /// stay bounded under adversarial shape diversity.
    pub kernel_cache_capacity: usize,
    /// Maximum total approximate bytes held by the kernel-shape cache
    /// (`None` = bounded by `kernel_cache_capacity` alone), mirroring
    /// [`ServiceConfig::cache_max_bytes`] for the learning cache.
    pub kernel_cache_max_bytes: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: SkinnerCConfig::default(),
            default_timeout: None,
            learning_cache: true,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            cache_max_bytes: None,
            max_result_bytes: None,
            knowledge_priors: true,
            kernel_cache_capacity: DEFAULT_KERNEL_CACHE_CAPACITY,
            kernel_cache_max_bytes: None,
        }
    }
}

/// Errors surfaced to service clients.
#[derive(Debug)]
pub enum ServiceError {
    /// SQL failed to parse or validate.
    Parse(QueryError),
    /// The execution's [`CancelToken`] was raised.
    Cancelled,
    /// The per-query timeout elapsed (queueing included).
    TimedOut,
    /// The result-materialization byte budget was exceeded and the
    /// query shape offers no usable prefix (see
    /// [`ServiceConfig::max_result_bytes`]).
    MemoryExceeded,
    /// The execution panicked. The panic was caught at the service
    /// boundary — budget grants, locks and counters were released/
    /// recovered — and the service keeps serving; the payload message
    /// is preserved for diagnostics.
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Parse(e) => write!(f, "{e}"),
            ServiceError::Cancelled => write!(f, "query cancelled"),
            ServiceError::TimedOut => write!(f, "query timed out"),
            ServiceError::MemoryExceeded => write!(f, "result memory budget exceeded"),
            ServiceError::Internal(msg) => write!(f, "internal execution error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<QueryError> for ServiceError {
    fn from(e: QueryError) -> ServiceError {
        ServiceError::Parse(e)
    }
}

/// Cooperative cancellation handle for one in-flight execution. Clone
/// it, hand one clone to the execution and keep the other; `cancel`
/// stops the engine at the next slice boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Fresh, un-raised token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raise the token; the running query stops at its next slice.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    fn flag(&self) -> &AtomicBool {
        &self.0
    }
}

/// Per-execution options.
#[derive(Debug, Clone, Default)]
pub struct ExecuteOptions {
    /// Override the service default timeout.
    pub timeout: Option<Duration>,
    /// Cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Override the service default result-byte budget
    /// ([`ServiceConfig::max_result_bytes`]) for this execution.
    pub max_result_bytes: Option<usize>,
    /// Skip knowledge-prior seeding for this execution even when
    /// [`ServiceConfig::knowledge_priors`] is on (results are identical
    /// either way; this forces the fully cold exploration path).
    pub disable_priors: bool,
}

/// Monotonic service-wide counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Successfully completed queries.
    pub queries: u64,
    /// Executions warm-started from the learning cache.
    pub warm_starts: u64,
    /// Executions with no exact-template entry whose cold tree was
    /// seeded with cross-query knowledge priors instead (mutually
    /// exclusive with `warm_starts` per execution).
    pub prior_seeded: u64,
    /// Executions whose join phase stopped early via LIMIT pushdown.
    pub limit_pushdowns: u64,
    /// Executions cancelled via a [`CancelToken`].
    pub cancelled: u64,
    /// Executions that hit their timeout.
    pub timed_out: u64,
    /// Executions whose result-byte budget tripped (both the clean
    /// failures and the LIMIT prefixes that were kept).
    pub memory_exceeded: u64,
    /// Query executions that panicked and were isolated at the service
    /// boundary ([`ServiceError::Internal`]).
    pub panicked: u64,
    /// Queries currently executing (gauge, not monotonic — maintained
    /// by an RAII guard, so it stays accurate across panics).
    pub queries_in_flight: u64,
    /// Client connections currently open across every serving front end
    /// (gauge, RAII-maintained via
    /// [`QueryService::connection_opened`]).
    pub connections_open: u64,
    /// Connections refused by admission (the front end's connection cap
    /// was reached and the client was answered with a Busy frame, then
    /// closed — counted via [`QueryService::connection_rejected`]).
    pub connections_rejected: u64,
    /// Learning-cache counters.
    pub cache: CacheStats,
    /// Knowledge-store counters (cross-query priors, see
    /// `skinner-knowledge`).
    pub knowledge: KnowledgeStats,
    /// Kernel-shape cache counters (codegen tier, see `skinner-codegen`).
    pub kernels: KernelCacheStats,
    /// Join orders executed on a compiled kernel, including long orders
    /// whose 6-table prefix compiled and drove the plan-bound suffix.
    pub codegen_orders: u64,
    /// Join orders that fell back to the plan-bound tier with codegen
    /// enabled. Only the reserved escape-hatch jump shape falls back,
    /// so this is expected to stay 0.
    pub fallback_orders: u64,
    /// Time slices executed on a compiled kernel (split prefixes
    /// included).
    pub codegen_slices: u64,
}

#[derive(Debug)]
struct CatalogState {
    catalog: Catalog,
    version: u64,
    /// Per-table versions: bumped for exactly the table a mutation
    /// replaces, so learning-cache entries over other tables survive.
    table_versions: FxHashMap<String, u64>,
}

impl CatalogState {
    /// The `(table, version)` dependency list of `query` (FROM order;
    /// never-mutated tables are version 0).
    fn deps_of(&self, query: &Query) -> TableDeps {
        query
            .tables
            .iter()
            .map(|b| {
                let name = b.table.name();
                (
                    name.to_string(),
                    self.table_versions.get(name).copied().unwrap_or(0),
                )
            })
            .collect()
    }
}

/// Root visit share above which a cached template's learning counts as
/// converged for admission sizing (see [`learning_converged`]). UCB1
/// keeps a trickle of exploration forever, so even a fully settled
/// learner rarely exceeds ~0.9; 0.75 means three quarters of all root
/// visits went to a single first table.
const CONVERGED_ROOT_SHARE: f64 = 0.75;

/// Minimum learned rounds before the root share is trusted: a tree
/// with a handful of visits can show a lopsided share by noise alone.
const CONVERGED_MIN_ROUNDS: u64 = 64;

/// Has this cached learning actually converged on a join order?
/// Admission uses this to decide whether a warm template forfeits pool
/// fan-out (it will finish in a few slices anyway) or keeps it (warm
/// start helps, but substantial exploration/work remains).
fn learning_converged(learning: &LearnedState) -> bool {
    learning.snapshot.rounds() >= CONVERGED_MIN_ROUNDS
        && learning
            .snapshot
            .root_best_share()
            .is_some_and(|share| share >= CONVERGED_ROOT_SHARE)
}

/// The concurrent query service (see module docs).
#[derive(Debug)]
pub struct QueryService {
    config: ServiceConfig,
    catalog: RwLock<CatalogState>,
    udfs: UdfRegistry,
    cache: LearningCache,
    /// Cross-query knowledge (coarse fingerprints → selectivity/edge
    /// statistics), seeding cold trees when the exact-template cache
    /// misses. Mutex, not RwLock: both seeding and recording mutate.
    knowledge: Mutex<KnowledgeStore>,
    kernels: KernelCache,
    budget: CoreBudget,
    /// The persistent morsel pool shared by every query this service
    /// runs: sized to the core budget, so `CoreBudget` admission (how
    /// many morsels a query may fan out per slice) and pool capacity
    /// (how many run at once) describe the same resource.
    pool: Arc<WorkerPool>,
    queries: AtomicU64,
    warm_starts: AtomicU64,
    prior_seeded: AtomicU64,
    codegen_orders: AtomicU64,
    fallback_orders: AtomicU64,
    codegen_slices: AtomicU64,
    limit_pushdowns: AtomicU64,
    cancelled: AtomicU64,
    timed_out: AtomicU64,
    memory_exceeded: AtomicU64,
    panicked: AtomicU64,
    in_flight: AtomicU64,
    connections_open: AtomicU64,
    connections_rejected: AtomicU64,
    next_session: AtomicU64,
}

/// RAII in-flight gauge: decrements on drop, so the count stays right
/// even when the guarded execution panics (the unwind drops it before
/// `catch_unwind` converts the panic to [`ServiceError::Internal`]).
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    fn enter(counter: &'a AtomicU64) -> InFlightGuard<'a> {
        counter.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(counter)
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII handle for one open client connection: created by
/// [`QueryService::connection_opened`], decrements the
/// `connections_open` gauge on drop — so the gauge stays accurate no
/// matter how the connection handler exits (clean goodbye, protocol
/// error, I/O failure, panic unwind).
#[derive(Debug)]
pub struct ConnectionGuard {
    service: Arc<QueryService>,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.service
            .connections_open
            .fetch_sub(1, Ordering::Relaxed);
    }
}

impl QueryService {
    /// Service over `catalog` with `udfs` resolving UDF calls.
    pub fn new(catalog: Catalog, udfs: UdfRegistry, config: ServiceConfig) -> Arc<QueryService> {
        let budget = CoreBudget::new(config.engine.threads);
        let pool = WorkerPool::new(budget.total());
        Arc::new(QueryService {
            config,
            catalog: RwLock::new(CatalogState {
                catalog,
                version: 0,
                table_versions: FxHashMap::default(),
            }),
            udfs,
            cache: LearningCache::with_limits(config.cache_capacity, config.cache_max_bytes),
            knowledge: Mutex::new(KnowledgeStore::new(KnowledgeConfig::default())),
            kernels: KernelCache::with_limits(
                config.kernel_cache_capacity,
                config.kernel_cache_max_bytes,
            ),
            budget,
            pool,
            queries: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            prior_seeded: AtomicU64::new(0),
            codegen_orders: AtomicU64::new(0),
            fallback_orders: AtomicU64::new(0),
            codegen_slices: AtomicU64::new(0),
            limit_pushdowns: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            memory_exceeded: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_rejected: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
        })
    }

    /// Read-lock the catalog state, recovering from poisoning. Catalog
    /// reads never observe a half-applied mutation even after a poison:
    /// [`register_table`](Self::register_table) is the only writer and
    /// its updates are individually consistent, so recovery is the
    /// availability-preserving choice (a single caught query panic must
    /// not turn every later catalog access into a panic).
    fn catalog_read(&self) -> RwLockReadGuard<'_, CatalogState> {
        self.catalog.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn catalog_write(&self) -> RwLockWriteGuard<'_, CatalogState> {
        self.catalog.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Run `f` with panic isolation: a panic anywhere in the per-query
    /// path unwinds cleanly — the budget grant (RAII), the in-flight
    /// gauge (RAII) and any poisoned locks (recovered on next access)
    /// are all released — and surfaces as [`ServiceError::Internal`]
    /// while the service keeps serving.
    fn isolated<T>(&self, f: impl FnOnce() -> Result<T, ServiceError>) -> Result<T, ServiceError> {
        let _in_flight = InFlightGuard::enter(&self.in_flight);
        // `AssertUnwindSafe`: the closure touches `&self` state guarded
        // by locks; the lock helpers recover poisoning and every guarded
        // mutation is transactional (see `catalog_read`), so observing
        // post-panic state is safe.
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => {
                self.panicked.fetch_add(1, Ordering::Relaxed);
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "query execution panicked".to_string()
                };
                Err(ServiceError::Internal(msg))
            }
        }
    }

    /// Service with default configuration and no UDFs.
    pub fn over(catalog: Catalog) -> Arc<QueryService> {
        QueryService::new(catalog, UdfRegistry::new(), ServiceConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Open a session (a cheap handle; any number may run concurrently).
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            service: self.clone(),
            id: self.next_session.fetch_add(1, Ordering::Relaxed),
            queries: 0,
        }
    }

    /// A point-in-time copy of the catalog (table data is shared, not
    /// copied — tables are `Arc`s).
    pub fn catalog(&self) -> Catalog {
        self.catalog_read().catalog.clone()
    }

    /// Current catalog version (bumped by every mutation).
    pub fn catalog_version(&self) -> u64 {
        self.catalog_read().version
    }

    /// Register (or replace) a table. Bumps the global catalog version
    /// *and* the table's own version, which invalidates exactly the
    /// cached learning entries touching that table — learned join orders
    /// are data-dependent and must not survive data changes (stale
    /// entries are purged eagerly, not just lazily on lookup), but
    /// templates over unrelated tables keep their learning. In-flight
    /// queries keep executing against the table `Arc`s they resolved at
    /// parse time (snapshot semantics). The kernel-shape cache is
    /// untouched: shapes are data-independent.
    pub fn register_table(&self, table: Table) {
        let name = table.name().to_string();
        {
            let mut st = self.catalog_write();
            st.catalog.register(table);
            st.version += 1;
            let version = st.version;
            st.table_versions.insert(name.clone(), version);
        }
        self.cache.invalidate_table(&name);
        // The knowledge store is versioned the same way: everything
        // learned from the replaced table's data is dropped eagerly,
        // knowledge about unrelated tables survives.
        self.knowledge().invalidate_table(&name);
    }

    /// Service-wide counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            queries: self.queries.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            prior_seeded: self.prior_seeded.load(Ordering::Relaxed),
            limit_pushdowns: self.limit_pushdowns.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            memory_exceeded: self.memory_exceeded.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            queries_in_flight: self.in_flight.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            knowledge: self.knowledge().stats(),
            kernels: self.kernels.stats(),
            codegen_orders: self.codegen_orders.load(Ordering::Relaxed),
            fallback_orders: self.fallback_orders.load(Ordering::Relaxed),
            codegen_slices: self.codegen_slices.load(Ordering::Relaxed),
        }
    }

    /// Record one accepted client connection; the gauge drops back when
    /// the returned guard does. Every serving front end (Unix repl, TCP
    /// binary protocol) calls this as its connection handler starts, so
    /// `\stats` and the wire Stats frame report one consistent number.
    pub fn connection_opened(self: &Arc<Self>) -> ConnectionGuard {
        self.connections_open.fetch_add(1, Ordering::Relaxed);
        ConnectionGuard {
            service: self.clone(),
        }
    }

    /// Count one connection refused by admission (connection cap hit;
    /// the client was told so with a typed Busy frame, not silently
    /// dropped).
    pub fn connection_rejected(&self) {
        self.connections_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The learning cache (introspection: entry count, bytes).
    pub fn learning_cache(&self) -> &LearningCache {
        &self.cache
    }

    /// Lock the knowledge store, recovering from poisoning (its
    /// mutations are individually consistent, so post-panic state is
    /// safe to keep serving — matching the catalog/cache policy).
    pub fn knowledge(&self) -> MutexGuard<'_, KnowledgeStore> {
        self.knowledge
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared core budget (introspection: total/available permits —
    /// fault tests assert no grant leaks across panics).
    pub fn core_budget(&self) -> &CoreBudget {
        &self.budget
    }

    /// The kernel-shape cache shared across every execution
    /// (introspection: memoized shapes, hit counters).
    pub fn kernel_cache(&self) -> &KernelCache {
        &self.kernels
    }

    /// The persistent morsel pool executing every partitioned slice
    /// (introspection: worker counts, spawn/replacement totals — the
    /// stress tests assert the pool recovers full strength after
    /// injected morsel panics).
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Parse `sql` against the current catalog, returning the query, the
    /// per-table versions it was bound at, and the execution start
    /// instant.
    fn parse_sql(&self, sql: &str) -> Result<(Query, TableDeps, Instant), ServiceError> {
        let start = Instant::now();
        // Parse under a read lock; the query holds `Arc`s to its tables,
        // so execution is snapshot-consistent even if the catalog mutates
        // concurrently.
        let st = self.catalog_read();
        let query = parse(sql, &st.catalog, &self.udfs)?;
        let deps = st.deps_of(&query);
        Ok((query, deps, start))
    }

    /// Is every table of `query` the exact `Arc` currently registered?
    /// A pre-built query bound to since-replaced tables must not consume
    /// or produce learning-cache entries: it executes old data, and
    /// tagging its learned state with the current version would poison
    /// warm starts over the new data.
    fn query_is_current(&self, query: &Query) -> (bool, TableDeps) {
        let st = self.catalog_read();
        let current = query.tables.iter().all(|b| {
            st.catalog
                .get(b.table.name())
                .is_ok_and(|t| Arc::ptr_eq(&t, &b.table))
        });
        (current, st.deps_of(query))
    }

    fn execute_inner(&self, sql: &str, opts: &ExecuteOptions) -> Result<QueryResult, ServiceError> {
        self.isolated(|| {
            let (query, deps, start) = self.parse_sql(sql)?;
            self.execute_query(&query, &deps, opts, start, true)
        })
    }

    /// Are `deps` exactly the per-table versions currently registered
    /// (and every named table still present)? The persistence loader
    /// uses this to skip records whose tables changed — or vanished —
    /// between save and load.
    pub(crate) fn deps_are_current(&self, deps: &TableDeps) -> bool {
        let st = self.catalog_read();
        deps.iter().all(|(name, version)| {
            st.catalog.get(name).is_ok()
                && st.table_versions.get(name).copied().unwrap_or(0) == *version
        })
    }

    /// Single-table version of [`deps_are_current`](Self::deps_are_current)
    /// (the knowledge loader filters per entry dependency).
    pub(crate) fn table_is_current(&self, name: &str, version: u64) -> bool {
        let st = self.catalog_read();
        st.catalog.get(name).is_ok() && st.table_versions.get(name).copied().unwrap_or(0) == version
    }

    /// Run the join phase of `query` through admission, the learning
    /// cache (when `use_learning`), and the engine's per-run controls.
    /// Returns the raw outcome plus `RunStats` with everything except
    /// `postprocess`/`total` filled in (the caller finalizes those
    /// around its own materialization or streaming).
    fn run_query(
        &self,
        query: &Query,
        deps: &TableDeps,
        opts: &ExecuteOptions,
        start: Instant,
        use_learning: bool,
    ) -> Result<(SkinnerOutcome, RunStats), ServiceError> {
        let use_learning = use_learning && self.config.learning_cache;
        let key = use_learning.then(|| TemplateKey::of(query));
        let cached = key.as_ref().and_then(|key| self.cache.lookup(key, deps));

        // No exact-template entry: ask the knowledge store for coarse
        // cross-query priors (an exact snapshot always wins — the
        // engine ignores `arm_priors` when a `prior` is present).
        let priors = if cached.is_none()
            && use_learning
            && self.config.knowledge_priors
            && !opts.disable_priors
        {
            self.knowledge().seed(query, deps)
        } else {
            None
        };

        // Deadline covers queueing: a query stuck behind a long queue
        // fails fast rather than running past its budget — both the
        // admission wait and the engine honor it.
        let deadline = opts
            .timeout
            .or(self.config.default_timeout)
            .map(|t| start + t);
        let cancel = opts.cancel.as_ref().map(CancelToken::flag);

        // Admission: FIFO over the shared core budget, which doubles as
        // pool admission — the grant decides this query's morsel fan-out
        // on the shared worker pool and covers the join phase (post-
        // processing is single-threaded and runs off-budget). Adaptive
        // sizing: a warm template whose cached learning has *converged*
        // (root visit mass concentrated on one order) settles in a
        // handful of slices and gains little from fan-out, so it takes
        // one permit and leaves the pool's parallelism to cold queries.
        // Mere cache presence is not enough: a warm but unconverged
        // template (interrupted run, still-exploring learner, lots of
        // remaining work) keeps full fan-out — capping on presence
        // alone would strip every warm long-running multi-table join
        // of all parallelism for the life of the cache entry.
        let max_workers = match &cached {
            Some(c) if learning_converged(c) => 1,
            _ => usize::MAX,
        };
        let grant = match self.budget.acquire_limited(max_workers, deadline, cancel) {
            Ok(grant) => grant,
            Err(AdmissionError::Cancelled) => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Cancelled);
            }
            Err(AdmissionError::TimedOut) => {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::TimedOut);
            }
        };
        let mut engine_cfg = self.config.engine;
        engine_cfg.threads = grant.threads();

        let run_opts = RunOptions {
            prior: cached.as_ref().map(|c| &c.snapshot),
            arm_priors: priors.as_ref(),
            planned_orders: cached
                .as_ref()
                .map(|c| c.planned_orders.as_slice())
                .unwrap_or(&[]),
            cancel,
            deadline,
            target_rows: query.join_limit(),
            max_result_bytes: opts.max_result_bytes.or(self.config.max_result_bytes),
            capture_learning: use_learning,
            kernel_cache: Some(&self.kernels),
            pool: Some(self.pool.clone()),
        };
        let mut out = SkinnerC::new(engine_cfg).run_with(query, &run_opts);
        drop(grant);

        match out.stop {
            StopReason::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Cancelled);
            }
            StopReason::DeadlineExceeded => {
                self.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::TimedOut);
            }
            StopReason::RowTarget => {
                self.limit_pushdowns.fetch_add(1, Ordering::Relaxed);
            }
            StopReason::MemoryExceeded => {
                self.memory_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            StopReason::Completed => {}
        }

        let warm_start = out.metrics.warm_start_nodes > 0;
        if warm_start {
            self.warm_starts.fetch_add(1, Ordering::Relaxed);
        }
        let prior_seeded = out.metrics.prior_seeded_nodes > 0;
        if prior_seeded {
            self.prior_seeded.fetch_add(1, Ordering::Relaxed);
        }
        // Codegen-tier accounting, service-wide: which orders compiled
        // (or hit the reserved escape hatch) and how many slices the
        // compiled kernels carried. Surfaced via `\stats` and the wire
        // Stats frame.
        self.codegen_orders
            .fetch_add(out.metrics.codegen_orders as u64, Ordering::Relaxed);
        self.fallback_orders
            .fetch_add(out.metrics.fallback_orders as u64, Ordering::Relaxed);
        self.codegen_slices
            .fetch_add(out.metrics.codegen_slices, Ordering::Relaxed);
        // The learning from an interrupted run is still valid (the tree
        // state is sound at every slice boundary), so even a
        // memory-exceeded run warms its template — a retry with a bigger
        // budget converges faster.
        if let (Some(key), Some(learning)) = (key, out.learning.take()) {
            self.cache.store(key, deps.clone(), learning);
        }
        // Feed the knowledge store: selectivity and edge-reward
        // observations generalize across templates, so learned runs
        // contribute (interrupted ones included — per-slice edge
        // rewards are valid at any boundary). Warm-started runs are
        // excluded: they replay a converged tree, so virtually every
        // slice executes one order and the recorded edge shares collapse
        // to 0/1 — zero-exploration evidence that drowns out the
        // balanced shares cold runs contribute and flips rankings on
        // templates the store has never seen.
        if use_learning && self.config.knowledge_priors && !warm_start {
            let obs = observe(query, deps, &out.metrics);
            self.knowledge().record(&obs);
        }

        // Graceful degradation: a LIMIT-pushdown query keeps the
        // distinct prefix it streamed (flagged via `stop`); any other
        // shape needs the complete join result, so a budget trip is a
        // clean failure.
        if out.stop == StopReason::MemoryExceeded && query.join_limit().is_none() {
            return Err(ServiceError::MemoryExceeded);
        }

        let stats = RunStats {
            join_phase: out.metrics.preprocess_time + out.metrics.join_time,
            result_count: out.result_count,
            slices: out.metrics.slices,
            final_order: Some(out.final_order.clone()),
            stop: Some(out.stop),
            cache_hit: cached.is_some(),
            warm_start,
            prior_seeded,
            metrics: Some(out.metrics.clone()),
            ..Default::default()
        };
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok((out, stats))
    }

    fn execute_query(
        &self,
        query: &Query,
        deps: &TableDeps,
        opts: &ExecuteOptions,
        start: Instant,
        use_learning: bool,
    ) -> Result<QueryResult, ServiceError> {
        let (out, mut stats) = self.run_query(query, deps, opts, start, use_learning)?;
        let post_start = Instant::now();
        let stride = out.num_tables.max(1);
        let table = postprocess(query, &out.tuples, (out.tuples.len() / stride) as u64);
        stats.postprocess = post_start.elapsed();
        stats.total = start.elapsed();
        Ok(QueryResult { table, stats })
    }
}

/// One client session: a handle for submitting SQL to the service.
#[derive(Debug)]
pub struct Session {
    service: Arc<QueryService>,
    id: u64,
    queries: u64,
}

impl Session {
    /// This session's id (stable for its lifetime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Queries this session has submitted.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The owning service.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Execute `sql` with default options, blocking until admitted and
    /// complete.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, ServiceError> {
        self.execute_with(sql, &ExecuteOptions::default())
    }

    /// Execute `sql` with a per-query timeout and/or cancel token.
    pub fn execute_with(
        &mut self,
        sql: &str,
        opts: &ExecuteOptions,
    ) -> Result<QueryResult, ServiceError> {
        self.queries += 1;
        self.service.execute_inner(sql, opts)
    }

    /// Execute a pre-built [`Query`] (bypassing the SQL parser — the
    /// entry point for programmatic workloads). Admission, LIMIT
    /// pushdown and the template cache behave exactly as for SQL text —
    /// *unless* the query's tables are no longer the ones currently
    /// registered (it was built before a catalog update): then it
    /// executes against its own (old) table snapshots with the learning
    /// cache bypassed, so stale data can neither consume nor produce
    /// cache entries.
    pub fn execute_query(&mut self, query: &Query) -> Result<QueryResult, ServiceError> {
        self.execute_query_with(query, &ExecuteOptions::default())
    }

    /// [`execute_query`](Session::execute_query) with per-query options.
    pub fn execute_query_with(
        &mut self,
        query: &Query,
        opts: &ExecuteOptions,
    ) -> Result<QueryResult, ServiceError> {
        self.queries += 1;
        let service = &self.service;
        service.isolated(|| {
            let (current, deps) = service.query_is_current(query);
            service.execute_query(query, &deps, opts, Instant::now(), current)
        })
    }

    /// Execute `sql`, delivering result rows through `on_row` one at a
    /// time; `on_row` returning `false` stops delivery. For queries
    /// whose join tuples map 1:1 to output rows (no aggregates, GROUP
    /// BY, ORDER BY or DISTINCT) rows are projected lazily from the
    /// join result — an early `false` skips the projection and
    /// materialization of every remaining row, and a SQL `LIMIT`
    /// additionally bounds the join work itself (LIMIT pushdown).
    /// Other query shapes require their full post-processing pass
    /// first and stream the finished rows. Returns the run statistics.
    pub fn execute_streaming(
        &mut self,
        sql: &str,
        opts: &ExecuteOptions,
        on_row: impl FnMut(&[Value]) -> bool,
    ) -> Result<RunStats, ServiceError> {
        self.execute_streaming_with_schema(sql, opts, |_cols| {}, on_row)
    }

    /// [`execute_streaming`](Session::execute_streaming), but `on_schema`
    /// receives the output column names (the SELECT list) after the
    /// query parses and before the first row is delivered — what a wire
    /// protocol needs to frame a result header ahead of streamed rows.
    /// `on_schema` is *not* called when parsing fails (the error carries
    /// the diagnosis) but *is* called even when zero rows follow.
    pub fn execute_streaming_with_schema(
        &mut self,
        sql: &str,
        opts: &ExecuteOptions,
        on_schema: impl FnOnce(&[String]),
        mut on_row: impl FnMut(&[Value]) -> bool,
    ) -> Result<RunStats, ServiceError> {
        self.queries += 1;
        let service = &self.service;
        service.isolated(move || {
            let (query, deps, start) = service.parse_sql(sql)?;
            let columns: Vec<String> = query.select.iter().map(|s| s.name().to_string()).collect();
            on_schema(&columns);
            // 1:1 shape ⇔ the LIMIT-pushdown eligibility conditions
            // (with or without an actual LIMIT).
            let streamable = !query.has_aggregates()
                && query.group_by.is_empty()
                && query.order_by.is_empty()
                && !query.distinct;
            if !streamable {
                let result = service.execute_query(&query, &deps, opts, start, true)?;
                for row in &result.table.rows {
                    if !on_row(row) {
                        break;
                    }
                }
                return Ok(result.stats);
            }
            let (out, mut stats) = service.run_query(&query, &deps, opts, start, true)?;
            let post_start = Instant::now();
            let tables: Vec<TableRef> = query.tables.iter().map(|b| b.table.clone()).collect();
            let m = out.num_tables.max(1);
            let limit = query.limit.unwrap_or(usize::MAX);
            for tup in out.tuples.chunks_exact(m).take(limit) {
                let row = project_tuple(&query, tup, &tables);
                if !on_row(&row) {
                    break;
                }
            }
            stats.postprocess = post_start.elapsed();
            stats.total = start.elapsed();
            Ok(stats)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{Column, ColumnDef, Schema, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let mk = |name: &str, keys: Vec<i64>| {
            Table::new(
                name,
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(keys.clone()),
                    Column::from_ints((0..keys.len() as i64).collect()),
                ],
            )
            .unwrap()
        };
        cat.register(mk("a", (0..64).map(|i| i % 8).collect()));
        cat.register(mk("b", (0..32).map(|i| i % 8).collect()));
        cat
    }

    #[test]
    fn execute_parses_and_answers() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let r = s
            .execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k")
            .expect("query");
        assert_eq!(r.table.rows[0][0], Value::Int(64 * 4));
        assert_eq!(svc.stats().queries, 1);
        assert_eq!(s.queries(), 1);
    }

    #[test]
    fn warm_admission_requires_convergence() {
        use skinner_uct::{SnapshotNode, TreeSnapshot};
        // Depth-1 tree: root with two materialized children splitting
        // the root's visit mass as given.
        let snap = |visits: [u64; 2], rounds: u64| {
            TreeSnapshot::from_parts(
                vec![
                    SnapshotNode {
                        visits: visits.iter().sum(),
                        reward_sum: 0.0,
                        actions: vec![0usize, 1],
                        children: vec![1, 2],
                    },
                    SnapshotNode {
                        visits: visits[0],
                        reward_sum: 0.0,
                        actions: vec![],
                        children: vec![],
                    },
                    SnapshotNode {
                        visits: visits[1],
                        reward_sum: 0.0,
                        actions: vec![],
                        children: vec![],
                    },
                ],
                rounds,
            )
            .unwrap()
        };
        let learned = |snapshot| LearnedState {
            snapshot,
            best_order: vec![0, 1],
            planned_orders: vec![],
        };
        // Converged: many rounds, 90% of root visits on one child —
        // this warm template forfeits fan-out (1-permit grant).
        assert!(learning_converged(&learned(snap([90, 10], 100))));
        // Warm but still exploring: cache presence alone must NOT cap
        // the grant, or a long-running warm join loses all parallelism.
        assert!(!learning_converged(&learned(snap([60, 40], 100))));
        // Too few rounds to trust even a lopsided share.
        assert!(!learning_converged(&learned(snap([9, 1], 10))));
    }

    #[test]
    fn parse_errors_surface() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        assert!(matches!(
            s.execute("SELECT FROM nothing"),
            Err(ServiceError::Parse(_))
        ));
        assert_eq!(svc.stats().queries, 0);
    }

    #[test]
    fn repeated_template_hits_cache_and_warm_starts() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let sql = "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 60";
        let cold = s.execute(sql).expect("cold");
        assert!(!cold.stats.cache_hit);
        assert!(!cold.stats.warm_start);
        // Same template, different constant.
        let warm = s
            .execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 59")
            .expect("warm");
        assert!(warm.stats.cache_hit);
        assert!(warm.stats.warm_start);
        let st = svc.stats();
        assert_eq!(st.cache.hits, 1);
        assert_eq!(st.warm_starts, 1);
        assert_eq!(svc.learning_cache().len(), 1);
    }

    #[test]
    fn catalog_update_invalidates_cache() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let sql = "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k";
        s.execute(sql).expect("cold");
        let v0 = svc.catalog_version();
        // Replace "b" with different data.
        svc.register_table(
            Table::new(
                "b",
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(vec![0, 0, 1]),
                    Column::from_ints(vec![9, 9, 9]),
                ],
            )
            .unwrap(),
        );
        assert_eq!(svc.catalog_version(), v0 + 1);
        let fresh = s.execute(sql).expect("fresh");
        assert!(!fresh.stats.cache_hit, "stale entry must not be served");
        assert_eq!(fresh.table.rows[0][0], Value::Int(64 / 8 * 2 + 64 / 8));
        assert_eq!(svc.stats().cache.invalidated, 1);
    }

    #[test]
    fn unrelated_table_registration_keeps_cache() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let sql = "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k";
        s.execute(sql).expect("cold");
        assert_eq!(svc.learning_cache().len(), 1);
        // Register a brand-new table neither "a" nor "b": the cached
        // learning for a⋈b must survive and keep warm-starting.
        svc.register_table(
            Table::new(
                "c",
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![Column::from_ints(vec![1, 2, 3])],
            )
            .unwrap(),
        );
        assert_eq!(svc.learning_cache().len(), 1, "unrelated mutation flushed");
        let warm = s.execute(sql).expect("warm");
        assert!(warm.stats.cache_hit, "per-table invalidation too coarse");
        assert_eq!(svc.stats().cache.invalidated, 0);
    }

    #[test]
    fn knowledge_priors_seed_new_templates() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        // Train on one template: records a⋈b edge rewards + table
        // selectivities into the knowledge store.
        s.execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 60")
            .expect("train");
        assert!(svc.stats().knowledge.records > 0);
        assert!(!svc.knowledge().is_empty());

        // A *held-out* template (different predicate shape → cache
        // miss) over the same join edge is prior-seeded, and its answer
        // matches the prior-free run of the same SQL exactly.
        let sql = "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND b.v < 100";
        let seeded = s.execute(sql).expect("seeded");
        assert!(!seeded.stats.cache_hit);
        assert!(seeded.stats.prior_seeded, "held-out template must seed");
        assert!(!seeded.stats.warm_start);
        assert_eq!(svc.stats().prior_seeded, 1);

        // The exact template repeats: the snapshot wins over priors.
        let warm = s
            .execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND b.v < 99")
            .expect("warm");
        assert!(warm.stats.warm_start);
        assert!(!warm.stats.prior_seeded);
        assert_eq!(svc.stats().prior_seeded, 1, "warm start must not seed");
        assert_eq!(warm.table.rows[0][0], seeded.table.rows[0][0]);

        // Per-execution opt-out forces the fully cold path.
        let cold_svc = QueryService::over(catalog());
        let mut cs = cold_svc.session();
        cs.execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 60")
            .expect("train");
        let cold = cs
            .execute_with(
                sql,
                &ExecuteOptions {
                    disable_priors: true,
                    ..Default::default()
                },
            )
            .expect("cold");
        assert!(!cold.stats.prior_seeded);
        assert_eq!(cold.table.rows[0][0], seeded.table.rows[0][0]);
    }

    #[test]
    fn knowledge_priors_config_off_disables_seeding() {
        let svc = QueryService::new(
            catalog(),
            UdfRegistry::new(),
            ServiceConfig {
                knowledge_priors: false,
                ..Default::default()
            },
        );
        let mut s = svc.session();
        s.execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 60")
            .expect("first");
        assert!(svc.knowledge().is_empty(), "recording must be off too");
        let r = s
            .execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND b.v < 100")
            .expect("second");
        assert!(!r.stats.prior_seeded);
        assert_eq!(svc.stats().prior_seeded, 0);
    }

    #[test]
    fn register_table_invalidates_knowledge() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        s.execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 60")
            .expect("train");
        assert!(!svc.knowledge().is_empty());
        // Replacing `b` drops the a~b edge and b's selectivity entry;
        // a's selectivity entry survives.
        svc.register_table(
            Table::new(
                "b",
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![Column::from_ints(vec![0]), Column::from_ints(vec![0])],
            )
            .unwrap(),
        );
        let st = svc.stats().knowledge;
        assert!(st.invalidated > 0);
        let (tables, edges) = svc.knowledge().len();
        assert_eq!(edges, 0, "edge over replaced table must drop");
        assert_eq!(tables, 1, "unrelated table entry must survive");
    }

    #[test]
    fn knowledge_persists_across_services() {
        let dir = std::env::temp_dir().join("skinner_svc_knowledge_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("knowledge.bin");
        let trained = QueryService::over(catalog());
        let mut s = trained.session();
        s.execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 60")
            .expect("train");
        let n = trained.save_knowledge(&path).expect("save");
        assert!(n > 0);

        // A fresh service (same catalog → same table versions) restores
        // the knowledge and prior-seeds a held-out template first try.
        let restored = QueryService::over(catalog());
        let report = restored.load_knowledge(&path).expect("load");
        assert_eq!(report.loaded, n);
        assert_eq!(report.stale, 0);
        let mut s2 = restored.session();
        let r = s2
            .execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND b.v < 100")
            .expect("held-out");
        assert!(r.stats.prior_seeded, "restored knowledge must seed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kernel_cache_shared_across_executions() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let sql = "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k";
        s.execute(sql).expect("first");
        let misses = svc.stats().kernels.misses;
        assert!(misses > 0, "shapes must be analyzed once");
        assert!(!svc.kernel_cache().is_empty());
        // Same template again (and even a different constant): the
        // shapes resolve from the cache.
        s.execute("SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k AND a.v < 50")
            .expect("second");
        let st = svc.stats().kernels;
        assert!(st.hits > 0, "repeated shapes must hit");
        // The codegen tier actually ran: orders compiled, nothing fell
        // back to the plan-bound tier.
        let st = svc.stats();
        assert!(st.codegen_orders > 0, "orders must compile");
        assert_eq!(st.fallback_orders, 0, "no order may fall back");
        assert!(st.codegen_slices > 0, "slices must run compiled");
    }

    #[test]
    fn limit_pushdown_counted() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let r = s
            .execute("SELECT a.v FROM a, b WHERE a.k = b.k LIMIT 3")
            .expect("limited");
        assert_eq!(r.table.num_rows(), 3);
        assert_eq!(r.stats.stop, Some(StopReason::RowTarget));
        assert_eq!(svc.stats().limit_pushdowns, 1);
    }

    #[test]
    fn stale_prebuilt_query_bypasses_learning_cache() {
        use skinner_query::{AggFunc, QueryBuilder};
        let svc = QueryService::over(catalog());
        // Build a Query bound to the *current* table Arcs.
        let snapshot = svc.catalog();
        let mut qb = QueryBuilder::new(&snapshot);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_agg(AggFunc::Count, None, "n");
        let query = qb.build().unwrap();

        // Replace "b" AFTER the query was built: the query now holds a
        // stale Arc.
        svc.register_table(
            Table::new(
                "b",
                Schema::new([
                    ColumnDef::new("k", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![Column::from_ints(vec![0]), Column::from_ints(vec![0])],
            )
            .unwrap(),
        );

        let mut s = svc.session();
        let r = s.execute_query(&query).expect("stale query");
        // Snapshot semantics: the answer reflects the OLD b (32 rows, 4
        // per key → 64 * 4 matches), not the replacement.
        assert_eq!(r.table.rows[0][0], Value::Int(64 * 4));
        // And stale data neither consumed nor produced cache entries.
        assert!(!r.stats.cache_hit);
        assert!(svc.learning_cache().is_empty(), "stale learning stored");

        // A query bound to the live catalog caches normally.
        let live = svc.catalog();
        let mut qb = QueryBuilder::new(&live);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_agg(AggFunc::Count, None, "n");
        let query = qb.build().unwrap();
        let r = s.execute_query(&query).expect("live query");
        assert_eq!(r.table.rows[0][0], Value::Int(8)); // a has 8 rows with k=0
        assert_eq!(svc.learning_cache().len(), 1);
        assert!(s.execute_query(&query).expect("repeat").stats.cache_hit);
    }

    #[test]
    fn cancel_token_stops_query() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let token = CancelToken::new();
        token.cancel(); // pre-raised: the engine stops before slice 1
        let err = s
            .execute_with(
                "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k",
                &ExecuteOptions {
                    cancel: Some(token.clone()),
                    ..Default::default()
                },
            )
            .expect_err("cancelled");
        assert!(matches!(err, ServiceError::Cancelled));
        assert!(token.is_cancelled());
        assert_eq!(svc.stats().cancelled, 1);
    }

    #[test]
    fn zero_timeout_times_out() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let err = s
            .execute_with(
                "SELECT COUNT(*) AS n FROM a, b WHERE a.k = b.k",
                &ExecuteOptions {
                    timeout: Some(Duration::ZERO),
                    ..Default::default()
                },
            )
            .expect_err("timed out");
        assert!(matches!(err, ServiceError::TimedOut));
        assert_eq!(svc.stats().timed_out, 1);
    }

    #[test]
    fn streaming_stops_on_false() {
        let svc = QueryService::over(catalog());
        let mut s = svc.session();
        let mut seen = 0;
        let stats = s
            .execute_streaming(
                "SELECT a.v FROM a, b WHERE a.k = b.k",
                &ExecuteOptions::default(),
                |_row| {
                    seen += 1;
                    seen < 5
                },
            )
            .expect("stream");
        assert_eq!(seen, 5);
        assert!(stats.result_count > 5);
    }
}
