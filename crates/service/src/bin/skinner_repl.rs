//! `skinner-repl` — the SkinnerDB shell and local query server.
//!
//! ```text
//! skinner-repl [--job SCALE] [--seed N] [--threads N] [--serve SOCKET]
//!              [--cache FILE] [--persist-secs N]
//! ```
//!
//! * Default mode: an interactive SQL shell (or a script runner when
//!   stdin is piped) over the synthetic JOB-like IMDB catalog.
//!   Commands: `\tables`, `\stats`, `\cache`, `\quit`, `\shutdown`.
//! * `--serve SOCKET`: bind a Unix domain socket and speak the line
//!   protocol (one SQL statement per line; responses terminated by a
//!   `;; ok N rows` / `;; err MESSAGE` line) — the script-facing mode.
//! * `--threads N`: the service's total core budget, shared between
//!   concurrent connections and intra-query join partitioning.
//! * `--cache FILE`: crash-safe learning-cache persistence — loaded at
//!   startup (warm start), flushed every `--persist-secs N` (default
//!   30) in serve mode and at exit in both modes, so learned join
//!   orders survive restarts.
//!
//! ```sh
//! echo 'SELECT COUNT(*) AS n FROM title t' | skinner-repl
//! skinner-repl --serve /tmp/skinner.sock &
//! printf 'SELECT COUNT(*) AS n FROM title t\n' | nc -U /tmp/skinner.sock
//! ```

use skinner_service::repl;
use std::io::BufReader;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "skinner-repl [--job SCALE] [--seed N] [--threads N] [--serve SOCKET]\n\
             \x20            [--cache FILE] [--persist-secs N]\n\
             Interactive SQL shell / line-protocol server over a synthetic IMDB catalog.\n\
             Commands: \\tables \\stats \\cache \\quit \\shutdown"
        );
        return;
    }
    let scale: f64 = arg_value(&args, "--job")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let seed: u64 = arg_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|s| s.parse().ok())
        .or_else(|| {
            std::env::var("SKINNER_THREADS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or(1)
        .max(1);

    let cache = arg_value(&args, "--cache").map(std::path::PathBuf::from);
    let persist_secs: u64 = arg_value(&args, "--persist-secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(30)
        .max(1);

    let service = repl::demo_service(scale, seed, threads);

    if let Some(path) = arg_value(&args, "--serve") {
        eprintln!("skinner-repl serving line protocol on {path} (threads={threads})");
        let opts = repl::ServeOptions {
            cache_path: cache,
            persist_interval: std::time::Duration::from_secs(persist_secs),
            ..Default::default()
        };
        if let Err(e) = repl::serve_unix_with(service, std::path::Path::new(&path), opts) {
            eprintln!("serve error: {e}");
            std::process::exit(1);
        }
        return;
    }

    println!(
        "SkinnerDB SQL shell over a synthetic IMDB (scale={scale}, threads={threads}; \
         \\tables \\stats \\cache \\quit \\shutdown)"
    );
    if let Some(cache) = &cache {
        match service.load_learning_cache(cache) {
            Ok(report) => eprintln!(
                "learning cache warm start: {} loaded, {} corrupt, {} stale",
                report.loaded, report.corrupt, report.stale
            ),
            Err(e) => eprintln!("learning cache load failed: {e}"),
        }
        match service.load_knowledge(&skinner_service::knowledge_path(cache)) {
            Ok(report) => eprintln!(
                "knowledge warm start: {} loaded, {} corrupt, {} stale",
                report.loaded, report.corrupt, report.stale
            ),
            Err(e) => eprintln!("knowledge load failed: {e}"),
        }
    }
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    if let Err(e) = repl::run_shell(&service, BufReader::new(stdin.lock()), &mut stdout, true) {
        eprintln!("shell error: {e}");
        std::process::exit(1);
    }
    if let Some(cache) = &cache {
        match service.save_learning_cache_with_retry(cache, 3, std::time::Duration::from_millis(50))
        {
            Ok(n) => eprintln!("persisted {n} learning-cache entries"),
            Err(e) => eprintln!("learning cache save failed: {e}"),
        }
        match service.save_knowledge(&skinner_service::knowledge_path(cache)) {
            Ok(n) => eprintln!("persisted {n} knowledge entries"),
            Err(e) => eprintln!("knowledge save failed: {e}"),
        }
    }
}
