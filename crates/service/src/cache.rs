//! The cross-query learning cache: template key → learned join-order
//! state.
//!
//! SkinnerDB learns a near-optimal join order *while a query runs*; this
//! cache keeps that knowledge alive *between* runs. Entries are keyed by
//! the normalized query template ([`TemplateKey`]: join graph +
//! predicate shape, constants stripped) and hold the terminal UCT tree
//! snapshot, the recommended order, and the set of orders that were
//! bound into plans — everything a later execution of the same template
//! needs to warm-start instead of re-exploring.
//!
//! # Invalidation
//!
//! Every entry records the *per-table* versions it was learned against
//! (the service bumps a table's version each time [`register_table`]
//! replaces it). A lookup whose current table versions differ from the
//! entry's drops it and reports a miss, and a catalog mutation eagerly
//! purges exactly the entries that touch the mutated table — templates
//! over unrelated tables keep their learning. This is deliberately
//! table-granular but version-coarse: learned order quality depends on
//! data distributions, so *any* change to a touched table discards the
//! entry. Stale priors are dropped, never trusted, which is what keeps
//! warm-started answers byte-for-byte equal to cold ones — the cache
//! only ever changes *how fast* the learner converges.
//!
//! # Bounds
//!
//! The cache is bounded two ways: a maximum entry count, and an optional
//! maximum total byte footprint ([`LearningCache::with_limits`]) computed
//! from the snapshots' own accounting. Exceeding either evicts
//! least-recently-used entries.
//!
//! [`register_table`]: crate::QueryService::register_table

use skinner_engine::LearnedState;
use skinner_query::TemplateKey;
use skinner_storage::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Versions of the tables a cached template touches, in FROM order:
/// `(table name, per-table catalog version)` pairs. Equality of the
/// whole vector is the entry's validity condition.
pub type TableDeps = Vec<(String, u64)>;

/// One cached template's learned state.
#[derive(Debug, Clone)]
struct Entry {
    learning: LearnedState,
    /// Per-table versions the state was learned against.
    deps: TableDeps,
    /// Approximate heap footprint, fixed at store time.
    bytes: usize,
    executions: u64,
    /// Logical clock of the last hit/store (LRU eviction order).
    last_used: u64,
}

/// Aggregate cache counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned live learned state.
    pub hits: u64,
    /// Lookups with no entry for the template.
    pub misses: u64,
    /// Lookups that *found* the template but had to drop it because its
    /// table versions were stale (also counted under `misses` and
    /// `invalidated`). A warm workload with a high `stale_hits` share is
    /// churning its tables out from under its templates — previously
    /// indistinguishable from never having seen the template at all.
    pub stale_hits: u64,
    /// Entries dropped because a touched table changed under them.
    pub invalidated: u64,
    /// Stores (first sighting or refresh after an execution).
    pub stores: u64,
    /// Entries evicted to stay within the capacity or byte bound.
    pub evicted: u64,
}

/// Default maximum number of cached templates (see
/// [`LearningCache::with_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<TemplateKey, Entry>,
    /// Sum of `Entry::bytes` over `map` (kept incrementally; the byte
    /// bound must not cost a full scan per store).
    total_bytes: usize,
}

/// Thread-safe template-keyed learning cache, bounded by entry count and
/// (optionally) by total bytes, with least-recently-used eviction. UCT
/// snapshots are small — kilobytes — but a service fed endlessly varying
/// generated query shapes must not grow without bound.
#[derive(Debug)]
pub struct LearningCache {
    inner: Mutex<Inner>,
    capacity: usize,
    max_bytes: Option<usize>,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_hits: AtomicU64,
    invalidated: AtomicU64,
    stores: AtomicU64,
    evicted: AtomicU64,
}

impl Default for LearningCache {
    fn default() -> Self {
        LearningCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl LearningCache {
    /// Empty cache with the default capacity and no byte bound.
    pub fn new() -> LearningCache {
        LearningCache::default()
    }

    /// Empty cache holding at most `capacity` templates (clamped ≥ 1).
    pub fn with_capacity(capacity: usize) -> LearningCache {
        LearningCache::with_limits(capacity, None)
    }

    /// Empty cache bounded by `capacity` entries *and* `max_bytes` total
    /// approximate heap bytes (when given). Storing past either bound
    /// evicts least-recently-used entries; an entry too large to ever
    /// fit is dropped immediately (the bound always holds).
    pub fn with_limits(capacity: usize, max_bytes: Option<usize>) -> LearningCache {
        LearningCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            max_bytes,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Lock the map, recovering from poisoning: every mutation keeps
    /// `total_bytes` in sync within one critical section, so state under
    /// a poisoned guard is still consistent — and a service that caught
    /// a query panic must keep its cache, not lose it to the poison bit.
    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Learned state for `key` if present and learned against exactly
    /// the table versions in `deps`; entries with mismatched versions
    /// are dropped (counted as both an invalidation and a miss).
    pub fn lookup(&self, key: &TemplateKey, deps: &[(String, u64)]) -> Option<LearnedState> {
        let tick = self.tick();
        let mut inner = self.lock_inner();
        match inner.map.get_mut(key) {
            Some(e) if e.deps == deps => {
                e.executions += 1;
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.learning.clone())
            }
            Some(_) => {
                let e = inner.map.remove(key).expect("entry present");
                inner.total_bytes -= e.bytes;
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store (or refresh) the learned state for `key`, learned against
    /// the table versions in `deps`, then evict least-recently-used
    /// entries until both the capacity and the byte bound hold. Later
    /// snapshots carry strictly more rounds, so a concurrent execution
    /// racing an older snapshot in is harmless — whichever lands last
    /// wins and both are valid priors.
    pub fn store(&self, key: TemplateKey, deps: TableDeps, learning: LearnedState) {
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.insert_entry(key, deps, learning);
    }

    /// [`store`](Self::store) without counting toward the `stores`
    /// statistic — used when re-seeding from a persisted snapshot, so
    /// restart warm-up does not masquerade as execution activity.
    pub fn seed(&self, key: TemplateKey, deps: TableDeps, learning: LearnedState) {
        self.insert_entry(key, deps, learning);
    }

    /// A point-in-time copy of every entry, least-recently-used first —
    /// re-seeding a fresh cache in this order reproduces the LRU
    /// ordering (the persistence layer round-trips exactly this).
    pub fn export(&self) -> Vec<(TemplateKey, TableDeps, LearnedState)> {
        let inner = self.lock_inner();
        let mut entries: Vec<(&TemplateKey, &Entry)> = inner.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        entries
            .into_iter()
            .map(|(k, e)| (k.clone(), e.deps.clone(), e.learning.clone()))
            .collect()
    }

    fn insert_entry(&self, key: TemplateKey, deps: TableDeps, learning: LearnedState) {
        let tick = self.tick();
        let bytes = entry_bytes(&key, &deps, &learning);
        let mut inner = self.lock_inner();
        let executions = inner.map.get(&key).map_or(0, |e| e.executions);
        if let Some(old) = inner.map.insert(
            key.clone(),
            Entry {
                learning,
                deps,
                bytes,
                executions,
                last_used: tick,
            },
        ) {
            inner.total_bytes -= old.bytes;
        }
        inner.total_bytes += bytes;

        let over = |inner: &Inner| {
            inner.map.len() > self.capacity || self.max_bytes.is_some_and(|b| inner.total_bytes > b)
        };
        // Evict coldest-first, sparing the fresh key until it is the
        // only entry left (then the byte bound wins and it goes too).
        while over(&inner) {
            let coldest = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key || inner.map.len() == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match coldest {
                Some(k) => {
                    let e = inner.map.remove(&k).expect("coldest present");
                    inner.total_bytes -= e.bytes;
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Eagerly drop every entry that touches `table` (called when the
    /// service registers or replaces that table, so stale learning does
    /// not linger until its template happens to be looked up again).
    /// Entries over unrelated tables are untouched.
    pub fn invalidate_table(&self, table: &str) {
        let mut inner = self.lock_inner();
        let before = inner.map.len();
        let mut freed = 0usize;
        inner.map.retain(|_, e| {
            let touches = e.deps.iter().any(|(t, _)| t == table);
            if touches {
                freed += e.bytes;
            }
            !touches
        });
        let dropped = before - inner.map.len();
        inner.total_bytes -= freed;
        self.invalidated
            .fetch_add(dropped as u64, Ordering::Relaxed);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock_inner().map.len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (e.g. after a bulk catalog reload).
    pub fn clear(&self) {
        let mut inner = self.lock_inner();
        inner.map.clear();
        inner.total_bytes = 0;
    }

    /// The maximum number of cached templates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The byte bound, if one is configured.
    pub fn max_bytes(&self) -> Option<usize> {
        self.max_bytes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Approximate heap bytes held by cached entries (maintained
    /// incrementally; this is the quantity the byte bound limits).
    pub fn approx_bytes(&self) -> usize {
        self.lock_inner().total_bytes
    }
}

/// Approximate heap footprint of one entry: the snapshot's own
/// accounting plus the planned orders, the key string, and the
/// dependency list.
fn entry_bytes(key: &TemplateKey, deps: &TableDeps, learning: &LearnedState) -> usize {
    let orders: usize = learning
        .planned_orders
        .iter()
        .map(|o| std::mem::size_of::<Vec<usize>>() + o.len() * std::mem::size_of::<usize>())
        .sum();
    let deps_bytes: usize = deps
        .iter()
        .map(|(t, _)| t.len() + std::mem::size_of::<(String, u64)>())
        .sum();
    learning.snapshot.approx_bytes()
        + orders
        + learning.best_order.len() * std::mem::size_of::<usize>()
        + key.canonical().len()
        + deps_bytes
        + std::mem::size_of::<Entry>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_uct::{SearchSpace, UctConfig, UctTree};

    struct TwoArms;
    impl SearchSpace for TwoArms {
        type Action = usize;
        fn actions(&self, path: &[usize]) -> Vec<usize> {
            if path.is_empty() {
                vec![0, 1]
            } else {
                vec![]
            }
        }
        fn depth(&self) -> usize {
            1
        }
    }

    fn learned() -> LearnedState {
        let mut tree = UctTree::new(TwoArms, UctConfig::default());
        for _ in 0..10 {
            let p = tree.choose();
            tree.update(&p, 0.5);
        }
        LearnedState {
            snapshot: tree.snapshot(),
            best_order: vec![0],
            planned_orders: vec![vec![0], vec![1]],
        }
    }

    fn deps(pairs: &[(&str, u64)]) -> TableDeps {
        pairs.iter().map(|(t, v)| (t.to_string(), *v)).collect()
    }

    #[test]
    fn hit_miss_and_version_invalidation() {
        let cache = LearningCache::new();
        let k = template_key_for_test("a");
        assert!(cache.lookup(&k, &deps(&[("a", 1)])).is_none());
        cache.store(k.clone(), deps(&[("a", 1)]), learned());
        assert!(cache.lookup(&k, &deps(&[("a", 1)])).is_some());
        // Table "a" changed: the entry is dropped, not served.
        assert!(cache.lookup(&k, &deps(&[("a", 2)])).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.approx_bytes(), 0);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(
            s.stale_hits, 1,
            "a stale-deps eviction-on-lookup must be distinguishable \
             from a plain miss"
        );
        assert_eq!(s.invalidated, 1);
        assert_eq!(s.stores, 1);
        // The first lookup never saw the template: a plain miss only.
        assert_eq!(s.misses - s.stale_hits, 1);
    }

    #[test]
    fn invalidate_table_is_per_table() {
        let cache = LearningCache::new();
        let (ka, kb) = (template_key_for_test("ta"), template_key_for_test("tb"));
        cache.store(ka.clone(), deps(&[("ta", 1), ("shared", 1)]), learned());
        cache.store(kb.clone(), deps(&[("tb", 1)]), learned());
        // Mutating an unrelated table touches nothing.
        cache.invalidate_table("elsewhere");
        assert_eq!(cache.len(), 2);
        // Mutating "shared" purges only the entry that touches it.
        cache.invalidate_table("shared");
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&kb, &deps(&[("tb", 1)])).is_some());
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn store_refresh_and_bytes() {
        let cache = LearningCache::new();
        let k = template_key_for_test("b");
        cache.store(k.clone(), deps(&[("b", 1)]), learned());
        let first = cache.approx_bytes();
        assert!(first > 0);
        // Refreshing replaces, not accumulates.
        cache.store(k.clone(), deps(&[("b", 1)]), learned());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.approx_bytes(), first);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.approx_bytes(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = LearningCache::with_capacity(2);
        let (a, b, c) = (
            template_key_for_test("ta"),
            template_key_for_test("tb"),
            template_key_for_test("tc"),
        );
        let d = deps(&[("t", 1)]);
        cache.store(a.clone(), d.clone(), learned());
        cache.store(b.clone(), d.clone(), learned());
        // Touch `a` so `b` is the LRU entry when `c` overflows the cache.
        assert!(cache.lookup(&a, &d).is_some());
        cache.store(c.clone(), d.clone(), learned());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a, &d).is_some(), "recently used evicted");
        assert!(cache.lookup(&b, &d).is_none(), "LRU entry survived");
        assert!(cache.lookup(&c, &d).is_some(), "fresh entry evicted");
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn byte_bound_holds_under_insert_pressure() {
        // Budget for roughly three entries; insert forty distinct
        // templates and check the bound after every store.
        let one = {
            let probe = LearningCache::new();
            probe.store(
                template_key_for_test("probe"),
                deps(&[("probe", 1)]),
                learned(),
            );
            probe.approx_bytes()
        };
        let budget = one * 3;
        let cache = LearningCache::with_limits(1024, Some(budget));
        for i in 0..40 {
            let name = format!("t{i}");
            cache.store(template_key_for_test(&name), deps(&[(&name, 1)]), learned());
            assert!(
                cache.approx_bytes() <= budget,
                "byte bound violated after store {i}: {} > {budget}",
                cache.approx_bytes()
            );
        }
        assert!(cache.len() >= 2, "bound should still admit small entries");
        assert!(cache.stats().evicted > 0, "pressure must evict");
        // The most recent entry survives (LRU evicts the cold tail).
        assert!(cache
            .lookup(&template_key_for_test("t39"), &deps(&[("t39", 1)]))
            .is_some());
    }

    #[test]
    fn oversized_entry_is_dropped_entirely() {
        let cache = LearningCache::with_limits(1024, Some(8));
        cache.store(template_key_for_test("big"), deps(&[("big", 1)]), learned());
        assert!(cache.is_empty(), "entry larger than the bound must go");
        assert!(cache.approx_bytes() <= 8);
    }

    /// Build a real TemplateKey from a one-table query over a throwaway
    /// catalog whose table name is `name` (distinct names ⇒ distinct keys).
    fn template_key_for_test(name: &str) -> TemplateKey {
        use skinner_query::QueryBuilder;
        use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                name,
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![Column::from_ints(vec![1])],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table(name).unwrap();
        qb.select_col(&format!("{name}.x")).unwrap();
        TemplateKey::of(&qb.build().unwrap())
    }
}
