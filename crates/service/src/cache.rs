//! The cross-query learning cache: template key → learned join-order
//! state.
//!
//! SkinnerDB learns a near-optimal join order *while a query runs*; this
//! cache keeps that knowledge alive *between* runs. Entries are keyed by
//! the normalized query template ([`TemplateKey`]: join graph +
//! predicate shape, constants stripped) and hold the terminal UCT tree
//! snapshot, the recommended order, and the set of orders that were
//! bound into plans — everything a later execution of the same template
//! needs to warm-start instead of re-exploring.
//!
//! # Invalidation
//!
//! Every entry records the catalog version it was learned against.
//! Catalog mutations (registering or replacing a table) bump the
//! service's version; a lookup that finds a stale entry drops it and
//! reports a miss. This is deliberately coarse — learned order quality
//! depends on data distributions, and any table change may shift them —
//! and it is what keeps warm-started answers byte-for-byte equal to
//! cold ones: the cache only ever changes *how fast* the learner
//! converges, never what the join produces, and stale priors are
//! discarded rather than trusted across data changes.

use skinner_engine::LearnedState;
use skinner_query::TemplateKey;
use skinner_storage::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One cached template's learned state.
#[derive(Debug, Clone)]
struct Entry {
    learning: LearnedState,
    catalog_version: u64,
    executions: u64,
    /// Logical clock of the last hit/store (LRU eviction order).
    last_used: u64,
}

/// Aggregate cache counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned live learned state.
    pub hits: u64,
    /// Lookups with no entry for the template.
    pub misses: u64,
    /// Entries dropped because the catalog changed under them.
    pub invalidated: u64,
    /// Stores (first sighting or refresh after an execution).
    pub stores: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evicted: u64,
}

/// Default maximum number of cached templates (see
/// [`LearningCache::with_capacity`]).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Thread-safe template-keyed learning cache, bounded to a fixed number
/// of templates with least-recently-used eviction (UCT snapshots are
/// small — kilobytes — but a service fed endlessly varying generated
/// query shapes must not grow without bound).
#[derive(Debug)]
pub struct LearningCache {
    entries: Mutex<FxHashMap<TemplateKey, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    stores: AtomicU64,
    evicted: AtomicU64,
}

impl Default for LearningCache {
    fn default() -> Self {
        LearningCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl LearningCache {
    /// Empty cache with the default capacity.
    pub fn new() -> LearningCache {
        LearningCache::default()
    }

    /// Empty cache holding at most `capacity` templates (clamped ≥ 1);
    /// storing past capacity evicts the least-recently-used entry.
    pub fn with_capacity(capacity: usize) -> LearningCache {
        LearningCache {
            entries: Mutex::new(FxHashMap::default()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Learned state for `key` if present and learned against
    /// `catalog_version`; stale entries are dropped (counted as both an
    /// invalidation and a miss).
    pub fn lookup(&self, key: &TemplateKey, catalog_version: u64) -> Option<LearnedState> {
        let tick = self.tick();
        let mut entries = self.entries.lock().expect("cache lock");
        match entries.get_mut(key) {
            Some(e) if e.catalog_version == catalog_version => {
                e.executions += 1;
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.learning.clone())
            }
            Some(_) => {
                entries.remove(key);
                self.invalidated.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store (or refresh) the learned state for `key`, evicting the
    /// least-recently-used entry if the capacity is exceeded. Later
    /// snapshots carry strictly more rounds, so a concurrent execution
    /// racing an older snapshot in is harmless — whichever lands last
    /// wins and both are valid priors.
    pub fn store(&self, key: TemplateKey, catalog_version: u64, learning: LearnedState) {
        let tick = self.tick();
        let mut entries = self.entries.lock().expect("cache lock");
        self.stores.fetch_add(1, Ordering::Relaxed);
        let executions = entries.get(&key).map_or(0, |e| e.executions);
        entries.insert(
            key.clone(),
            Entry {
                learning,
                catalog_version,
                executions,
                last_used: tick,
            },
        );
        while entries.len() > self.capacity {
            // O(n) scan; caches are at most `capacity` entries and
            // stores are once per query, so this is off the hot path.
            let coldest = entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match coldest {
                Some(k) => {
                    entries.remove(&k);
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Eagerly drop every entry not learned at `current_version` (called
    /// on catalog mutation, so stale learning does not linger until its
    /// template happens to be looked up again).
    pub fn remove_stale(&self, current_version: u64) {
        let mut entries = self.entries.lock().expect("cache lock");
        let before = entries.len();
        entries.retain(|_, e| e.catalog_version == current_version);
        self.invalidated
            .fetch_add((before - entries.len()) as u64, Ordering::Relaxed);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (e.g. after a bulk catalog reload).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock").clear();
    }

    /// The maximum number of cached templates.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Approximate heap bytes held by cached snapshots (introspection).
    pub fn approx_bytes(&self) -> usize {
        let entries = self.entries.lock().expect("cache lock");
        entries
            .values()
            .map(|e| e.learning.snapshot.approx_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_uct::{SearchSpace, UctConfig, UctTree};

    struct TwoArms;
    impl SearchSpace for TwoArms {
        type Action = usize;
        fn actions(&self, path: &[usize]) -> Vec<usize> {
            if path.is_empty() {
                vec![0, 1]
            } else {
                vec![]
            }
        }
        fn depth(&self) -> usize {
            1
        }
    }

    fn learned() -> LearnedState {
        let mut tree = UctTree::new(TwoArms, UctConfig::default());
        for _ in 0..10 {
            let p = tree.choose();
            tree.update(&p, 0.5);
        }
        LearnedState {
            snapshot: tree.snapshot(),
            best_order: vec![0],
            planned_orders: vec![vec![0], vec![1]],
        }
    }

    #[test]
    fn hit_miss_and_invalidation() {
        let cache = LearningCache::new();
        let k = template_key_for_test("a");
        assert!(cache.lookup(&k, 1).is_none());
        cache.store(k.clone(), 1, learned());
        assert!(cache.lookup(&k, 1).is_some());
        // Catalog changed: the entry is dropped, not served.
        assert!(cache.lookup(&k, 2).is_none());
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.invalidated, 1);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn store_refresh_and_bytes() {
        let cache = LearningCache::new();
        let k = template_key_for_test("b");
        cache.store(k.clone(), 1, learned());
        cache.store(k.clone(), 1, learned());
        assert_eq!(cache.len(), 1);
        assert!(cache.approx_bytes() > 0);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = LearningCache::with_capacity(2);
        let (a, b, c) = (
            template_key_for_test("ta"),
            template_key_for_test("tb"),
            template_key_for_test("tc"),
        );
        cache.store(a.clone(), 1, learned());
        cache.store(b.clone(), 1, learned());
        // Touch `a` so `b` is the LRU entry when `c` overflows the cache.
        assert!(cache.lookup(&a, 1).is_some());
        cache.store(c.clone(), 1, learned());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a, 1).is_some(), "recently used evicted");
        assert!(cache.lookup(&b, 1).is_none(), "LRU entry survived");
        assert!(cache.lookup(&c, 1).is_some(), "fresh entry evicted");
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn remove_stale_purges_eagerly() {
        let cache = LearningCache::new();
        cache.store(template_key_for_test("old"), 1, learned());
        cache.store(template_key_for_test("new"), 2, learned());
        cache.remove_stale(2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidated, 1);
    }

    /// Build a real TemplateKey from a one-table query over a throwaway
    /// catalog whose table name is `name` (distinct names ⇒ distinct keys).
    fn template_key_for_test(name: &str) -> TemplateKey {
        use skinner_query::QueryBuilder;
        use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                name,
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![Column::from_ints(vec![1])],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table(name).unwrap();
        qb.select_col(&format!("{name}.x")).unwrap();
        TemplateKey::of(&qb.build().unwrap())
    }
}
