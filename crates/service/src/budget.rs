//! The shared core budget: one pool of worker permits for the whole
//! service, so *concurrent queries* and *intra-query join partitioning*
//! draw from the same budget (`SkinnerCConfig.threads` semantics lifted
//! to the service level).
//!
//! Admission policy: FIFO tickets (strict arrival-order fairness — no
//! query can be starved by later arrivals) with proportional grants.
//! The query at the head of the queue is granted
//! `max(1, available / (1 + queued_behind))` permits: an idle service
//! hands a single query the whole budget (maximal intra-query
//! partitioning), a busy service degrades every query toward one worker
//! each (maximal inter-query concurrency). Grants release on drop.
//!
//! Waiters can give up: [`CoreBudget::acquire_with`] honors a deadline
//! and a cancel flag *while queued*, abandoning the ticket so the line
//! keeps moving — a per-query timeout therefore covers admission wait,
//! not just execution.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State {
    /// Unused permits.
    available: usize,
    /// Next ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to acquire (FIFO head).
    now_serving: u64,
    /// Tickets whose holders gave up while queued (timeout/cancel);
    /// skipped when the line reaches them.
    abandoned: HashSet<u64>,
}

impl State {
    /// Advance `now_serving` past abandoned tickets.
    fn skip_abandoned(&mut self) {
        while self.abandoned.remove(&self.now_serving) {
            self.now_serving += 1;
        }
    }
}

/// Why an [`CoreBudget::acquire_with`] wait ended without a grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The deadline passed while queued.
    TimedOut,
    /// The cancel flag was raised while queued.
    Cancelled,
}

/// A FIFO-fair counting semaphore over `total` worker permits.
#[derive(Debug)]
pub struct CoreBudget {
    total: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl CoreBudget {
    /// Budget of `total` worker permits (clamped to ≥ 1).
    pub fn new(total: usize) -> CoreBudget {
        let total = total.max(1);
        CoreBudget {
            total,
            state: Mutex::new(State {
                available: total,
                next_ticket: 0,
                now_serving: 0,
                abandoned: HashSet::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// The total permit count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Unused permits right now (introspection/tests; racy by nature).
    pub fn available(&self) -> usize {
        self.lock_state().available
    }

    /// Lock the state, recovering from poisoning. The accounting is
    /// transactional — every mutation below completes while the guard is
    /// held or not at all (no panics between related updates except the
    /// deliberate `budget.acquire` failpoint, which fires before any
    /// mutation) — so a poisoned guard's state is still consistent and
    /// panicking every later acquire would turn one crashed query into a
    /// dead service.
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Block (FIFO) until at least one permit is free, then take a
    /// proportional share of the free permits. The grant returns its
    /// permits when dropped.
    pub fn acquire(&self) -> CoreGrant<'_> {
        match self.acquire_with(None, None) {
            Ok(grant) => grant,
            // Infallible without a deadline or cancel flag.
            Err(_) => unreachable!("uninterruptible acquire cannot fail"),
        }
    }

    /// [`acquire`](CoreBudget::acquire), but give up if `deadline`
    /// passes or `cancel` is raised *while still queued* — the ticket is
    /// abandoned so later arrivals are not blocked behind a dead waiter.
    pub fn acquire_with(
        &self,
        deadline: Option<Instant>,
        cancel: Option<&AtomicBool>,
    ) -> Result<CoreGrant<'_>, AdmissionError> {
        self.acquire_limited(usize::MAX, deadline, cancel)
    }

    /// [`acquire_with`](CoreBudget::acquire_with) capped at
    /// `max_workers` permits — the pool-admission half of adaptive core
    /// grants. A grant is `min(proportional share, max_workers)`, so a
    /// query that knows it cannot use fan-out (a cached warm template
    /// whose best order converged, a single-table query) takes one
    /// permit and leaves the rest of the pool to cold queries, instead
    /// of hoarding an idle service's whole budget.
    pub fn acquire_limited(
        &self,
        max_workers: usize,
        deadline: Option<Instant>,
        cancel: Option<&AtomicBool>,
    ) -> Result<CoreGrant<'_>, AdmissionError> {
        let mut st = self.lock_state();
        // Fault-injection site: panics *while the budget lock is held*
        // and before any state mutation — the poison-recovery and
        // panic-isolation paths must keep the service serving.
        skinner_engine::failpoints::fire("budget.acquire");
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        loop {
            st.skip_abandoned();
            if st.now_serving == ticket && st.available > 0 {
                break;
            }
            if let Some(cancel) = cancel {
                if cancel.load(Ordering::Relaxed) {
                    self.abandon(st, ticket);
                    return Err(AdmissionError::Cancelled);
                }
            }
            st = match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        self.abandon(st, ticket);
                        return Err(AdmissionError::TimedOut);
                    }
                    self.cv
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                // No deadline but a cancel flag: poll it. Cancellation
                // has no wakeup path into this condvar, so a bounded
                // sleep keeps responsiveness without busy-waiting.
                None if cancel.is_some() => {
                    self.cv
                        .wait_timeout(st, Duration::from_millis(20))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0
                }
                None => self.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
            };
        }
        let queued_behind = (ticket + 1..st.next_ticket)
            .filter(|t| !st.abandoned.contains(t))
            .count();
        let threads = (st.available / (1 + queued_behind))
            .max(1)
            .min(max_workers.max(1));
        st.available -= threads;
        st.now_serving += 1;
        st.skip_abandoned();
        drop(st);
        // Wake the next ticket holder (it may be admissible already if
        // permits remain).
        self.cv.notify_all();
        Ok(CoreGrant {
            budget: self,
            threads,
        })
    }

    /// Drop out of the queue: if we are at the head, pass headship on;
    /// otherwise leave a marker for the line to skip us.
    fn abandon(&self, mut st: MutexGuard<'_, State>, ticket: u64) {
        if st.now_serving == ticket {
            st.now_serving += 1;
            st.skip_abandoned();
        } else {
            st.abandoned.insert(ticket);
        }
        drop(st);
        self.cv.notify_all();
    }

    fn release(&self, n: usize) {
        let mut st = self.lock_state();
        st.available += n;
        debug_assert!(st.available <= self.total);
        drop(st);
        self.cv.notify_all();
    }
}

/// Worker permits granted to one query execution; released on drop.
#[derive(Debug)]
pub struct CoreGrant<'a> {
    budget: &'a CoreBudget,
    threads: usize,
}

impl CoreGrant<'_> {
    /// Number of worker threads this query may use (feeds
    /// `SkinnerCConfig.threads`).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for CoreGrant<'_> {
    fn drop(&mut self) {
        self.budget.release(self.threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn idle_service_grants_everything() {
        let b = CoreBudget::new(4);
        let g = b.acquire();
        assert_eq!(g.threads(), 4);
        drop(g);
        let g = b.acquire();
        assert_eq!(g.threads(), 4);
    }

    #[test]
    fn zero_clamps_to_one() {
        let b = CoreBudget::new(0);
        assert_eq!(b.total(), 1);
        assert_eq!(b.acquire().threads(), 1);
    }

    #[test]
    fn grants_never_exceed_total_under_contention() {
        let b = Arc::new(CoreBudget::new(4));
        let in_use = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let b = b.clone();
            let in_use = in_use.clone();
            let max_seen = max_seen.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let g = b.acquire();
                    let now = in_use.fetch_add(g.threads(), Ordering::SeqCst) + g.threads();
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    in_use.fetch_sub(g.threads(), Ordering::SeqCst);
                    drop(g);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        assert!(
            max_seen.load(Ordering::SeqCst) <= 4,
            "budget exceeded: {} permits in use",
            max_seen.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn queued_waiter_times_out_and_line_moves() {
        let b = Arc::new(CoreBudget::new(1));
        let holder = b.acquire(); // budget fully taken
                                  // Waiter 1: tiny deadline — must time out while queued.
        let deadline = Instant::now() + Duration::from_millis(30);
        let b1 = b.clone();
        let t1 = std::thread::spawn(move || b1.acquire_with(Some(deadline), None).err());
        assert_eq!(t1.join().expect("waiter"), Some(AdmissionError::TimedOut));
        // Waiter 2 queued *behind* the abandoned ticket must still be
        // served once the holder releases.
        let b2 = b.clone();
        let t2 = std::thread::spawn(move || b2.acquire_with(None, None).map(|g| g.threads()));
        std::thread::sleep(Duration::from_millis(20));
        drop(holder);
        assert_eq!(t2.join().expect("waiter").expect("grant"), 1);
    }

    #[test]
    fn queued_waiter_cancels() {
        let b = Arc::new(CoreBudget::new(1));
        let holder = b.acquire();
        let cancel = Arc::new(AtomicBool::new(false));
        let (b1, c1) = (b.clone(), cancel.clone());
        let t1 = std::thread::spawn(move || b1.acquire_with(None, Some(&c1)).err());
        std::thread::sleep(Duration::from_millis(10));
        cancel.store(true, Ordering::Relaxed);
        assert_eq!(t1.join().expect("waiter"), Some(AdmissionError::Cancelled));
        drop(holder);
        // The budget is healthy afterwards.
        assert_eq!(b.acquire().threads(), 1);
    }

    #[test]
    fn panicking_holder_releases_grant() {
        let b = Arc::new(CoreBudget::new(3));
        let b2 = b.clone();
        let r = std::thread::spawn(move || {
            let _g = b2.acquire();
            panic!("query died mid-execution");
        })
        .join();
        assert!(r.is_err());
        assert_eq!(b.available(), 3, "panicked holder leaked its grant");
        assert_eq!(b.acquire().threads(), 3);
    }

    #[test]
    fn poisoned_budget_lock_recovers() {
        // Panic *inside* acquire while the state mutex is held (the
        // `budget.acquire` failpoint fires under the lock): the mutex is
        // poisoned, and every later acquire must recover rather than
        // propagate the poison forever.
        skinner_engine::failpoints::config_for_current_thread("budget.acquire", "panic");
        let b = CoreBudget::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = b.acquire();
        }));
        assert!(r.is_err(), "failpoint must panic");
        let g = b.acquire();
        assert_eq!(g.threads(), 2);
        assert_eq!(b.total(), 2);
    }

    #[test]
    fn limited_grant_leaves_permits_for_others() {
        let b = CoreBudget::new(4);
        // A warm query on an idle service takes 1 permit, not all 4.
        let g = b
            .acquire_limited(1, None, None)
            .expect("uncontended acquire");
        assert_eq!(g.threads(), 1);
        assert_eq!(b.available(), 3);
        // A cold query admitted concurrently still gets the rest.
        let g2 = b.acquire_limited(usize::MAX, None, None).expect("acquire");
        assert_eq!(g2.threads(), 3);
        drop(g);
        drop(g2);
        assert_eq!(b.available(), 4);
        // A zero cap clamps to one permit rather than granting nothing.
        assert_eq!(b.acquire_limited(0, None, None).unwrap().threads(), 1);
    }

    #[test]
    fn contended_grants_shrink() {
        // With a waiter queued behind, the head's grant leaves room.
        let b = Arc::new(CoreBudget::new(4));
        let first = b.acquire(); // takes all 4
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || {
            let g = b2.acquire();
            let t = g.threads();
            drop(g);
            t
        });
        // Let the waiter queue up, then free the permits.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(first);
        let granted = waiter.join().expect("waiter");
        assert!((1..=4).contains(&granted));
    }
}
