//! `skinner-repl` front ends: an interactive SQL shell and a
//! line-protocol server over a local Unix socket (`--serve`).
//!
//! Both front ends share one command handler: a line is either a
//! backslash command (`\tables`, `\stats`, `\cache`, `\quit`) or SQL
//! submitted to the [`QueryService`].
//!
//! # Line protocol (`--serve` mode)
//!
//! One request per line; every response ends with a single terminator
//! line starting with `;; `, so scripts can delimit responses without
//! counting rows:
//!
//! ```text
//! → SELECT COUNT(*) AS n FROM t
//! ← n
//! ← 42
//! ← ;; ok 1 rows
//! → SELECT nope
//! ← ;; err expected FROM ...
//! ```
//!
//! Data lines are tab-separated with `\\`, `\t`, `\n`, `\r` escapes
//! inside cells; a data line that would begin with `;;` (or `\`) is
//! prefixed with one `\`, which clients strip. The terminator is
//! therefore unspoofable by result values.

use crate::listener::{serve_accept_loop, ShutdownFlag};
use crate::persist::CachePersister;
use crate::service::{QueryService, ServiceError, Session};
use skinner_core::{QueryResult, RunStats};
use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of handling one input line.
pub enum Response {
    /// A query result (table + stats).
    Result(Box<QueryResult>),
    /// Informational text (backslash commands), pre-formatted lines.
    Message(Vec<String>),
    /// An error to report to the client.
    Error(String),
    /// The client asked to end the session.
    Quit,
    /// The client asked the whole server to shut down gracefully
    /// (flushing the persisted learning cache before exit).
    Shutdown,
    /// Blank input; nothing to do.
    Empty,
}

/// Handle one line of input against `session`.
pub fn handle_line(session: &mut Session, line: &str) -> Response {
    let line = line.trim();
    match line {
        "" => Response::Empty,
        "\\quit" | "\\q" | "exit" => Response::Quit,
        "\\shutdown" => Response::Shutdown,
        "\\tables" => {
            let catalog = session.service().catalog();
            let mut lines = Vec::new();
            for name in catalog.table_names() {
                let t = catalog.get(name).expect("listed table");
                let cols: Vec<String> = t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| format!("{} {}", c.name, c.ty))
                    .collect();
                lines.push(format!(
                    "{name} ({}) — {} rows",
                    cols.join(", "),
                    t.num_rows()
                ));
            }
            Response::Message(lines)
        }
        "\\stats" => {
            let st = session.service().stats();
            Response::Message(vec![
                format!("queries: {}", st.queries),
                format!(
                    "learning cache: {} hits, {} misses ({} stale), {} invalidated",
                    st.cache.hits, st.cache.misses, st.cache.stale_hits, st.cache.invalidated
                ),
                format!(
                    "knowledge: {} records, {} seeded, {} without priors, {} invalidated",
                    st.knowledge.records,
                    st.knowledge.seeded,
                    st.knowledge.no_priors,
                    st.knowledge.invalidated
                ),
                format!(
                    "kernel cache: {} hits, {} misses, {} evicted",
                    st.kernels.hits, st.kernels.misses, st.kernels.evicted
                ),
                format!(
                    "codegen: {} orders compiled, {} fallbacks, {} slices",
                    st.codegen_orders, st.fallback_orders, st.codegen_slices
                ),
                format!(
                    "warm starts: {}, prior-seeded: {}",
                    st.warm_starts, st.prior_seeded
                ),
                format!("limit pushdowns: {}", st.limit_pushdowns),
                format!("cancelled: {}, timed out: {}", st.cancelled, st.timed_out),
                format!(
                    "memory exceeded: {}, panicked: {}, in flight: {}",
                    st.memory_exceeded, st.panicked, st.queries_in_flight
                ),
                format!(
                    "connections: {} open, {} rejected",
                    st.connections_open, st.connections_rejected
                ),
            ])
        }
        "\\cache" => {
            let cache = session.service().learning_cache();
            let (ktables, kedges, kbytes) = {
                let k = session.service().knowledge();
                let (t, e) = k.len();
                (t, e, k.approx_bytes())
            };
            Response::Message(vec![
                format!(
                    "{} templates cached (~{} bytes of learned state)",
                    cache.len(),
                    cache.approx_bytes()
                ),
                format!(
                    "knowledge: {ktables} table entries, {kedges} edge entries \
                     (~{kbytes} bytes)"
                ),
            ])
        }
        sql => match session.execute(sql) {
            Ok(result) => Response::Result(Box::new(result)),
            Err(e @ ServiceError::Parse(_)) => Response::Error(e.to_string()),
            Err(e) => Response::Error(e.to_string()),
        },
    }
}

fn stats_suffix(stats: &RunStats) -> String {
    let mut flags = Vec::new();
    if stats.warm_start {
        flags.push("warm");
    }
    if stats.prior_seeded {
        flags.push("prior-seeded");
    }
    if matches!(stats.stop, Some(skinner_engine::StopReason::RowTarget)) {
        flags.push("limit-pushdown");
    }
    let flags = if flags.is_empty() {
        String::new()
    } else {
        format!(" [{}]", flags.join(", "))
    };
    format!(
        "({} rows in {:?}; {} time slices, join order {:?}{flags})",
        stats.result_count,
        stats.total,
        stats.slices,
        stats.final_order.as_deref().unwrap_or(&[]),
    )
}

/// The interactive / piped-stdin shell: prompt, pretty tables, stats
/// line per query. Returns when input ends or the client quits.
pub fn run_shell(
    service: &Arc<QueryService>,
    input: impl BufRead,
    out: &mut impl Write,
    prompt: bool,
) -> std::io::Result<()> {
    let mut session = service.session();
    if prompt {
        write!(out, "skinner> ")?;
        out.flush()?;
    }
    for line in input.lines() {
        let line = line?;
        match handle_line(&mut session, &line) {
            Response::Quit | Response::Shutdown => break,
            Response::Empty => {}
            Response::Message(lines) => {
                for l in lines {
                    writeln!(out, "{l}")?;
                }
            }
            Response::Error(e) => writeln!(out, "error: {e}")?,
            Response::Result(r) => {
                write!(out, "{}", r.table)?;
                let mut stats = r.stats;
                // The shell reports output rows (post LIMIT), not join tuples.
                stats.result_count = r.table.num_rows() as u64;
                writeln!(out, "{}", stats_suffix(&stats))?;
            }
        }
        if prompt {
            write!(out, "skinner> ")?;
            out.flush()?;
        }
    }
    if prompt {
        writeln!(out)?;
    }
    Ok(())
}

/// Escape one protocol cell: the framing characters (tab = cell
/// separator, newline/CR = line separator) and backslash itself become
/// two-character escapes, so a cell can never span or split lines.
fn escape_cell(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

/// Join escaped cells into one protocol data line. A line that would
/// collide with the `;;` terminator prefix is emitted with a leading
/// backslash (clients strip one leading `\` from data lines).
fn protocol_line(cells: impl IntoIterator<Item = String>) -> String {
    let line = cells
        .into_iter()
        .map(|c| escape_cell(&c))
        .collect::<Vec<_>>()
        .join("\t");
    if line.starts_with(";;") || line.starts_with('\\') {
        format!("\\{line}")
    } else {
        line
    }
}

/// Write one line-protocol response for `response`.
pub fn write_protocol_response(out: &mut impl Write, response: &Response) -> std::io::Result<()> {
    match response {
        Response::Empty => writeln!(out, ";; ok 0 rows")?,
        Response::Quit => writeln!(out, ";; bye")?,
        Response::Shutdown => writeln!(out, ";; bye shutdown")?,
        Response::Message(lines) => {
            for l in lines {
                writeln!(out, "{}", protocol_line([l.clone()]))?;
            }
            writeln!(out, ";; ok {} rows", lines.len())?;
        }
        Response::Error(e) => writeln!(out, ";; err {}", e.replace(['\n', '\r'], " "))?,
        Response::Result(r) => {
            writeln!(out, "{}", protocol_line(r.table.columns.iter().cloned()))?;
            for row in &r.table.rows {
                writeln!(out, "{}", protocol_line(row.iter().map(|v| v.to_string())))?;
            }
            writeln!(out, ";; ok {} rows", r.table.num_rows())?;
        }
    }
    out.flush()
}

/// Serve the line protocol to one connected client (one session per
/// connection). Returns when the client disconnects or sends `\quit`
/// (`Ok(false)`), or requests a server shutdown via `\shutdown`
/// (`Ok(true)`).
pub fn serve_connection(
    service: &Arc<QueryService>,
    reader: impl BufRead,
    writer: impl Write,
) -> std::io::Result<bool> {
    serve_connection_until(service, reader, writer, None)
}

/// [`serve_connection`], draining on `shutdown`: when the flag is
/// raised the loop finishes the request it is reading (timeout-bounded
/// reads return `WouldBlock`, under which the partial line is kept and
/// re-polled) and exits instead of waiting for more input. `None`
/// serves until EOF/`\quit` exactly like [`serve_connection`].
pub fn serve_connection_until(
    service: &Arc<QueryService>,
    mut reader: impl BufRead,
    mut writer: impl Write,
    shutdown: Option<&ShutdownFlag>,
) -> std::io::Result<bool> {
    let mut session = service.session();
    let mut line = String::new();
    loop {
        // `read_line` only returns Ok on a complete line (or EOF); a
        // timeout mid-line keeps the bytes read so far in `line` and
        // the next call appends the rest — so shutdown polling never
        // tears a request.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(false),
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.is_some_and(ShutdownFlag::is_raised) {
                    return Ok(false);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        let response = handle_line(&mut session, &line);
        line.clear();
        write_protocol_response(&mut writer, &response)?;
        match response {
            Response::Quit => return Ok(false),
            Response::Shutdown => return Ok(true),
            _ => {}
        }
    }
}

/// Knobs for [`serve_unix_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Learning-cache persistence file: loaded (warm start) before the
    /// socket binds, flushed periodically and once more at shutdown.
    /// `None` disables persistence.
    pub cache_path: Option<std::path::PathBuf>,
    /// Background flush interval when `cache_path` is set.
    pub persist_interval: Duration,
    /// Externally visible shutdown signal; raising it (or a client's
    /// `\shutdown`) drains the accept loop and flushes the cache.
    pub shutdown: ShutdownFlag,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            cache_path: None,
            persist_interval: Duration::from_secs(30),
            shutdown: ShutdownFlag::new(),
        }
    }
}

/// Removes the bound socket file when dropped, so *every* exit path —
/// clean `\shutdown` drain, an accept-loop error, a panic unwinding
/// through the server — cleans up, not just the happy path. (A SIGKILL
/// still leaks the file; the next bind removes stale leftovers.)
#[cfg(unix)]
struct SocketFileGuard(std::path::PathBuf);

#[cfg(unix)]
impl Drop for SocketFileGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// How long a draining Unix connection may go without input before it
/// re-checks the shutdown flag (bounds shutdown latency for idle
/// clients).
#[cfg(unix)]
const UNIX_READ_POLL: Duration = Duration::from_millis(100);

/// Accept loop for `--serve`: line protocol over a Unix domain socket,
/// one thread (and one service session) per connection; concurrency
/// across connections is bounded by the service's core budget, not by
/// the thread count. Built on the shared
/// [`serve_accept_loop`] core:
/// failed accepts are logged and dropped (never fatal), the idle loop
/// parks on the shutdown flag's condvar (near-zero idle CPU, immediate
/// wake on shutdown), and shutdown *drains* — every connection thread
/// is joined after it finishes its in-flight request. Returns when
/// `opts.shutdown` is raised or a client sends `\shutdown`, after a
/// final learning-cache flush (when persistence is configured).
#[cfg(unix)]
pub fn serve_unix_with(
    service: Arc<QueryService>,
    path: &std::path::Path,
    opts: ServeOptions,
) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    if let Some(cache) = &opts.cache_path {
        match service.load_learning_cache(cache) {
            Ok(report) => eprintln!(
                "skinner-repl: learning cache warm start: {} loaded, {} corrupt, {} stale{}",
                report.loaded,
                report.corrupt,
                report.stale,
                if report.truncated {
                    " (truncated tail)"
                } else {
                    ""
                }
            ),
            Err(e) => eprintln!("skinner-repl: learning cache load failed: {e}"),
        }
        match service.load_knowledge(&crate::persist::knowledge_path(cache)) {
            Ok(report) => eprintln!(
                "skinner-repl: knowledge warm start: {} loaded, {} corrupt, {} stale",
                report.loaded, report.corrupt, report.stale
            ),
            Err(e) => eprintln!("skinner-repl: knowledge load failed: {e}"),
        }
    }
    let persister = opts
        .cache_path
        .as_ref()
        .map(|cache| CachePersister::start(service.clone(), cache.clone(), opts.persist_interval));

    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    // Guard, not a trailing remove_file: early exits (bind-adjacent
    // errors, panics, SIGTERM-style teardown that unwinds) must clean
    // the socket file up too.
    let _socket_guard = SocketFileGuard(path.to_path_buf());
    let shutdown = opts.shutdown;
    serve_accept_loop(&listener, &shutdown, "skinner-repl", |stream| {
        // The accepted socket inherits the listener's nonblocking mode;
        // the per-connection loop wants timeout-bounded blocking reads
        // (so it can poll the shutdown flag without busy-waiting).
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(UNIX_READ_POLL));
        let service = service.clone();
        let shutdown = shutdown.clone();
        Some(std::thread::spawn(move || {
            let _conn = service.connection_opened();
            let reader = match stream.try_clone() {
                Ok(r) => BufReader::new(r),
                Err(e) => {
                    eprintln!("skinner-repl: dropping connection (clone failed): {e}");
                    return;
                }
            };
            match serve_connection_until(&service, reader, stream, Some(&shutdown)) {
                Ok(true) => shutdown.raise(),
                Ok(false) => {}
                Err(e) => eprintln!("skinner-repl: connection error: {e}"),
            }
        }))
    })?;
    if let Some(p) = persister {
        match p.shutdown() {
            Ok(n) => eprintln!("skinner-repl: persisted {n} learning-cache entries"),
            Err(e) => eprintln!("skinner-repl: final cache flush failed: {e}"),
        }
        let (tables, edges) = service.knowledge().len();
        eprintln!(
            "skinner-repl: persisted knowledge: {tables} table entries, {edges} edge entries"
        );
    }
    Ok(())
}

/// [`serve_unix_with`] with default options: no persistence, runs until
/// a client sends `\shutdown` (kept for API compatibility and tests).
#[cfg(unix)]
pub fn serve_unix(service: Arc<QueryService>, path: &std::path::Path) -> std::io::Result<()> {
    serve_unix_with(service, path, ServeOptions::default())
}

/// A ready-made demo service over the synthetic JOB-like catalog (what
/// `skinner-repl` serves by default).
pub fn demo_service(scale: f64, seed: u64, threads: usize) -> Arc<QueryService> {
    use crate::service::ServiceConfig;
    use skinner_engine::SkinnerCConfig;
    let wl = skinner_workloads::job::generate(scale, seed);
    QueryService::new(
        wl.catalog,
        skinner_query::UdfRegistry::new(),
        ServiceConfig {
            engine: SkinnerCConfig {
                threads,
                ..Default::default()
            },
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn service() -> Arc<QueryService> {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "t",
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![Column::from_ints(vec![1, 2, 3])],
            )
            .unwrap(),
        );
        QueryService::over(cat)
    }

    #[test]
    fn shell_runs_script() {
        let svc = service();
        let script = "\\tables\nSELECT COUNT(*) AS n FROM t\nbad sql\n\\quit\n";
        let mut out = Vec::new();
        run_shell(&svc, script.as_bytes(), &mut out, false).expect("shell");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("t (x INT) — 3 rows"), "tables: {text}");
        assert!(text.contains("(1 rows in"), "stats line: {text}");
        assert!(text.contains("error:"), "error surfaced: {text}");
    }

    #[test]
    fn protocol_responses_are_delimited() {
        let svc = service();
        let script = "SELECT x FROM t\nnonsense\n\\stats\n\\quit\n";
        let mut out = Vec::new();
        serve_connection(&svc, script.as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains(";; ok 3 rows"), "{text}");
        assert!(text.contains(";; err"), "{text}");
        assert!(text.contains(";; bye"), "{text}");
        // Every response block is terminated.
        assert_eq!(text.matches(";; ").count(), 4, "{text}");
    }

    #[test]
    fn protocol_escapes_framing_characters() {
        // String values containing tabs, newlines, and terminator-like
        // prefixes must not break or spoof the line protocol.
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "s",
                Schema::new([ColumnDef::new("x", ValueType::Str)]),
                vec![Column::from_strs(["a\nb", "c\td", ";; ok 9 rows", "\\raw"])],
            )
            .unwrap(),
        );
        let svc = QueryService::over(cat);
        let mut out = Vec::new();
        serve_connection(&svc, "SELECT s.x FROM s\n".as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        // Header + 4 data lines + terminator: exactly 6 protocol lines.
        assert_eq!(lines.len(), 6, "{text}");
        assert_eq!(lines[1], "a\\nb");
        assert_eq!(lines[2], "c\\td");
        assert_eq!(lines[3], "\\;; ok 9 rows");
        assert_eq!(lines[4], "\\\\\\raw");
        assert_eq!(lines[5], ";; ok 4 rows");
        // Only the real terminator starts with ";;".
        assert_eq!(lines.iter().filter(|l| l.starts_with(";;")).count(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_roundtrip() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;
        let svc = service();
        let path =
            std::env::temp_dir().join(format!("skinner-repl-test-{}.sock", std::process::id()));
        let p = path.clone();
        std::thread::spawn(move || {
            let _ = serve_unix(svc, &p);
        });
        // The listener needs a moment to bind.
        let mut stream = None;
        for _ in 0..100 {
            match UnixStream::connect(&path) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut stream = stream.expect("connect to repl socket");
        writeln!(stream, "SELECT COUNT(*) AS n FROM t").expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let done = line.starts_with(";; ");
            lines.push(line.trim_end().to_string());
            if done {
                break;
            }
        }
        assert_eq!(lines, vec!["n", "3", ";; ok 1 rows"]);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn shutdown_command_drains_server_and_flushes_cache() {
        use std::io::Write;
        use std::os::unix::net::UnixStream;
        let dir =
            std::env::temp_dir().join(format!("skinner-repl-shutdown-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("repl.sock");
        let cache = dir.join("cache.bin");
        let svc = service();
        let opts = ServeOptions {
            cache_path: Some(cache.clone()),
            persist_interval: Duration::from_secs(3600),
            ..Default::default()
        };
        let (s, p) = (svc.clone(), sock.clone());
        let server = std::thread::spawn(move || serve_unix_with(s, &p, opts));
        let mut stream = None;
        for _ in 0..200 {
            match UnixStream::connect(&sock) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        let mut stream = stream.expect("connect");
        // Run a query (populates the learning cache), then shut down.
        writeln!(stream, "SELECT COUNT(*) AS n FROM t").expect("send");
        writeln!(stream, "\\shutdown").expect("send");
        server
            .join()
            .expect("server thread")
            .expect("serve_unix_with");
        // Shutdown flushed the cache and removed the socket file.
        assert!(cache.exists(), "cache not persisted on shutdown");
        assert!(!sock.exists(), "socket file left behind");
        let (records, report) = crate::persist::load_entries(&cache).unwrap();
        assert_eq!(report.corrupt, 0);
        assert!(!records.is_empty(), "no learning persisted");
        std::fs::remove_dir_all(&dir).ok();
    }
}
