//! The generic accept/drain/shutdown core shared by every listening
//! front end — the Unix-socket line protocol ([`crate::repl`]) and the
//! TCP binary protocol (`skinner-net`).
//!
//! A server front end is three concerns glued together, and only one of
//! them is transport-specific:
//!
//! 1. **Accept** — poll a nonblocking listener, tolerate per-accept
//!    errors (`EMFILE`, `ECONNABORTED`, a failed `try_clone` — one bad
//!    connection must never take the server down), and hand each new
//!    stream to a connection handler that may spawn a thread.
//! 2. **Park** — between accept attempts the loop parks on a
//!    [`ShutdownFlag`]'s condvar with a bounded timeout, so idle CPU
//!    stays near zero *and* a shutdown request wakes the loop
//!    immediately instead of waiting out a sleep.
//! 3. **Drain** — when the flag is raised the loop stops accepting,
//!    then joins every connection thread it spawned, so in-flight work
//!    finishes before the caller flushes caches and exits.
//!
//! [`serve_accept_loop`] implements all three once, generic over an
//! [`Acceptor`]; `UnixListener` and `TcpListener` both implement it.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// A raisable, waitable shutdown signal shared between the accept
/// loop, connection handlers, and external controllers (signal
/// handlers, admin frames, `\shutdown` commands).
///
/// Unlike a bare `AtomicBool`, raising the flag *notifies* a condvar,
/// so a loop parked in [`wait_timeout`](ShutdownFlag::wait_timeout)
/// wakes immediately — shutdown latency is bounded by in-flight work,
/// not by a polling interval.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    inner: Arc<ShutdownInner>,
}

#[derive(Debug, Default)]
struct ShutdownInner {
    raised: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl ShutdownFlag {
    /// A fresh, un-raised flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Raise the flag and wake every parked waiter.
    pub fn raise(&self) {
        self.inner.raised.store(true, Ordering::Release);
        // Taking the lock before notifying closes the race with a
        // waiter that checked the flag but has not yet parked.
        let _g = self
            .inner
            .lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.inner.cv.notify_all();
    }

    /// True once raised (never resets).
    pub fn is_raised(&self) -> bool {
        self.inner.raised.load(Ordering::Acquire)
    }

    /// Park for up to `timeout`, waking early if the flag is raised.
    /// Returns [`is_raised`](ShutdownFlag::is_raised) on exit.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        if self.is_raised() {
            return true;
        }
        let g = self
            .inner
            .lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.is_raised() {
            return true;
        }
        let _g = self
            .inner
            .cv
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        self.is_raised()
    }
}

/// A nonblocking listener the shared accept loop can drive. `accept`
/// must return `ErrorKind::WouldBlock` when no connection is pending
/// (the loop parks on the shutdown flag, then retries).
pub trait Acceptor {
    /// The accepted stream type.
    type Conn: Send + 'static;

    /// Switch the listener between blocking and nonblocking modes (the
    /// loop forces nonblocking so it can observe shutdown).
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;

    /// Accept one pending connection, or `WouldBlock`.
    fn accept_conn(&self) -> io::Result<Self::Conn>;
}

#[cfg(unix)]
impl Acceptor for std::os::unix::net::UnixListener {
    type Conn = std::os::unix::net::UnixStream;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        std::os::unix::net::UnixListener::set_nonblocking(self, nonblocking)
    }

    fn accept_conn(&self) -> io::Result<Self::Conn> {
        self.accept().map(|(stream, _addr)| stream)
    }
}

impl Acceptor for std::net::TcpListener {
    type Conn = std::net::TcpStream;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        std::net::TcpListener::set_nonblocking(self, nonblocking)
    }

    fn accept_conn(&self) -> io::Result<Self::Conn> {
        self.accept().map(|(stream, _addr)| stream)
    }
}

/// How often the accept loop wakes to re-poll the listener when idle.
/// Shutdown does NOT wait for this: raising the [`ShutdownFlag`]
/// notifies the park immediately. New connections are discovered with
/// at most this much latency, which is the price of a dependency-free
/// nonblocking listener (no `poll(2)` binding without `libc`).
pub const ACCEPT_POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Run the shared accept/drain/shutdown loop over `listener` until
/// `shutdown` is raised (see the module docs).
///
/// `on_conn` is called for every accepted stream; it either handles the
/// connection inline (reject, redirect) and returns `None`, or spawns a
/// connection thread and returns its handle for the drain phase.
/// Finished handles are reaped opportunistically so a long-lived server
/// does not accumulate one dead handle per past connection.
///
/// Per-accept errors are logged to stderr (prefixed with `label`) and
/// never abort the loop; only a listener that cannot be switched to
/// nonblocking mode fails the call.
pub fn serve_accept_loop<A: Acceptor>(
    listener: &A,
    shutdown: &ShutdownFlag,
    label: &str,
    mut on_conn: impl FnMut(A::Conn) -> Option<JoinHandle<()>>,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.is_raised() {
        match listener.accept_conn() {
            Ok(stream) => {
                conns.retain(|h| !h.is_finished());
                if let Some(handle) = on_conn(stream) {
                    conns.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                shutdown.wait_timeout(ACCEPT_POLL_INTERVAL);
            }
            Err(e) => {
                // One bad accept (EMFILE, ECONNABORTED, ...) must not
                // take the server down; log and keep listening.
                eprintln!("{label}: accept error: {e}");
                shutdown.wait_timeout(ACCEPT_POLL_INTERVAL);
            }
        }
    }
    // Drain: connection handlers observe the shutdown flag between
    // requests (their reads are timeout-bounded), finish their
    // in-flight query, say goodbye, and exit.
    for handle in conns {
        let _ = handle.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn raise_wakes_parked_waiter_immediately() {
        let flag = ShutdownFlag::new();
        let f = flag.clone();
        let waiter = std::thread::spawn(move || {
            let start = Instant::now();
            // Far longer than the test will take: only a notify can
            // return early.
            assert!(f.wait_timeout(Duration::from_secs(30)));
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(30));
        flag.raise();
        let waited = waiter.join().expect("waiter");
        assert!(
            waited < Duration::from_secs(5),
            "park did not wake on raise: {waited:?}"
        );
    }

    #[test]
    fn raised_flag_short_circuits() {
        let flag = ShutdownFlag::new();
        flag.raise();
        let start = Instant::now();
        assert!(flag.wait_timeout(Duration::from_secs(30)));
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(flag.is_raised());
    }

    #[test]
    fn unraised_wait_times_out_false() {
        let flag = ShutdownFlag::new();
        assert!(!flag.wait_timeout(Duration::from_millis(10)));
        assert!(!flag.is_raised());
    }

    #[test]
    fn tcp_accept_loop_accepts_and_drains() {
        use std::io::{Read, Write};
        use std::net::{TcpListener, TcpStream};
        use std::sync::atomic::AtomicUsize;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = ShutdownFlag::new();
        let served = Arc::new(AtomicUsize::new(0));

        let (sd, sv) = (shutdown.clone(), served.clone());
        let server = std::thread::spawn(move || {
            serve_accept_loop(&listener, &sd, "test", |mut stream| {
                let sv = sv.clone();
                Some(std::thread::spawn(move || {
                    let mut buf = [0u8; 4];
                    stream.read_exact(&mut buf).expect("read");
                    stream.write_all(&buf).expect("write");
                    sv.fetch_add(1, Ordering::SeqCst);
                }))
            })
            .expect("accept loop");
        });

        for _ in 0..3 {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(b"ping").expect("send");
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).expect("echo");
            assert_eq!(&buf, b"ping");
        }
        shutdown.raise();
        server.join().expect("server thread");
        // Drain joined every connection thread before returning.
        assert_eq!(served.load(Ordering::SeqCst), 3);
    }
}
