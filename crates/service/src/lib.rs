//! # skinner-service
//!
//! The front door to the SkinnerDB engine: a concurrent query service
//! with **cross-query learning reuse**.
//!
//! The paper's engine learns a near-optimal join order while a single
//! query runs, then throws that knowledge away. Serving real traffic
//! means the same query *templates* arrive over and over (with varying
//! constants), so this crate keeps the learned state alive between
//! executions and shares the machine between sessions:
//!
//! * [`QueryService`] — owns a [`Catalog`](skinner_storage::Catalog) and
//!   [`UdfRegistry`](skinner_query::UdfRegistry); accepts SQL from any
//!   number of concurrent [`Session`]s. Admission is FIFO-fair over one
//!   shared [`CoreBudget`]: `SkinnerCConfig.threads` is the *total* core
//!   budget, split between concurrent queries and intra-query join
//!   partitioning (an idle service gives one query everything; a busy
//!   one runs queries side by side). Per-query timeouts and
//!   [`CancelToken`]s stop the engine cooperatively at slice boundaries.
//! * [`LearningCache`] — maps normalized query templates
//!   ([`TemplateKey`](skinner_query::TemplateKey): join graph +
//!   predicate shape, constants stripped) to the terminal UCT tree
//!   snapshot and bound-order set of the last execution. A repeated
//!   template **warm-starts**: the learner resumes from its priors and
//!   converges in measurably fewer slices (see `exp_service` /
//!   `BENCH_service.json`). Catalog mutations bump a version that
//!   invalidates stale entries — warm answers are always byte-for-byte
//!   equal to cold ones.
//! * Knowledge priors — when the exact-template cache misses, the
//!   service consults a cross-query
//!   [`KnowledgeStore`](skinner_knowledge::KnowledgeStore) of observed
//!   selectivities and join-edge rewards (keyed by coarse fingerprints
//!   that recur across templates) and seeds the cold UCT tree with
//!   optimistic arm priors: first-ever runs of *new* templates converge
//!   faster, with results provably identical to cold runs.
//! * Streaming delivery — `LIMIT` queries push their row target into
//!   the join phase (the engine's limit-aware `ResultSink` stops the
//!   slice loop once enough deduped rows exist), and
//!   [`Session::execute_streaming`] hands rows to a callback instead of
//!   forcing callers to hold the full table.
//! * [`repl`] — the human- and script-facing entry point behind the
//!   `skinner-repl` binary: an interactive shell, and a line-protocol
//!   server over a Unix socket in `--serve` mode.
//!
//! ```
//! use skinner_service::QueryService;
//! use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(Table::new(
//!     "t",
//!     Schema::new([ColumnDef::new("x", ValueType::Int)]),
//!     vec![Column::from_ints(vec![1, 2, 3])],
//! ).unwrap());
//!
//! let service = QueryService::over(catalog);
//! let mut session = service.session();
//! let result = session.execute("SELECT COUNT(*) AS n FROM t").unwrap();
//! assert_eq!(result.table.num_rows(), 1);
//! // Repeat the template: served warm from the learning cache.
//! let again = session.execute("SELECT COUNT(*) AS n FROM t").unwrap();
//! assert!(again.stats.cache_hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod listener;
pub mod persist;
pub mod repl;
pub mod service;

pub use budget::{CoreBudget, CoreGrant};
pub use cache::{CacheStats, LearningCache};
pub use listener::{serve_accept_loop, Acceptor, ShutdownFlag};
pub use persist::{knowledge_path, CachePersister, LoadReport};
pub use service::{
    CancelToken, ConnectionGuard, ExecuteOptions, QueryService, ServiceConfig, ServiceError,
    ServiceStats, Session,
};
