//! Crash-safe persistence of the learning cache.
//!
//! SkinnerDB's accumulated learning — the per-template UCT snapshots
//! and planned join orders — is only an asset if it survives restarts.
//! This module serializes the [`LearningCache`](crate::cache::LearningCache) to a single file in a
//! hand-rolled, length-prefixed binary format with a per-record
//! checksum, and loads it back on startup so a restarted service starts
//! warm.
//!
//! # Format
//!
//! ```text
//! header : magic "SKLC" | format version u32
//! record : payload len u32 | FxHasher checksum of payload u64 | payload
//! payload: template canonical string
//!          table deps        (name, version)*
//!          best order        table ids
//!          planned orders    id lists
//!          snapshot          rounds + nodes (visits, reward bits,
//!                            actions, children; u64::MAX = unexpanded)
//! ```
//!
//! All integers are little-endian; strings are u32-length-prefixed
//! UTF-8.
//!
//! # Crash safety
//!
//! Writes are atomic: the file is assembled in a `.tmp` sibling, fsynced,
//! and renamed over the target (then the directory is fsynced), so a
//! crash — even mid-write — leaves either the old file or the new one,
//! never a torn mix. The *loader* still defends in depth: a record with
//! a bad checksum or an undecodable payload is skipped (the length
//! prefix keeps framing intact), a truncated tail stops the scan, and a
//! foreign magic/version yields an empty load — corruption costs some
//! warm starts, never availability or correctness.
//!
//! Fault-injection sites: `persist.read`, `persist.write`,
//! `persist.fsync`, `persist.rename` (see
//! [`skinner_engine::failpoints`]).

use crate::cache::TableDeps;
use crate::service::QueryService;
use skinner_engine::failpoints;
use skinner_engine::LearnedState;
use skinner_query::{TableId, TemplateKey};
use skinner_storage::hash::FxHasher;
use skinner_uct::{SnapshotNode, TreeSnapshot};
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// File magic: "SKinner Learning Cache".
const MAGIC: [u8; 4] = *b"SKLC";
/// Format version; bump on any wire change (old files then load empty).
const FORMAT_VERSION: u32 = 1;
/// Upper bound on a single record's payload (corrupt length prefixes
/// must not trigger absurd allocations).
const MAX_RECORD_BYTES: usize = 64 << 20;

/// One persisted cache entry.
#[derive(Debug, Clone)]
pub struct PersistRecord {
    /// The template key (round-tripped via its canonical string).
    pub key: TemplateKey,
    /// Per-table versions the learning was captured against.
    pub deps: TableDeps,
    /// The learned state itself.
    pub learning: LearnedState,
}

/// What a load pass observed (all the degraded paths are counted, so
/// operators can tell "clean start" from "survived corruption").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records decoded and seeded into the cache.
    pub loaded: usize,
    /// Records skipped: checksum mismatch or undecodable payload.
    pub corrupt: usize,
    /// Records skipped because their table versions (or the tables
    /// themselves) no longer match the live catalog.
    pub stale: usize,
    /// True if the file ended mid-record (torn tail after a crash).
    pub truncated: bool,
    /// True if the file had a foreign magic or format version (nothing
    /// was loaded from it).
    pub format_mismatch: bool,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_ids(out: &mut Vec<u8>, ids: &[TableId]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_u64(out, id as u64);
    }
}

fn encode_record(key: &TemplateKey, deps: &TableDeps, learning: &LearnedState) -> Vec<u8> {
    let mut p = Vec::with_capacity(256);
    put_str(&mut p, key.canonical());
    put_u32(&mut p, deps.len() as u32);
    for (name, version) in deps {
        put_str(&mut p, name);
        put_u64(&mut p, *version);
    }
    put_ids(&mut p, &learning.best_order);
    put_u32(&mut p, learning.planned_orders.len() as u32);
    for order in &learning.planned_orders {
        put_ids(&mut p, order);
    }
    let (nodes, rounds) = learning.snapshot.to_parts();
    put_u64(&mut p, rounds);
    put_u32(&mut p, nodes.len() as u32);
    for n in &nodes {
        put_u64(&mut p, n.visits);
        put_u64(&mut p, n.reward_sum.to_bits());
        put_u32(&mut p, n.actions.len() as u32);
        for &a in &n.actions {
            put_u64(&mut p, a as u64);
        }
        for &c in &n.children {
            put_u64(&mut p, c as u64);
        }
    }
    p
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

// ---------------------------------------------------------------------
// Decoding (bounds-checked cursor; any overrun = corrupt record)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn ids(&mut self) -> Option<Vec<TableId>> {
        let n = self.u32()? as usize;
        // Each id is 8 bytes; a count the buffer cannot hold is corrupt.
        if n > (self.buf.len() - self.pos) / 8 {
            return None;
        }
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(usize::try_from(self.u64()?).ok()?);
        }
        Some(ids)
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_record(payload: &[u8]) -> Option<PersistRecord> {
    let mut c = Cursor::new(payload);
    let key = TemplateKey::from_canonical(c.str()?);
    let n_deps = c.u32()? as usize;
    let mut deps = Vec::with_capacity(n_deps.min(1024));
    for _ in 0..n_deps {
        let name = c.str()?;
        let version = c.u64()?;
        deps.push((name, version));
    }
    let best_order = c.ids()?;
    let n_orders = c.u32()? as usize;
    let mut planned_orders = Vec::with_capacity(n_orders.min(1024));
    for _ in 0..n_orders {
        planned_orders.push(c.ids()?);
    }
    let rounds = c.u64()?;
    let n_nodes = c.u32()? as usize;
    // visits + reward + action count = 20 bytes minimum per node.
    if n_nodes > (payload.len() - c.pos) / 20 {
        return None;
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let visits = c.u64()?;
        let reward_sum = f64::from_bits(c.u64()?);
        let n_actions = c.u32()? as usize;
        if n_actions > (payload.len() - c.pos) / 16 {
            return None;
        }
        let mut actions = Vec::with_capacity(n_actions);
        for _ in 0..n_actions {
            actions.push(usize::try_from(c.u64()?).ok()?);
        }
        let mut children = Vec::with_capacity(n_actions);
        for _ in 0..n_actions {
            let raw = c.u64()?;
            children.push(if raw == u64::MAX {
                usize::MAX
            } else {
                usize::try_from(raw).ok()?
            });
        }
        nodes.push(SnapshotNode {
            visits,
            reward_sum,
            actions,
            children,
        });
    }
    if !c.done() {
        // Trailing garbage inside a checksummed record: treat as corrupt
        // rather than silently ignoring bytes.
        return None;
    }
    // `from_parts` re-validates structure, so a record that passes its
    // checksum but encodes a malformed tree is still rejected here.
    let snapshot = TreeSnapshot::from_parts(nodes, rounds)?;
    Some(PersistRecord {
        key,
        deps,
        learning: LearnedState {
            snapshot,
            best_order,
            planned_orders,
        },
    })
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

/// Serialize `entries` to `path` atomically: assemble in `path.tmp`,
/// fsync, rename over `path`, fsync the directory. Returns the record
/// count written. A crash at any point leaves the previous file (or no
/// file) intact.
pub fn save_entries(
    path: &Path,
    entries: &[(TemplateKey, TableDeps, LearnedState)],
) -> io::Result<usize> {
    let tmp = tmp_path(path);
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for (key, deps, learning) in entries {
        let payload = encode_record(key, deps, learning);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&checksum(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);
    }

    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    failpoints::io_check("persist.write")?;
    f.write_all(&buf)?;
    failpoints::io_check("persist.fsync")?;
    f.sync_all()?;
    drop(f);
    failpoints::io_check("persist.rename")?;
    std::fs::rename(&tmp, path)?;
    // Make the rename itself durable. Directory fsync is advisory on
    // some filesystems; failure here cannot un-rename, so best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(entries.len())
}

/// [`save_entries`] with bounded retry and exponential backoff — the
/// treatment for transient I/O errors (the persister must not give up
/// on the first `EIO`, nor retry forever). `attempts` is clamped ≥ 1;
/// the delay doubles after each failure starting from `backoff`.
pub fn save_entries_with_retry(
    path: &Path,
    entries: &[(TemplateKey, TableDeps, LearnedState)],
    attempts: u32,
    backoff: Duration,
) -> io::Result<usize> {
    let attempts = attempts.max(1);
    let mut delay = backoff;
    let mut last = None;
    for i in 0..attempts {
        match save_entries(path, entries) {
            Ok(n) => return Ok(n),
            Err(e) => {
                last = Some(e);
                if i + 1 < attempts {
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("unreachable: no attempt ran")))
}

/// Read every decodable record from `path`. Degradation, not failure:
/// corrupt records are skipped, a torn tail stops the scan, a foreign
/// header loads nothing — all reported in the [`LoadReport`]. Only an
/// I/O error opening/reading the file itself is an `Err`; a missing
/// file is `Ok` with an empty load (fresh start).
pub fn load_entries(path: &Path) -> io::Result<(Vec<PersistRecord>, LoadReport)> {
    let mut report = LoadReport::default();
    failpoints::io_check("persist.read")?;
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), report)),
        Err(e) => return Err(e),
    }

    if buf.len() < 8 || buf[..4] != MAGIC || buf[4..8] != FORMAT_VERSION.to_le_bytes() {
        report.format_mismatch = true;
        return Ok((Vec::new(), report));
    }

    let mut records = Vec::new();
    let mut pos = 8usize;
    while pos < buf.len() {
        // Frame: len u32 | checksum u64 | payload.
        if pos + 12 > buf.len() {
            report.truncated = true;
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
        if len > MAX_RECORD_BYTES || pos + 12 + len > buf.len() {
            // A corrupt length cannot be resynced past; a too-long
            // length is indistinguishable from a torn tail.
            report.truncated = true;
            break;
        }
        let payload = &buf[pos + 12..pos + 12 + len];
        pos += 12 + len;
        if checksum(payload) != want {
            report.corrupt += 1;
            continue;
        }
        match decode_record(payload) {
            Some(r) => {
                records.push(r);
                report.loaded += 1;
            }
            None => report.corrupt += 1,
        }
    }
    Ok((records, report))
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------
// Service integration
// ---------------------------------------------------------------------

impl QueryService {
    /// Persist the learning cache to `path` (atomic write; see module
    /// docs). Returns the number of entries written.
    pub fn save_learning_cache(&self, path: &Path) -> io::Result<usize> {
        save_entries(path, &self.learning_cache().export())
    }

    /// [`save_learning_cache`](Self::save_learning_cache) with bounded
    /// retry + exponential backoff for transient I/O errors.
    pub fn save_learning_cache_with_retry(
        &self,
        path: &Path,
        attempts: u32,
        backoff: Duration,
    ) -> io::Result<usize> {
        save_entries_with_retry(path, &self.learning_cache().export(), attempts, backoff)
    }

    /// Warm-start the learning cache from `path`. Records whose table
    /// versions no longer match the live catalog (or whose tables are
    /// gone) are skipped as `stale`; corrupt/truncated data degrades per
    /// the module docs. Entries are seeded without counting as stores.
    pub fn load_learning_cache(&self, path: &Path) -> io::Result<LoadReport> {
        let (records, mut report) = load_entries(path)?;
        for r in records {
            if !self.deps_are_current(&r.deps) {
                report.loaded -= 1;
                report.stale += 1;
                continue;
            }
            self.learning_cache().seed(r.key, r.deps, r.learning);
        }
        Ok(report)
    }

    /// Persist the knowledge store to `path` (atomic write with its own
    /// magic/format, see [`skinner_knowledge::persist`]). Returns the
    /// number of entries written.
    pub fn save_knowledge(&self, path: &Path) -> io::Result<usize> {
        skinner_knowledge::persist::save(&self.knowledge(), path)
    }

    /// Warm-start the knowledge store from `path`, keeping only entries
    /// whose catalog versions still match the live catalog (others are
    /// reported `stale`); corruption degrades exactly like the learning
    /// cache's loader.
    pub fn load_knowledge(
        &self,
        path: &Path,
    ) -> io::Result<skinner_knowledge::KnowledgeLoadReport> {
        let mut store = self.knowledge();
        skinner_knowledge::persist::load_with(&mut store, path, |name, version| {
            self.table_is_current(name, version)
        })
    }
}

/// The knowledge store's on-disk sibling of a learning-cache file:
/// `<cache path>.knowledge`. Keeping the two formats in separate files
/// lets each keep its own magic, version and corruption domain while
/// operators still manage a single `--cache` location.
pub fn knowledge_path(cache_path: &Path) -> std::path::PathBuf {
    let mut name = cache_path.file_name().unwrap_or_default().to_os_string();
    name.push(".knowledge");
    cache_path.with_file_name(name)
}

/// Background persister: periodically flushes the service's learning
/// cache to disk (atomic + retried) — and the knowledge store to the
/// [`knowledge_path`] sibling — and once more on
/// [`shutdown`](CachePersister::shutdown). Dropping without `shutdown`
/// stops the thread and makes a best-effort final flush.
#[derive(Debug)]
pub struct CachePersister {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    service: Arc<QueryService>,
    path: std::path::PathBuf,
}

impl CachePersister {
    /// Flush every `interval` until shutdown. Flush errors are reported
    /// to stderr and retried at the next tick — a sick disk must not
    /// take the query path down.
    pub fn start(
        service: Arc<QueryService>,
        path: impl Into<std::path::PathBuf>,
        interval: Duration,
    ) -> CachePersister {
        let path = path.into();
        let stop = Arc::new(AtomicBool::new(false));
        let (svc, p, st) = (service.clone(), path.clone(), stop.clone());
        let handle = std::thread::spawn(move || {
            let tick = Duration::from_millis(50).min(interval);
            let mut since_flush = Duration::ZERO;
            while !st.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                since_flush += tick;
                if since_flush >= interval {
                    since_flush = Duration::ZERO;
                    if let Err(e) =
                        svc.save_learning_cache_with_retry(&p, 3, Duration::from_millis(50))
                    {
                        eprintln!("skinner: periodic cache flush failed: {e}");
                    }
                    if let Err(e) = svc.save_knowledge(&knowledge_path(&p)) {
                        eprintln!("skinner: periodic knowledge flush failed: {e}");
                    }
                }
            }
        });
        CachePersister {
            stop,
            handle: Some(handle),
            service,
            path,
        }
    }

    /// Stop the background thread and write a final flush (retried).
    /// Returns the entry count of the final learning-cache flush; the
    /// knowledge store flushes alongside (a knowledge flush error is
    /// reported but does not fail the cache flush).
    pub fn shutdown(mut self) -> io::Result<usize> {
        self.halt();
        if let Err(e) = self.service.save_knowledge(&knowledge_path(&self.path)) {
            eprintln!("skinner: final knowledge flush failed: {e}");
        }
        self.service
            .save_learning_cache_with_retry(&self.path, 3, Duration::from_millis(50))
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CachePersister {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.halt();
            if let Err(e) = self.service.save_learning_cache_with_retry(
                &self.path,
                3,
                Duration::from_millis(50),
            ) {
                eprintln!("skinner: final cache flush failed: {e}");
            }
            if let Err(e) = self.service.save_knowledge(&knowledge_path(&self.path)) {
                eprintln!("skinner: final knowledge flush failed: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_uct::{SearchSpace, UctConfig, UctTree};

    struct Perms {
        n: usize,
    }

    impl SearchSpace for Perms {
        type Action = usize;
        fn actions(&self, path: &[usize]) -> Vec<usize> {
            (0..self.n).filter(|t| !path.contains(t)).collect()
        }
        fn depth(&self) -> usize {
            self.n
        }
    }

    fn learned(seed_rounds: usize) -> LearnedState {
        let mut tree = UctTree::new(Perms { n: 3 }, UctConfig::default());
        for _ in 0..seed_rounds {
            let p = tree.choose();
            let r = if p[0] == 1 { 0.9 } else { 0.2 };
            tree.update(&p, r);
        }
        LearnedState {
            best_order: tree.best_path(),
            snapshot: tree.snapshot(),
            planned_orders: vec![vec![0, 1, 2], vec![1, 0, 2]],
        }
    }

    fn entry(name: &str, rounds: usize) -> (TemplateKey, TableDeps, LearnedState) {
        (
            TemplateKey::from_canonical(format!("[{name}]|{name}.x=?")),
            vec![(name.to_string(), 3)],
            learned(rounds),
        )
    }

    #[test]
    fn record_round_trips() {
        let (key, deps, learning) = entry("t", 50);
        let payload = encode_record(&key, &deps, &learning);
        let r = decode_record(&payload).expect("decode");
        assert_eq!(r.key, key);
        assert_eq!(r.deps, deps);
        assert_eq!(r.learning.best_order, learning.best_order);
        assert_eq!(r.learning.planned_orders, learning.planned_orders);
        assert_eq!(r.learning.snapshot.rounds(), learning.snapshot.rounds());
        assert_eq!(
            r.learning.snapshot.num_nodes(),
            learning.snapshot.num_nodes()
        );
        assert_eq!(
            r.learning.snapshot.to_parts().0,
            learning.snapshot.to_parts().0
        );
    }

    #[test]
    fn file_round_trips_and_missing_file_is_fresh() {
        let dir = std::env::temp_dir().join("skinner_persist_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        let entries = vec![entry("a", 30), entry("b", 60)];
        assert_eq!(save_entries(&path, &entries).unwrap(), 2);
        let (records, report) = load_entries(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(
            report,
            LoadReport {
                loaded: 2,
                ..Default::default()
            }
        );
        // Atomic write leaves no temp file behind.
        assert!(!tmp_path(&path).exists());

        let (none, fresh) = load_entries(&dir.join("absent.bin")).unwrap();
        assert!(none.is_empty());
        assert_eq!(fresh, LoadReport::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_skipped_others_survive() {
        let dir = std::env::temp_dir().join("skinner_persist_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        let entries = vec![entry("a", 30), entry("b", 60), entry("c", 90)];
        save_entries(&path, &entries).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the SECOND record's payload: its checksum
        // fails, records one and three still load.
        let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let second_payload_at = 8 + 12 + first_len + 12;
        bytes[second_payload_at + 5] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (records, report) = load_entries(&path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.corrupt, 1);
        assert!(!report.truncated);
        let names: Vec<&str> = records.iter().map(|r| r.key.canonical()).collect();
        assert_eq!(names, vec!["[a]|a.x=?", "[c]|c.x=?"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_keeps_complete_prefix() {
        let dir = std::env::temp_dir().join("skinner_persist_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        save_entries(&path, &[entry("a", 30), entry("b", 60)]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-way through the second record (simulated torn write).
        let first_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let cut = 8 + 12 + first_len + 15;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (records, report) = load_entries(&path).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(report.truncated);
        assert_eq!(records[0].key.canonical(), "[a]|a.x=?");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_header_loads_nothing() {
        let dir = std::env::temp_dir().join("skinner_persist_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.bin");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00rest").unwrap();
        let (records, report) = load_entries(&path).unwrap();
        assert!(records.is_empty());
        assert!(report.format_mismatch);
        std::fs::remove_dir_all(&dir).ok();
    }
}
