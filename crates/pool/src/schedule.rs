//! # Seeded schedule perturbation (loom-in-spirit, hand-rolled)
//!
//! Correctness of the partitioned join must not depend on *which*
//! worker runs *which* morsel in *what* order — the cursor-folding
//! invariant has to hold under any steal order. This module makes that
//! claim testable without crates.io: when armed with a seed, the pool's
//! scheduling decision points consult a deterministic mixing function
//! of `(seed, global step counter, site tag)` to
//!
//! - inject yields and micro-sleeps before polling, before executing a
//!   morsel, and on the submitter-helps path ([`point`]), shaking up
//!   which thread wins each race; and
//! - replace round-robin batch distribution and rotation-order steal
//!   victims with seeded choices ([`pick`]), so morsels land on and
//!   migrate between workers in adversarial patterns.
//!
//! Unlike loom this does not enumerate interleavings exhaustively — it
//! perturbs real threads — so it is a fuzzer for schedules, not a model
//! checker: each seed explores a different family of interleavings, and
//! the differential suites assert byte-identical tuples and cursors
//! under every seed. Seeds come from [`set_seed`] (tests) or the
//! `SKINNER_SCHED_SEED` environment variable (CI runs the suite under
//! several fixed seeds so failures reproduce).
//!
//! When no seed is armed every hook is a single relaxed atomic load —
//! production pays nothing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Programmatic seed, when [`set_seed`] was called.
static ARMED: AtomicBool = AtomicBool::new(false);
static SEED: AtomicU64 = AtomicU64::new(0);
/// Global decision counter: every consult advances it, so two runs with
/// the same seed still diverge once thread timing differs — the point
/// is adversarial variety, not replay.
static STEP: AtomicU64 = AtomicU64::new(0);

/// `SKINNER_SCHED_SEED`, parsed once.
fn env_seed() -> Option<u64> {
    static ENV: OnceLock<Option<u64>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("SKINNER_SCHED_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
    })
}

/// Arm schedule perturbation with `seed` for the whole process.
pub fn set_seed(seed: u64) {
    SEED.store(seed, Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm the programmatic seed ([`set_seed`]). An environment seed
/// (`SKINNER_SCHED_SEED`) stays in force — CI arms whole test binaries
/// that way.
pub fn clear() {
    ARMED.store(false, Ordering::Relaxed);
}

/// The active seed, if any.
pub fn current() -> Option<u64> {
    if ARMED.load(Ordering::Relaxed) {
        Some(SEED.load(Ordering::Relaxed))
    } else {
        env_seed()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn next(tag: u64) -> Option<u64> {
    let seed = current()?;
    let step = STEP.fetch_add(1, Ordering::Relaxed);
    Some(splitmix64(
        seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag,
    ))
}

/// A scheduling decision point: when armed, sometimes yield the CPU or
/// sleep a few microseconds so a different thread wins the next race.
/// `tag` distinguishes call sites so they perturb independently.
pub fn point(tag: u64) {
    let Some(h) = next(tag) else { return };
    match h % 8 {
        0 => std::thread::yield_now(),
        1 => {
            std::thread::yield_now();
            std::thread::yield_now();
        }
        2 => std::thread::sleep(std::time::Duration::from_micros((h >> 8) % 40)),
        _ => {}
    }
}

/// A seeded choice among `n` alternatives (batch-distribution slot,
/// steal victim); `None` when perturbation is off, letting the caller
/// use its deterministic default.
pub fn pick(n: usize) -> Option<usize> {
    debug_assert!(n > 0);
    next(0x71C7).map(|h| (h % n as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_arms_and_clears() {
        clear();
        set_seed(42);
        assert_eq!(current(), Some(42));
        assert!(pick(8).is_some());
        point(1); // must not hang or panic
        clear();
        // Off (unless the environment armed the whole process).
        if env_seed().is_none() {
            assert_eq!(current(), None);
            assert_eq!(pick(8), None);
        }
    }

    #[test]
    fn picks_stay_in_range() {
        set_seed(0xA11CE);
        for n in 1..16 {
            for _ in 0..64 {
                let p = pick(n).expect("armed");
                assert!(p < n);
            }
        }
        clear();
    }
}
