//! # Persistent morsel-driven worker pool
//!
//! One long-lived, service-wide pool of OS threads executing *morsels*
//! — small, owned units of work (in the engine: one offset chunk of a
//! partitioned join slice). Replaces per-slice `std::thread::scope`
//! spawning: SkinnerDB switches join orders every few hundred steps, so
//! any fixed per-slice overhead is paid thousands of times per query,
//! and thread spawn/join was the dominant fixed cost
//! (`BENCH_join.json` showed 1.13× at 4 threads before the pool).
//!
//! ## Design
//!
//! - **Work stealing.** Each worker owns a deque; batches are pushed
//!   round-robin across deques. A worker pops its own deque from the
//!   front and steals from the back of a victim chosen by rotation (or
//!   by the seeded schedule, see [`schedule`]). Morsels are coarse
//!   (hundreds of join steps), so lock-based deques are far below
//!   noise; what matters is that no thread is ever spawned on the hot
//!   path.
//! - **Scoped batches over persistent threads.**
//!   [`WorkerPool::run_batch_mut`] submits one task per slice of a
//!   `&mut [T]` and *blocks until every task has completed*. Because
//!   the call cannot return (normally or by unwind) before the last
//!   task finishes, tasks may safely borrow from the submitting stack
//!   frame even though the worker threads are `'static` — the same
//!   soundness argument as `std::thread::scope`, with the spawn/join
//!   pair replaced by enqueue/wait on long-lived workers. The unsafe
//!   lifetime erasure lives entirely in this crate; the engine stays
//!   `#![forbid(unsafe_code)]`.
//! - **The submitter helps.** While its batch is pending the calling
//!   thread drains *its own* morsels from the deques alongside the
//!   workers (classic morsel-driven design: the query thread is itself
//!   a worker). This guarantees progress even if every pool worker is
//!   busy with another query's batch, and makes a 1-worker pool on a
//!   1-core host degrade to almost exactly the sequential path.
//! - **Cross-query sharing.** Any number of threads may submit batches
//!   concurrently; their morsels interleave in the deques. Admission
//!   (how many morsels a query may have in flight ≈ its chunk fan-out)
//!   is decided upstream by the service's `CoreBudget` grant; the pool
//!   itself never blocks a submitter behind another query.
//! - **Panic = replace.** A morsel panic is caught, recorded on the
//!   batch, and re-raised on the submitting thread *after* the rest of
//!   the batch completes (mirroring `std::thread::scope` join-then-
//!   propagate semantics). The worker that hosted the panic is retired
//!   and a replacement thread is spawned immediately, so the pool
//!   always returns to full strength ([`WorkerPool::live_workers`]).
//!
//! ## Determinism contract
//!
//! The pool intentionally guarantees **nothing** about execution order.
//! Correctness of partitioned join slices instead comes from the
//! engine's invariant that morsels are independent: each chunk runs a
//! deterministic kernel on a private cursor and private output shard,
//! and shards merge in chunk order on the submitting thread. The
//! [`schedule`] module exists to *attack* that invariant in tests:
//! seeded yield/steal-order perturbation drives the differential suite
//! across adversarial interleavings.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

pub mod schedule;

/// A type-erased, lifetime-erased morsel plus the batch it belongs to.
struct RawTask {
    /// The closure to run. Lifetime-erased to `'static`; soundness is
    /// owed by [`WorkerPool::run_batch_mut`], which never returns until
    /// the closure has been consumed.
    run: Box<dyn FnOnce() + Send + 'static>,
    batch: Arc<BatchState>,
}

impl RawTask {
    /// Execute the morsel, catching a panic and recording completion
    /// (and the first panic payload) on the batch. Returns the panic
    /// payload presence so workers can retire themselves.
    fn execute(self) -> bool {
        let RawTask { run, batch } = self;
        // UnwindSafe: on panic the task's `&mut` scratch may be left
        // half-written, but the submitter re-raises the panic before
        // reading any outcome — the same contract scoped threads had.
        let result = catch_unwind(AssertUnwindSafe(run));
        match result {
            Ok(()) => {
                batch.complete(None);
                false
            }
            Err(payload) => {
                batch.complete(Some(payload));
                true
            }
        }
    }
}

/// Completion state of one submitted batch.
struct BatchState {
    progress: Mutex<BatchProgress>,
    cv: Condvar,
}

struct BatchProgress {
    remaining: usize,
    /// First panic payload observed; re-raised by the submitter.
    panic: Option<Box<dyn Any + Send>>,
}

impl BatchState {
    fn new(n: usize) -> Arc<BatchState> {
        Arc::new(BatchState {
            progress: Mutex::new(BatchProgress {
                remaining: n,
                panic: None,
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, BatchProgress> {
        self.progress.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut p = self.lock();
        p.remaining -= 1;
        if p.panic.is_none() {
            p.panic = panic;
        }
        if p.remaining == 0 {
            self.cv.notify_all();
        }
    }

    /// Block until every task in the batch has completed.
    fn wait(&self) {
        let mut p = self.lock();
        while p.remaining > 0 {
            p = self.cv.wait(p).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.lock().panic.take()
    }
}

struct PoolSync {
    /// Tasks currently sitting in some deque (not yet grabbed).
    pending: usize,
    shutdown: bool,
}

struct Inner {
    /// One deque per worker slot; submitters push round-robin (or
    /// schedule-seeded), workers pop their own front and steal from
    /// victims' backs.
    queues: Vec<Mutex<VecDeque<RawTask>>>,
    sync: Mutex<PoolSync>,
    cv: Condvar,
    /// Round-robin cursor for batch distribution.
    rr: AtomicUsize,
    /// OS threads ever spawned by this pool (initial + replacements).
    spawned: AtomicU64,
    /// Workers retired after hosting a panicking morsel and replaced.
    replaced: AtomicU64,
    /// Morsel panics caught (each is re-raised on its submitter).
    task_panics: AtomicU64,
    /// Currently running worker threads.
    live: AtomicUsize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Inner {
    fn lock_sync(&self) -> MutexGuard<'_, PoolSync> {
        self.sync.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_queue(&self, q: usize) -> MutexGuard<'_, VecDeque<RawTask>> {
        self.queues[q]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn dec_pending(&self) {
        let mut s = self.lock_sync();
        // Underflow here would mean a task became visible in a deque
        // before `push_batch` accounted for it — the lost decrement
        // would leave `pending` permanently positive and every idle
        // worker busy-spinning. Fail loudly instead.
        s.pending = s
            .pending
            .checked_sub(1)
            .expect("pool pending underflow: task popped before it was accounted");
    }

    /// Push a whole batch of tasks, distributing across deques, and
    /// wake the workers.
    fn push_batch(&self, tasks: Vec<RawTask>) {
        let n = self.queues.len();
        // Account for the tasks BEFORE any becomes visible in a deque:
        // a worker that popped one first would drive `pending` below
        // zero and the lost decrement would corrupt the idle/wait
        // protocol. The transient over-count is benign — a worker that
        // wakes before the pushes land finds nothing, re-checks under
        // the sync lock, and retries until the deques catch up (a
        // window bounded by this loop).
        {
            let mut s = self.lock_sync();
            s.pending += tasks.len();
        }
        for task in tasks {
            let q = match schedule::pick(n) {
                Some(victim) => victim,
                None => self.rr.fetch_add(1, Ordering::Relaxed) % n,
            };
            self.lock_queue(q).push_back(task);
        }
        self.cv.notify_all();
    }

    /// Take one task: own deque first (front = FIFO within a worker),
    /// then steal from victims' backs in rotation order — the starting
    /// victim is schedule-seeded when perturbation is armed.
    fn grab(&self, idx: usize) -> Option<RawTask> {
        if let Some(t) = self.pop_at(idx, true) {
            return Some(t);
        }
        let n = self.queues.len();
        let start = schedule::pick(n).unwrap_or((idx + 1) % n);
        for off in 0..n {
            let victim = (start + off) % n;
            if victim == idx {
                continue;
            }
            if let Some(t) = self.pop_at(victim, false) {
                return Some(t);
            }
        }
        None
    }

    fn pop_at(&self, q: usize, front: bool) -> Option<RawTask> {
        let task = {
            let mut dq = self.lock_queue(q);
            if front {
                dq.pop_front()
            } else {
                dq.pop_back()
            }
        }?;
        self.dec_pending();
        Some(task)
    }

    /// Take one task belonging to `batch` from any deque (the
    /// submitter-helps path: a submitter only ever executes its own
    /// morsels, so it can never be captured by another query's batch).
    fn grab_for_batch(&self, batch: &Arc<BatchState>) -> Option<RawTask> {
        for q in 0..self.queues.len() {
            let task = {
                let mut dq = self.lock_queue(q);
                match dq.iter().position(|t| Arc::ptr_eq(&t.batch, batch)) {
                    Some(pos) => dq.remove(pos),
                    None => None,
                }
            };
            if let Some(task) = task {
                self.dec_pending();
                return Some(task);
            }
        }
        None
    }
}

fn worker_loop(inner: Arc<Inner>, idx: usize) {
    loop {
        schedule::point(0x1D7E);
        if let Some(task) = inner.grab(idx) {
            schedule::point(0xE8EC);
            let panicked = task.execute();
            if panicked {
                // Retire this worker and bring up a replacement: the
                // pool always returns to full strength, and a fresh
                // stack hosts the next morsel. The shutdown check and
                // the replacement's handle registration happen under
                // the same sync lock `Drop` holds to set `shutdown`,
                // so a replacement either lands in `handles` before
                // Drop drains them (and is joined) or is never spawned
                // — no handle can leak past Drop's join-all.
                inner.task_panics.fetch_add(1, Ordering::Relaxed);
                let s = inner.lock_sync();
                if !s.shutdown {
                    inner.replaced.fetch_add(1, Ordering::Relaxed);
                    spawn_worker(&inner, idx);
                }
                drop(s);
                return;
            }
            continue;
        }
        let mut s = inner.lock_sync();
        loop {
            if s.shutdown {
                return;
            }
            if s.pending > 0 {
                break;
            }
            s = inner.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

fn spawn_worker(inner: &Arc<Inner>, idx: usize) {
    inner.spawned.fetch_add(1, Ordering::Relaxed);
    inner.live.fetch_add(1, Ordering::Relaxed);
    let worker_inner = inner.clone();
    let handle = std::thread::Builder::new()
        .name(format!("skinner-pool-{idx}"))
        .spawn(move || {
            // Decrement `live` however the worker exits (including the
            // panic-retire path, which returns normally after arranging
            // its replacement).
            struct ExitGuard(Arc<Inner>);
            impl Drop for ExitGuard {
                fn drop(&mut self) {
                    self.0.live.fetch_sub(1, Ordering::Relaxed);
                }
            }
            let guard = ExitGuard(worker_inner.clone());
            worker_loop(worker_inner, idx);
            drop(guard);
        })
        .expect("spawn pool worker");
    inner
        .handles
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(handle);
}

/// A persistent pool of worker threads executing morsel batches. See
/// the [crate docs](crate) for the design and soundness argument.
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("live", &self.live_workers())
            .field("spawned", &self.spawned())
            .finish()
    }
}

impl WorkerPool {
    /// Pool with `workers` threads (clamped to ≥ 1), spawned eagerly.
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            sync: Mutex::new(PoolSync {
                pending: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            rr: AtomicUsize::new(0),
            spawned: AtomicU64::new(0),
            replaced: AtomicU64::new(0),
            task_panics: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        });
        for idx in 0..workers {
            spawn_worker(&inner, idx);
        }
        Arc::new(WorkerPool { inner, workers })
    }

    /// The process-wide shared pool, sized to the host's available
    /// parallelism, created on first use. This is what the engine uses
    /// when no pool is wired explicitly (standalone `MultiwayJoin`
    /// users, benches); the service owns its own pool sized to its
    /// core budget.
    pub fn global() -> Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                WorkerPool::new(cores)
            })
            .clone()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker threads currently running (== `workers()` at rest; dips
    /// transiently while a panicked worker's replacement spawns).
    pub fn live_workers(&self) -> usize {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// OS threads ever spawned by this pool: the initial `workers()`
    /// plus one per replaced worker. The engine records the per-run
    /// delta as `ExecMetrics::thread_spawns` — zero after warm-up is
    /// the pool-reuse proof.
    pub fn spawned(&self) -> u64 {
        self.inner.spawned.load(Ordering::Relaxed)
    }

    /// Workers retired after hosting a panicking morsel (each was
    /// replaced by a fresh thread).
    pub fn replaced(&self) -> u64 {
        self.inner.replaced.load(Ordering::Relaxed)
    }

    /// Morsel panics caught so far (re-raised on their submitters).
    pub fn task_panics(&self) -> u64 {
        self.inner.task_panics.load(Ordering::Relaxed)
    }

    /// Run `f(i, &mut items[i])` for every `i`, distributing the items
    /// as morsels over the pool (the submitting thread helps), and
    /// block until all complete. If any morsel panicked, the first
    /// payload is re-raised here after the rest of the batch finishes —
    /// the same join-then-propagate semantics as `std::thread::scope`.
    ///
    /// Borrows in `f` and `items` are sound for the same reason scoped
    /// threads are: this function cannot return, normally or by
    /// unwinding, until every task has been consumed. The wait loop is
    /// straight-line code whose only panic source (mutex poisoning) is
    /// recovered, and workers always record completion — on success,
    /// panic, or shutdown drain — via the batch's completion protocol.
    pub fn run_batch_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Send + Sync,
    {
        let n = items.len();
        if n == 0 {
            return;
        }
        if n == 1 {
            f(0, &mut items[0]);
            return;
        }
        let batch = BatchState::new(n);
        let mut tasks = Vec::with_capacity(n);
        let base = items.as_mut_ptr();
        for i in 0..n {
            // SAFETY: indices are disjoint, so each task gets an
            // exclusive `&mut` to its own element; the erased lifetime
            // never escapes this call (see the blocking argument above).
            let item: &mut T = unsafe { &mut *base.add(i) };
            let fref: &F = &f;
            let run: Box<dyn FnOnce() + Send + '_> = Box::new(move || fref(i, item));
            // SAFETY: lifetime erasure only; the closure is consumed
            // before `run_batch_mut` returns.
            let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
            tasks.push(RawTask {
                run,
                batch: batch.clone(),
            });
        }
        self.inner.push_batch(tasks);
        // Morsel-driven: the submitter is a worker too. It only ever
        // takes its own batch's morsels, so progress is guaranteed even
        // when every pool worker is grinding another query.
        while let Some(task) = self.inner.grab_for_batch(&batch) {
            schedule::point(0x5E1F);
            if task.execute() {
                self.inner.task_panics.fetch_add(1, Ordering::Relaxed);
            }
        }
        batch.wait();
        if let Some(payload) = batch.take_panic() {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut s = self.inner.lock_sync();
            s.shutdown = true;
        }
        self.inner.cv.notify_all();
        let handles = std::mem::take(
            &mut *self
                .inner
                .handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
        // Workers exit on shutdown even with tasks still queued; run
        // any stragglers here so no submitter can be left waiting on a
        // batch (there are none by construction — `run_batch_mut`
        // borrows `&self` — but a drained queue is cheap insurance).
        for q in 0..self.inner.queues.len() {
            while let Some(task) = self.inner.pop_at(q, true) {
                let _ = task.execute();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn batch_runs_every_item_exactly_once() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u32> = vec![0; 64];
        pool.run_batch_mut(&mut items, |i, slot| *slot = i as u32 + 1);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn borrowed_environment_is_visible_to_workers() {
        let pool = WorkerPool::new(2);
        let base = [10u64, 20, 30, 40, 50, 60, 70, 80];
        let sum = AtomicU64::new(0);
        let mut items = vec![0u64; base.len()];
        pool.run_batch_mut(&mut items, |i, slot| {
            *slot = base[i] * 2;
            sum.fetch_add(base[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), base.iter().sum::<u64>());
        assert_eq!(items[7], 160);
    }

    #[test]
    fn panicking_morsel_propagates_after_batch_completes() {
        let pool = WorkerPool::new(2);
        let done = AtomicU32::new(0);
        let mut items = vec![0u8; 8];
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch_mut(&mut items, |i, _slot| {
                if i == 3 {
                    panic!("morsel 3 dies");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(r.is_err(), "batch panic must propagate to the submitter");
        // Every non-panicking sibling still ran (join-then-propagate).
        assert_eq!(done.load(Ordering::Relaxed), 7);
        // The pool recovered to full strength and still works.
        wait_full_strength(&pool);
        pool.run_batch_mut(&mut items, |_i, slot| *slot = 1);
        assert!(items.iter().all(|&v| v == 1));
        assert!(pool.task_panics() >= 1);
    }

    #[test]
    fn panicked_workers_are_replaced() {
        let pool = WorkerPool::new(3);
        let spawned_before = pool.spawned();
        for round in 0..4 {
            let mut items = vec![0u8; 6];
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run_batch_mut(&mut items, |i, _slot| {
                    if i == round {
                        panic!("round {round} morsel {i}");
                    }
                });
            }));
            assert!(r.is_err());
        }
        wait_full_strength(&pool);
        assert_eq!(pool.live_workers(), pool.workers());
        // At least one panic landed on a pool worker across 4 rounds
        // (the submitter-helps path absorbs some without retiring).
        assert!(pool.spawned() >= spawned_before);
        assert_eq!(pool.task_panics(), 4);
    }

    #[test]
    fn concurrent_batches_from_many_submitters() {
        let pool = WorkerPool::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for s in 0..8u64 {
                let pool = &pool;
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..20 {
                        let mut items = vec![0u64; 8];
                        pool.run_batch_mut(&mut items, |i, slot| {
                            *slot = s * 1000 + i as u64;
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                        for (i, v) in items.iter().enumerate() {
                            assert_eq!(*v, s * 1000 + i as u64);
                        }
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 8 * 20 * 8);
    }

    #[test]
    fn no_spawns_after_warmup() {
        let pool = WorkerPool::new(2);
        let mut items = vec![0u32; 16];
        pool.run_batch_mut(&mut items, |_i, slot| *slot += 1);
        let spawned = pool.spawned();
        for _ in 0..50 {
            pool.run_batch_mut(&mut items, |_i, slot| *slot += 1);
        }
        assert_eq!(pool.spawned(), spawned, "pool must reuse its threads");
        assert_eq!(pool.spawned(), pool.workers() as u64);
    }

    #[test]
    fn perturbed_schedules_do_not_change_results() {
        let pool = WorkerPool::new(3);
        let reference: Vec<u64> = (0..32).map(|i| i * 7 + 1).collect();
        for seed in [1u64, 0xDEAD, 0x5EED5EED] {
            schedule::set_seed(seed);
            let mut items = vec![0u64; 32];
            pool.run_batch_mut(&mut items, |i, slot| *slot = i as u64 * 7 + 1);
            assert_eq!(items, reference, "seed {seed:#x} changed results");
        }
        schedule::clear();
    }

    /// Replacement spawns are racy by nature; poll briefly.
    fn wait_full_strength(pool: &WorkerPool) {
        for _ in 0..500 {
            if pool.live_workers() >= pool.workers() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!(
            "pool never returned to full strength: {}/{}",
            pool.live_workers(),
            pool.workers()
        );
    }
}
