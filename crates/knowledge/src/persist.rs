//! Crash-safe persistence of the knowledge store.
//!
//! Same durability contract as the service layer's learning-cache
//! persistence, applied to the knowledge store's (much smaller)
//! entries:
//!
//! ```text
//! header : magic "SKKS" | format version u32
//! record : payload len u32 | FxHasher checksum of payload u64 | payload
//! payload: tag u8 (0 = table entry, 1 = edge entry, 2 = reward scale)
//!          fingerprint string (empty for the scale record)
//!          table: name, version, sel_sum bits, count
//!          edge : deps (name, version)*, fwd share sum bits + count,
//!                 rev share sum bits + count
//!          scale: ln(per-run mean reward) sum bits, run count
//! ```
//!
//! All integers little-endian, strings u32-length-prefixed UTF-8.
//! Writes are atomic (`.tmp` sibling + fsync + rename + directory
//! fsync); the loader skips corrupt records, stops at a torn tail, and
//! loads nothing from a foreign header — corruption costs some priors,
//! never availability. Fault-injection sites: `knowledge.read`,
//! `knowledge.write`, `knowledge.fsync`, `knowledge.rename` (see
//! [`skinner_engine::failpoints`]).

use crate::store::{EdgeStat, KnowledgeStore, TableStat};
use skinner_engine::failpoints;
use skinner_storage::hash::FxHasher;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic: "SKinner Knowledge Store".
const MAGIC: [u8; 4] = *b"SKKS";
/// Format version; bump on any wire change (old files then load empty).
const FORMAT_VERSION: u32 = 1;
/// Upper bound on a single record's payload (a corrupt length prefix
/// must not trigger an absurd allocation).
const MAX_RECORD_BYTES: usize = 1 << 20;

const TAG_TABLE: u8 = 0;
const TAG_EDGE: u8 = 1;
const TAG_SCALE: u8 = 2;

/// What a load pass observed, mirroring the learning cache's report so
/// operators can tell "clean start" from "survived corruption".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnowledgeLoadReport {
    /// Entries decoded and seeded into the store.
    pub loaded: usize,
    /// Records skipped: checksum mismatch or undecodable payload.
    pub corrupt: usize,
    /// Entries skipped because their catalog versions no longer match.
    pub stale: usize,
    /// True if the file ended mid-record (torn tail after a crash).
    pub truncated: bool,
    /// True if the file had a foreign magic or format version.
    pub format_mismatch: bool,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_table(fingerprint: &str, s: &TableStat) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    p.push(TAG_TABLE);
    put_str(&mut p, fingerprint);
    put_str(&mut p, &s.name);
    put_u64(&mut p, s.version);
    put_u64(&mut p, s.sel_sum.to_bits());
    put_u64(&mut p, s.count);
    p
}

fn encode_edge(fingerprint: &str, s: &EdgeStat) -> Vec<u8> {
    let mut p = Vec::with_capacity(96);
    p.push(TAG_EDGE);
    put_str(&mut p, fingerprint);
    put_u32(&mut p, s.deps.len() as u32);
    for (name, version) in &s.deps {
        put_str(&mut p, name);
        put_u64(&mut p, *version);
    }
    put_u64(&mut p, s.fwd.0.to_bits());
    put_u64(&mut p, s.fwd.1);
    put_u64(&mut p, s.rev.0.to_bits());
    put_u64(&mut p, s.rev.1);
    p
}

fn encode_scale(sum: f64, runs: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(32);
    p.push(TAG_SCALE);
    put_str(&mut p, "");
    put_u64(&mut p, sum.to_bits());
    put_u64(&mut p, runs);
    p
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(payload);
    h.finish()
}

// ---------------------------------------------------------------------
// Decoding (bounds-checked cursor; any overrun = corrupt record)
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes(b.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// One decoded entry.
#[derive(Debug, Clone)]
enum Decoded {
    Table(String, TableStat),
    Edge(String, EdgeStat),
    Scale(f64, u64),
}

fn decode_record(payload: &[u8]) -> Option<Decoded> {
    let mut c = Cursor::new(payload);
    let tag = c.u8()?;
    let fingerprint = c.str()?;
    let decoded = match tag {
        TAG_TABLE => {
            let name = c.str()?;
            let version = c.u64()?;
            let sel_sum = f64::from_bits(c.u64()?);
            let count = c.u64()?;
            if !sel_sum.is_finite() || sel_sum < 0.0 {
                return None;
            }
            Decoded::Table(
                fingerprint,
                TableStat {
                    name,
                    version,
                    sel_sum,
                    count,
                },
            )
        }
        TAG_EDGE => {
            let n_deps = c.u32()? as usize;
            if n_deps > 16 {
                return None;
            }
            let mut deps = Vec::with_capacity(n_deps);
            for _ in 0..n_deps {
                let name = c.str()?;
                let version = c.u64()?;
                deps.push((name, version));
            }
            let fwd = (f64::from_bits(c.u64()?), c.u64()?);
            let rev = (f64::from_bits(c.u64()?), c.u64()?);
            if !fwd.0.is_finite() || !rev.0.is_finite() {
                return None;
            }
            Decoded::Edge(fingerprint, EdgeStat { deps, fwd, rev })
        }
        TAG_SCALE => {
            // A log-sum: negative for sub-1.0 per-run means.
            let sum = f64::from_bits(c.u64()?);
            let runs = c.u64()?;
            if !sum.is_finite() {
                return None;
            }
            Decoded::Scale(sum, runs)
        }
        _ => return None,
    };
    if !c.done() {
        // Trailing garbage inside a checksummed record: corrupt.
        return None;
    }
    Some(decoded)
}

// ---------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------

/// Serialize the store to `path` atomically (assemble in `path.tmp`,
/// fsync, rename, fsync the directory). Returns the entry count
/// written. A crash at any point leaves the previous file (or no file)
/// intact.
pub fn save(store: &KnowledgeStore, path: &Path) -> io::Result<usize> {
    let (tables, edges) = store.export();
    let tmp = tmp_path(path);
    let mut buf = Vec::with_capacity(4096);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let mut n = 0usize;
    let (scale_sum, scale_runs) = store.scale_raw();
    if scale_runs > 0 {
        frame(&mut buf, &encode_scale(scale_sum, scale_runs));
    }
    for (fp, s) in &tables {
        frame(&mut buf, &encode_table(fp, s));
        n += 1;
    }
    for (fp, s) in &edges {
        frame(&mut buf, &encode_edge(fp, s));
        n += 1;
    }

    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    failpoints::io_check("knowledge.write")?;
    f.write_all(&buf)?;
    failpoints::io_check("knowledge.fsync")?;
    f.sync_all()?;
    drop(f);
    failpoints::io_check("knowledge.rename")?;
    std::fs::rename(&tmp, path)?;
    // Best-effort directory fsync: failure here cannot un-rename.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(n)
}

fn frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Load every decodable entry from `path` into `store`, keeping only
/// entries whose every `(table, version)` dependency satisfies
/// `is_current`. Degradation, not failure: corrupt records are skipped,
/// a torn tail stops the scan, a foreign header loads nothing. A
/// missing file is a fresh start. Only an I/O error reading the file
/// itself is an `Err`.
pub fn load_with(
    store: &mut KnowledgeStore,
    path: &Path,
    is_current: impl Fn(&str, u64) -> bool,
) -> io::Result<KnowledgeLoadReport> {
    let mut report = KnowledgeLoadReport::default();
    failpoints::io_check("knowledge.read")?;
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    }

    if buf.len() < 8 || buf[..4] != MAGIC || buf[4..8] != FORMAT_VERSION.to_le_bytes() {
        report.format_mismatch = true;
        return Ok(report);
    }

    let mut pos = 8usize;
    while pos < buf.len() {
        // Frame: len u32 | checksum u64 | payload.
        if pos + 12 > buf.len() {
            report.truncated = true;
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let want = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
        if len > MAX_RECORD_BYTES || pos + 12 + len > buf.len() {
            report.truncated = true;
            break;
        }
        let payload = &buf[pos + 12..pos + 12 + len];
        pos += 12 + len;
        if checksum(payload) != want {
            report.corrupt += 1;
            continue;
        }
        match decode_record(payload) {
            Some(Decoded::Table(fp, s)) => {
                if is_current(&s.name, s.version) {
                    store.seed_table_entry(fp, s);
                    report.loaded += 1;
                } else {
                    report.stale += 1;
                }
            }
            Some(Decoded::Edge(fp, s)) => {
                if s.deps.iter().all(|(n, v)| is_current(n, *v)) {
                    store.seed_edge_entry(fp, s);
                    report.loaded += 1;
                } else {
                    report.stale += 1;
                }
            }
            Some(Decoded::Scale(sum, runs)) => {
                // Calibration, not an entry: merged, never counted.
                store.seed_scale_entry(sum, runs);
            }
            None => report.corrupt += 1,
        }
    }
    Ok(report)
}

/// [`load_with`] accepting every catalog version (offline tools).
pub fn load(store: &mut KnowledgeStore, path: &Path) -> io::Result<KnowledgeLoadReport> {
    load_with(store, path, |_, _| true)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeStore {
        let mut store = KnowledgeStore::default();
        store.seed_table_entry(
            "tbl:a|(c1Lt?)".into(),
            TableStat {
                name: "a".into(),
                version: 3,
                sel_sum: 0.5,
                count: 2,
            },
        );
        store.seed_table_entry(
            "tbl:b|".into(),
            TableStat {
                name: "b".into(),
                version: 1,
                sel_sum: 1.5,
                count: 2,
            },
        );
        store.seed_edge_entry(
            "edge:a(c0)~b(c0)|single".into(),
            EdgeStat {
                deps: vec![("a".into(), 3), ("b".into(), 1)],
                fwd: (3.0, 5),
                rev: (0.5, 4),
            },
        );
        store
    }

    fn dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(name);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trips_and_missing_file_is_fresh() {
        let d = dir("skinner_knowledge_rt");
        let path = d.join("knowledge.bin");
        let store = sample();
        assert_eq!(save(&store, &path).unwrap(), 3);
        assert!(!tmp_path(&path).exists(), "atomic write leaves no tmp");

        let mut back = KnowledgeStore::default();
        let report = load(&mut back, &path).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(report.corrupt, 0);
        assert_eq!(back.export(), store.export());

        let mut fresh = KnowledgeStore::default();
        let none = load(&mut fresh, &d.join("absent.bin")).unwrap();
        assert_eq!(none, KnowledgeLoadReport::default());
        assert!(fresh.is_empty());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn reward_scale_round_trips_and_merges() {
        let d = dir("skinner_knowledge_scale");
        let path = d.join("knowledge.bin");
        let mut store = sample();
        store.seed_scale_entry(5.0 * 0.1f64.ln(), 5);
        // The scale record rides along without counting as an entry.
        assert_eq!(save(&store, &path).unwrap(), 3);

        let mut back = KnowledgeStore::default();
        back.seed_scale_entry(5.0 * 0.4f64.ln(), 5);
        let report = load(&mut back, &path).unwrap();
        assert_eq!(report.loaded, 3);
        // Log-sum accumulators merge; the geometric mean of five 0.1
        // runs and five 0.4 runs is sqrt(0.1 * 0.4) = 0.2, scaled by
        // the conservative 1/16 calibration factor.
        assert_eq!(back.scale_raw().1, 10);
        assert!((back.reward_scale() - 0.2 / 16.0).abs() < 1e-12);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn torn_tail_keeps_complete_prefix() {
        let d = dir("skinner_knowledge_torn");
        let path = d.join("knowledge.bin");
        save(&sample(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut mid-way through the final record (simulated torn write).
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let mut back = KnowledgeStore::default();
        let report = load(&mut back, &path).unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.truncated);
        assert_eq!(back.len(), (2, 0));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn corrupt_record_is_skipped_others_survive() {
        let d = dir("skinner_knowledge_corrupt");
        let path = d.join("knowledge.bin");
        save(&sample(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the FIRST record's payload.
        let first_payload_at = 8 + 12;
        bytes[first_payload_at + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut back = KnowledgeStore::default();
        let report = load(&mut back, &path).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.corrupt, 1);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn stale_versions_are_filtered_at_load() {
        let d = dir("skinner_knowledge_stale");
        let path = d.join("knowledge.bin");
        save(&sample(), &path).unwrap();
        let mut back = KnowledgeStore::default();
        // Table `a` was re-registered since the save: its selectivity
        // entry and the a~b edge are stale, b's entry survives.
        let report = load_with(&mut back, &path, |name, version| {
            (name, version) != ("a", 3)
        })
        .unwrap();
        assert_eq!(report.loaded, 1);
        assert_eq!(report.stale, 2);
        assert_eq!(back.len(), (1, 0));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn foreign_header_loads_nothing() {
        let d = dir("skinner_knowledge_magic");
        let path = d.join("knowledge.bin");
        std::fs::write(&path, b"NOPE\x01\x00\x00\x00rest").unwrap();
        let mut back = KnowledgeStore::default();
        let report = load(&mut back, &path).unwrap();
        assert!(back.is_empty());
        assert!(report.format_mismatch);
        std::fs::remove_dir_all(&d).ok();
    }
}
