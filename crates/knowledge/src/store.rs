//! The knowledge store: observation capture, accumulation, and prior
//! seeding.
//!
//! Three moving parts, in execution order:
//!
//! 1. [`observe`] — after a run, pair the query's coarse fingerprints
//!    with what the engine measured: per-table survivor counts and
//!    directed per-edge reward sums.
//! 2. [`KnowledgeStore::record`] — fold an [`Observation`] into the
//!    store, resetting any entry whose catalog versions moved.
//! 3. [`KnowledgeStore::seed`] — before a cold run, translate matching
//!    entries back into the query's local [`TableId`] space as an
//!    [`ArmPriors`] table (root arms from precedence + selectivity
//!    signals, depth-1 arms from directed edge *shares* — scale-free
//!    preferences, see [`KnowledgeStore::seed`]).
//!
//! Seeding is *optimistic initialization only*: every estimate lands in
//! `[0, 1]`, unknown arms inherit the best known estimate, and no arm is
//! ever removed — so UCT's regret-bound exploration guarantee (and the
//! result set) is untouched; only the order of exploration shifts.

use skinner_engine::ExecMetrics;
use skinner_query::{join_edges, table_fingerprint, Query, TableId};
use skinner_storage::FxHashMap;
use skinner_uct::{ArmPriors, PriorEntry};

/// Tuning knobs for a [`KnowledgeStore`].
#[derive(Debug, Clone, Copy)]
pub struct KnowledgeConfig {
    /// Upper bound on entries per map (tables and edges separately).
    /// At capacity, inserting a new key evicts the least-observed entry.
    pub capacity: usize,
    /// Virtual visit count per seeded arm — how strongly priors bias
    /// early exploration before real rewards wash them out. Keep this
    /// *small*: Skinner-C's near-greedy UCB1 means every extra virtual
    /// visit is inertia the engine must grind through real slices to
    /// overcome when a prior is wrong, and the cost compounds across
    /// tree levels (a root arm's mean is dragged by unexplored depth-1
    /// arms beneath it). At `1`, priors order the first trial of each
    /// arm and one real slice per arm already outvotes them — they
    /// steer exploration without ever out-shouting measurements.
    pub prior_weight: u64,
}

impl Default for KnowledgeConfig {
    fn default() -> Self {
        KnowledgeConfig {
            capacity: 4096,
            prior_weight: 1,
        }
    }
}

/// Accumulated selectivity statistics for one table fingerprint.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStat {
    /// Catalog table name (also embedded in the fingerprint).
    pub name: String,
    /// Catalog version of the table the statistics were learned on.
    pub version: u64,
    /// Sum of observed selectivities (`filtered / base` per run).
    pub sel_sum: f64,
    /// Number of runs folded in.
    pub count: u64,
}

impl TableStat {
    /// Mean observed selectivity in `[0, 1]`.
    pub fn mean_selectivity(&self) -> f64 {
        if self.count == 0 {
            return 1.0;
        }
        (self.sel_sum / self.count as f64).clamp(0.0, 1.0)
    }
}

/// Accumulated directed statistics for one join-edge fingerprint.
///
/// `fwd` covers slices where the fingerprint's first-listed side
/// preceded the second in the chosen join order; `rev` the opposite
/// direction. Each pair holds `(share_sum, slice_count)`: every
/// recorded run contributes **one normalized vote** — its within-run
/// directed reward share, `fwd_rewards / (fwd_rewards + rev_rewards)`
/// — split between `fwd.0` and `rev.0`. Normalizing per run keeps
/// queries with large absolute rewards (reward scale varies by orders
/// of magnitude with data size) from drowning out everyone else's
/// evidence in the cross-template aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeStat {
    /// `(table name, version)` of both sides, in fingerprint order.
    pub deps: Vec<(String, u64)>,
    /// First-listed side earlier: `(share_sum, slice_count)`.
    pub fwd: (f64, u64),
    /// Second-listed side earlier: `(share_sum, slice_count)`.
    pub rev: (f64, u64),
}

/// One run's knowledge extract for a single table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableObs {
    /// Cross-template key (see [`table_fingerprint`]).
    pub fingerprint: String,
    /// Catalog table name.
    pub name: String,
    /// Catalog version of the table at run time.
    pub version: u64,
    /// Rows surviving the table's unary predicates.
    pub filtered: u64,
    /// Base row count.
    pub base: u64,
}

/// One run's knowledge extract for a single join edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeObs {
    /// Cross-template key (see [`join_edges`]).
    pub fingerprint: String,
    /// `(table name, version)` of both sides, in fingerprint order.
    pub deps: Vec<(String, u64)>,
    /// First-listed side earlier: `(reward_sum, slice_count)`.
    pub fwd: (f64, u64),
    /// Second-listed side earlier: `(reward_sum, slice_count)`.
    pub rev: (f64, u64),
}

/// Everything one finished run teaches the store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Observation {
    /// Per-table selectivity observations.
    pub tables: Vec<TableObs>,
    /// Per-edge directed reward observations.
    pub edges: Vec<EdgeObs>,
}

/// Build an [`Observation`] from a finished run: `deps` carries the
/// live `(table name, catalog version)` pairs the run executed against,
/// `metrics` the engine's measurements. Tables the metrics did not
/// cover (or with zero base rows) and edges that earned no slices are
/// omitted.
pub fn observe(query: &Query, deps: &[(String, u64)], metrics: &ExecMetrics) -> Observation {
    let version_of = |name: &str| -> Option<u64> {
        deps.iter()
            .find(|(n, _)| n == name)
            .map(|&(_, version)| version)
    };
    let mut obs = Observation::default();
    for (t, &(filtered, base)) in metrics.table_cards.iter().enumerate() {
        if base == 0 {
            continue;
        }
        let name = query.tables[t].table.name().to_string();
        let Some(version) = version_of(&name) else {
            continue;
        };
        obs.tables.push(TableObs {
            fingerprint: table_fingerprint(query, t),
            name,
            version,
            filtered,
            base,
        });
    }
    for edge in join_edges(query) {
        let fwd = *metrics
            .edge_rewards
            .get(&(edge.a, edge.b))
            .unwrap_or(&(0.0, 0));
        let rev = *metrics
            .edge_rewards
            .get(&(edge.b, edge.a))
            .unwrap_or(&(0.0, 0));
        if fwd.1 + rev.1 == 0 {
            continue;
        }
        let dep = |t: TableId| -> Option<(String, u64)> {
            let name = query.tables[t].table.name().to_string();
            version_of(&name).map(|v| (name, v))
        };
        let (Some(da), Some(db)) = (dep(edge.a), dep(edge.b)) else {
            continue;
        };
        obs.edges.push(EdgeObs {
            fingerprint: edge.fingerprint,
            deps: vec![da, db],
            fwd,
            rev,
        });
    }
    obs
}

/// Operational counters of a [`KnowledgeStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnowledgeStats {
    /// Observations folded in via [`KnowledgeStore::record`].
    pub records: u64,
    /// [`KnowledgeStore::seed`] calls that produced a prior table.
    pub seeded: u64,
    /// [`KnowledgeStore::seed`] calls with nothing to offer.
    pub no_priors: u64,
    /// Entries evicted by the capacity bound.
    pub evicted: u64,
    /// Entries dropped by [`KnowledgeStore::invalidate_table`].
    pub invalidated: u64,
    /// Entries whose statistics were reset because their catalog
    /// versions moved between observations.
    pub reset: u64,
}

/// Sorted `(fingerprint, stat)` snapshots of both maps, as returned by
/// [`KnowledgeStore::export`].
pub type KnowledgeExport = (Vec<(String, TableStat)>, Vec<(String, EdgeStat)>);

/// Cross-query knowledge, keyed by the coarse fingerprints of
/// [`skinner_query::fingerprint`].
#[derive(Debug, Default)]
pub struct KnowledgeStore {
    config: KnowledgeConfig,
    tables: FxHashMap<String, TableStat>,
    edges: FxHashMap<String, EdgeStat>,
    /// Reward-scale calibration: `(sum of ln(per-run mean slice
    /// reward), run count)` — a geometric-mean accumulator. Priors are
    /// preferences in `[0, 1]`; the engine's actual per-slice rewards
    /// live one or two orders of magnitude lower, and near-greedy UCB1
    /// would have to grind every prior-scale estimate down to reward
    /// scale before real differences matter. Seeding multiplies
    /// estimates by the learned scale so they start *at or below* where
    /// good orders actually pay: a confirmed good arm then defends its
    /// rank from the first real slice, while an over-praised arm's
    /// measured mean falls under the next prior after a slice or two.
    /// The geometric mean (not arithmetic) keeps a few trivial
    /// near-reward-1.0 runs from inflating the calibration above the
    /// rewards of every non-trivial query.
    scale: (f64, u64),
    stats: KnowledgeStats,
}

impl KnowledgeStore {
    /// An empty store with the given knobs.
    pub fn new(config: KnowledgeConfig) -> KnowledgeStore {
        KnowledgeStore {
            config,
            ..KnowledgeStore::default()
        }
    }

    /// Fold one run's observations in. An entry whose stored catalog
    /// version differs from the observation's is reset first (the old
    /// statistics described different data).
    pub fn record(&mut self, obs: &Observation) {
        self.stats.records += 1;
        let run_reward: f64 = obs.edges.iter().map(|e| e.fwd.0 + e.rev.0).sum();
        let run_slices: u64 = obs.edges.iter().map(|e| e.fwd.1 + e.rev.1).sum();
        if run_slices > 0 && run_reward > 0.0 {
            self.scale.0 += (run_reward / run_slices as f64).ln();
            self.scale.1 += 1;
        }
        for t in &obs.tables {
            if t.base == 0 {
                continue;
            }
            let sel = t.filtered as f64 / t.base as f64;
            if !self.tables.contains_key(&t.fingerprint)
                && !evict_if_full(
                    &mut self.tables,
                    self.config.capacity,
                    &mut self.stats.evicted,
                    |s| s.count,
                )
            {
                continue;
            }
            let entry = self
                .tables
                .entry(t.fingerprint.clone())
                .or_insert_with(|| TableStat {
                    name: t.name.clone(),
                    version: t.version,
                    sel_sum: 0.0,
                    count: 0,
                });
            if entry.version != t.version {
                self.stats.reset += 1;
                entry.version = t.version;
                entry.sel_sum = 0.0;
                entry.count = 0;
            }
            entry.sel_sum += sel;
            entry.count += 1;
        }
        for e in &obs.edges {
            let total = e.fwd.0 + e.rev.0;
            if e.fwd.1 + e.rev.1 == 0 || total.is_nan() || total <= 0.0 {
                // A run with no reward on this edge carries no direction
                // signal — don't let it dilute other runs' votes.
                continue;
            }
            if !self.edges.contains_key(&e.fingerprint)
                && !evict_if_full(
                    &mut self.edges,
                    self.config.capacity,
                    &mut self.stats.evicted,
                    |s| s.fwd.1 + s.rev.1,
                )
            {
                continue;
            }
            let entry = self
                .edges
                .entry(e.fingerprint.clone())
                .or_insert_with(|| EdgeStat {
                    deps: e.deps.clone(),
                    fwd: (0.0, 0),
                    rev: (0.0, 0),
                });
            if entry.deps != e.deps {
                self.stats.reset += 1;
                entry.deps = e.deps.clone();
                entry.fwd = (0.0, 0);
                entry.rev = (0.0, 0);
            }
            // One normalized vote per run: the within-run directed
            // reward share. Raw sums would let whichever query happens
            // to have the largest reward scale own the aggregate.
            let share = (e.fwd.0 / total).clamp(0.0, 1.0);
            entry.fwd.0 += share;
            entry.fwd.1 += e.fwd.1;
            entry.rev.0 += 1.0 - share;
            entry.rev.1 += e.rev.1;
        }
    }

    /// Assemble arm priors for a cold run of `query`, or `None` when the
    /// store knows nothing applicable. `deps` carries the live
    /// `(table name, catalog version)` pairs; entries learned against
    /// other versions are skipped (never returned stale).
    ///
    /// Every estimate is a **scale-free preference in `[0, 1]`**, not a
    /// predicted reward — raw reward magnitudes differ by orders of
    /// magnitude between queries (per-slice progress shrinks with data
    /// size), so absolute means transfer badly. An edge's directed
    /// *share* — the mean over recorded runs of each run's
    /// `fwd_rewards / (fwd_rewards + rev_rewards)` — is dimensionless
    /// and weights each direction by the fraction of progress it
    /// produced within its own run (UCT's exploitation concentrates
    /// slices on good orders, so the winning direction dominates each
    /// run's sum). Root arms get the mean of every available signal
    /// for placing that table first —
    /// incident-edge shares and `1 - selectivity`, both `[0, 1]` — and
    /// depth-1 arms get the directed share of the corresponding edge.
    ///
    /// Before returning, every signal is **cubed** and then multiplied
    /// by the learned [`reward_scale`](Self::reward_scale). Cubing
    /// sharpens the preference distribution: under near-greedy UCB the
    /// seeded top arm's mean converges to its *real* per-slice reward
    /// (typically a little under the scale) within a few slices, and
    /// any runner-up whose prior sits above that trajectory keeps
    /// getting re-tried until ground down — multiple wasted slices per
    /// arm, where a cold tree pays exactly one. Cubing pushes
    /// runners-up (share ≲ 0.8 → ≲ 0.5 of scale) safely below the
    /// leader's trajectory while keeping their relative order, so a
    /// correct ranking runs greedy from the first slice and a wrong one
    /// degrades into ordered exploration at about one slice per
    /// mis-ranked arm.
    pub fn seed(&mut self, query: &Query, deps: &[(String, u64)]) -> Option<ArmPriors<TableId>> {
        let m = query.num_tables();
        if m < 2 {
            self.stats.no_priors += 1;
            return None;
        }
        let current = |name: &str, version: u64| -> bool {
            deps.iter().any(|(n, v)| n == name && *v == version)
        };
        let mut entries: Vec<PriorEntry<TableId>> = Vec::new();
        // Signals for placing table t first, collected per table.
        let mut first_signals: Vec<Vec<f64>> = vec![Vec::new(); m];
        for edge in join_edges(query) {
            let Some(stat) = self.edges.get(&edge.fingerprint) else {
                continue;
            };
            if !stat.deps.iter().all(|(n, v)| current(n, *v)) {
                continue;
            }
            let total = stat.fwd.0 + stat.rev.0;
            if total.is_nan() || total <= 0.0 {
                // Only zero-reward slices recorded: no direction signal.
                continue;
            }
            let share = (stat.fwd.0 / total).clamp(0.0, 1.0);
            first_signals[edge.a].push(share);
            entries.push(PriorEntry {
                prefix: vec![edge.a, edge.b],
                estimate: share,
            });
            first_signals[edge.b].push(1.0 - share);
            entries.push(PriorEntry {
                prefix: vec![edge.b, edge.a],
                estimate: 1.0 - share,
            });
        }
        for (t, signals) in first_signals.iter_mut().enumerate() {
            if let Some(stat) = self.tables.get(&table_fingerprint(query, t)) {
                if stat.count > 0 && current(&stat.name, stat.version) {
                    signals.push(1.0 - stat.mean_selectivity());
                }
            }
            if !signals.is_empty() {
                entries.push(PriorEntry {
                    prefix: vec![t],
                    estimate: signals.iter().sum::<f64>() / signals.len() as f64,
                });
            }
        }
        if entries.is_empty() {
            self.stats.no_priors += 1;
            return None;
        }
        let scale = self.reward_scale();
        for e in &mut entries {
            e.estimate = e.estimate.powi(3) * scale;
        }
        self.stats.seeded += 1;
        Some(ArmPriors {
            entries,
            weight: self.config.prior_weight,
        })
    }

    /// Calibration factor applied to every seeded estimate: a
    /// *sixteenth* of the learned geometric-mean per-slice reward
    /// across recorded runs, in `(0, 1]`. `1.0` until the first
    /// rewarding run is recorded.
    ///
    /// Deliberately far below real reward levels, because the costs of
    /// mis-calibration are asymmetric under near-greedy UCB1. Priors
    /// *above* a good arm's real reward cause washout ping-pong: the
    /// confirmed good arm's measured mean sinks below the untried arms'
    /// inflated priors and every arm must be ground down — several
    /// wasted slices per arm — before selection stabilizes. Priors
    /// *below* real rewards act as a pure *ordering* signal: they only
    /// decide which arm is tried first, and the first real slice of any
    /// usable arm immediately out-earns every remaining prior and locks
    /// in. Empirically the waste curve is monotone in the factor (a
    /// correctly-ranked 5-table seeded run goes from pure-greedy zero
    /// waste at 1/16 through growing ping-pong at 1/4, 1/2, 1x), so the
    /// factor sits deep on the safe side while still leaving the cubed
    /// shares numerically distinct.
    pub fn reward_scale(&self) -> f64 {
        if self.scale.1 == 0 {
            return 1.0;
        }
        ((1.0 / 16.0) * (self.scale.0 / self.scale.1 as f64).exp()).clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Drop every entry that depends on `name` (called when the table is
    /// re-registered — its data, and thus everything learned from it, is
    /// gone). Returns the number of entries dropped.
    pub fn invalidate_table(&mut self, name: &str) -> usize {
        let before = self.tables.len() + self.edges.len();
        self.tables.retain(|_, s| s.name != name);
        self.edges
            .retain(|_, s| s.deps.iter().all(|(n, _)| n != name));
        let dropped = before - self.tables.len() - self.edges.len();
        self.stats.invalidated += dropped as u64;
        dropped
    }

    /// Remove everything, keeping counters.
    pub fn clear(&mut self) {
        self.tables.clear();
        self.edges.clear();
    }

    /// Operational counters.
    pub fn stats(&self) -> KnowledgeStats {
        self.stats
    }

    /// `(table entries, edge entries)`.
    pub fn len(&self) -> (usize, usize) {
        (self.tables.len(), self.edges.len())
    }

    /// True when the store holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.edges.is_empty()
    }

    /// Rough memory footprint of the stored entries.
    pub fn approx_bytes(&self) -> usize {
        let table_bytes: usize = self
            .tables
            .iter()
            .map(|(k, s)| k.len() + s.name.len() + 48)
            .sum();
        let edge_bytes: usize = self
            .edges
            .iter()
            .map(|(k, s)| k.len() + s.deps.iter().map(|(n, _)| n.len() + 16).sum::<usize>() + 48)
            .sum();
        table_bytes + edge_bytes
    }

    /// Snapshot every entry (persistence export).
    pub fn export(&self) -> KnowledgeExport {
        let mut tables: Vec<(String, TableStat)> = self
            .tables
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut edges: Vec<(String, EdgeStat)> = self
            .edges
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        edges.sort_by(|a, b| a.0.cmp(&b.0));
        (tables, edges)
    }

    /// Raw reward-scale accumulator `(sum of ln(per-run mean), run
    /// count)` (persistence export).
    pub fn scale_raw(&self) -> (f64, u64) {
        self.scale
    }

    /// Merge a persisted reward-scale accumulator (persistence import).
    /// Log-sums are negative for sub-1.0 rewards; only non-finite
    /// values are rejected.
    pub fn seed_scale_entry(&mut self, sum: f64, runs: u64) {
        if sum.is_finite() {
            self.scale.0 += sum;
            self.scale.1 += runs;
        }
    }

    /// Insert an entry directly (persistence import). Does not count as
    /// a record; respects the capacity bound.
    pub fn seed_table_entry(&mut self, fingerprint: String, stat: TableStat) {
        if self.tables.contains_key(&fingerprint)
            || evict_if_full(
                &mut self.tables,
                self.config.capacity,
                &mut self.stats.evicted,
                |s| s.count,
            )
        {
            self.tables.insert(fingerprint, stat);
        }
    }

    /// Insert an edge entry directly (persistence import). Does not
    /// count as a record; respects the capacity bound.
    pub fn seed_edge_entry(&mut self, fingerprint: String, stat: EdgeStat) {
        if self.edges.contains_key(&fingerprint)
            || evict_if_full(
                &mut self.edges,
                self.config.capacity,
                &mut self.stats.evicted,
                |s| s.fwd.1 + s.rev.1,
            )
        {
            self.edges.insert(fingerprint, stat);
        }
    }
}

/// Make room for one new entry: evict the least-observed entry when the
/// map is at `capacity`. Returns false (insert must be skipped) only in
/// the degenerate `capacity == 0` configuration.
fn evict_if_full<V>(
    map: &mut FxHashMap<String, V>,
    capacity: usize,
    evicted: &mut u64,
    weight: impl Fn(&V) -> u64,
) -> bool {
    if capacity == 0 {
        return false;
    }
    while map.len() >= capacity {
        let victim = map
            .iter()
            .min_by_key(|(k, v)| (weight(v), (*k).clone()))
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                map.remove(&k);
                *evicted += 1;
            }
            None => break,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::QueryBuilder;
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        for name in ["a", "b", "c"] {
            cat.register(
                Table::new(
                    name,
                    Schema::new([
                        ColumnDef::new("k", ValueType::Int),
                        ColumnDef::new("v", ValueType::Int),
                    ]),
                    vec![
                        Column::from_ints(vec![1, 2, 3, 4]),
                        Column::from_ints(vec![10, 20, 30, 40]),
                    ],
                )
                .unwrap(),
            );
        }
        cat
    }

    /// a ⋈ b on k, joined FROM-first or FROM-second.
    fn two_way(cat: &Catalog, swap: bool) -> Query {
        let mut qb = QueryBuilder::new(cat);
        if swap {
            qb.table("b").unwrap();
            qb.table("a").unwrap();
        } else {
            qb.table("a").unwrap();
            qb.table("b").unwrap();
        }
        let j = qb.col("a.k").unwrap().eq(qb.col("b.k").unwrap());
        qb.filter(j);
        qb.select_col("a.v").unwrap();
        qb.build().unwrap()
    }

    fn deps() -> Vec<(String, u64)> {
        vec![("a".into(), 1), ("b".into(), 1), ("c".into(), 1)]
    }

    fn metrics_for(q: &Query, a_first_reward: f64, b_first_reward: f64) -> ExecMetrics {
        let ta = (0..q.num_tables())
            .find(|&t| q.tables[t].table.name() == "a")
            .unwrap();
        let tb = (0..q.num_tables())
            .find(|&t| q.tables[t].table.name() == "b")
            .unwrap();
        let mut m = ExecMetrics {
            table_cards: vec![(1, 4); q.num_tables()],
            ..ExecMetrics::default()
        };
        m.edge_rewards.insert((ta, tb), (a_first_reward * 4.0, 4));
        m.edge_rewards.insert((tb, ta), (b_first_reward * 4.0, 4));
        m
    }

    #[test]
    fn observations_transfer_across_from_order() {
        let cat = catalog();
        let q1 = two_way(&cat, false);
        let mut store = KnowledgeStore::default();
        store.record(&observe(&q1, &deps(), &metrics_for(&q1, 0.8, 0.2)));
        assert_eq!(store.len(), (2, 1));

        // A FROM-swapped query maps the same knowledge back into its own
        // TableId space: "a first" stays the rewarding arm.
        let q2 = two_way(&cat, true);
        let priors = store.seed(&q2, &deps()).expect("knowledge applies");
        assert!(priors.weight > 0);
        let ta = 1; // "a" is FROM-second in q2
        let root = |t: TableId| {
            priors
                .entries
                .iter()
                .find(|e| e.prefix == vec![t])
                .map(|e| e.estimate)
        };
        let (ra, rb) = (root(ta).unwrap(), root(1 - ta).unwrap());
        assert!(
            ra > rb,
            "a-first must carry the higher prior ({ra} vs {rb})"
        );
        // Depth-1 entries carry the directed edge share, cubed (the
        // sharpening exponent) and calibrated to the learned reward
        // scale (both directions rewarded a mean of 0.5 per slice here;
        // the conservative factor is a sixteenth of that).
        assert!((store.reward_scale() - 0.5 / 16.0).abs() < 1e-9);
        let d1 = priors
            .entries
            .iter()
            .find(|e| e.prefix == vec![ta, 1 - ta])
            .unwrap();
        assert!((d1.estimate - 0.8f64.powi(3) * store.reward_scale()).abs() < 1e-9);
        assert_eq!(store.stats().seeded, 1);
    }

    #[test]
    fn version_mismatch_skips_and_resets() {
        let cat = catalog();
        let q = two_way(&cat, false);
        let mut store = KnowledgeStore::default();
        store.record(&observe(&q, &deps(), &metrics_for(&q, 0.9, 0.1)));
        // Seeding after both tables were re-registered finds nothing:
        // every entry was learned against the old versions.
        let bumped = vec![("a".to_string(), 2), ("b".to_string(), 2)];
        assert!(store.seed(&q, &bumped).is_none());
        assert_eq!(store.stats().no_priors, 1);
        // Recording against the new version resets the stale entry
        // in place rather than blending incompatible statistics.
        store.record(&observe(&q, &bumped, &metrics_for(&q, 0.3, 0.7)));
        assert!(store.stats().reset > 0);
        let priors = store.seed(&q, &bumped).expect("fresh stats apply");
        let d1 = priors
            .entries
            .iter()
            .find(|e| e.prefix.len() == 2 && e.prefix[0] == 0)
            .unwrap();
        assert!(
            (d1.estimate - 0.3f64.powi(3) * store.reward_scale()).abs() < 1e-9,
            "{}",
            d1.estimate
        );
    }

    #[test]
    fn invalidate_table_drops_only_dependents() {
        let cat = catalog();
        let qab = two_way(&cat, false);
        let mut qb = QueryBuilder::new(&cat);
        qb.table("b").unwrap();
        qb.table("c").unwrap();
        let j = qb.col("b.k").unwrap().eq(qb.col("c.k").unwrap());
        qb.filter(j);
        qb.select_col("b.v").unwrap();
        let qbc = qb.build().unwrap();

        let mut store = KnowledgeStore::default();
        store.record(&observe(&qab, &deps(), &metrics_for(&qab, 0.8, 0.2)));
        let mut m = ExecMetrics {
            table_cards: vec![(2, 4), (2, 4)],
            ..ExecMetrics::default()
        };
        m.edge_rewards.insert((0, 1), (1.0, 2));
        store.record(&observe(&qbc, &deps(), &m));
        // `tbl:b|` is shared by both queries — that's the transfer.
        let (t, e) = store.len();
        assert_eq!((t, e), (3, 2));

        // Dropping `a` keeps the b⋈c knowledge intact.
        let dropped = store.invalidate_table("a");
        assert_eq!(dropped, 2, "a's table entry and the a~b edge");
        assert!(store.seed(&qbc, &deps()).is_some());
        assert_eq!(store.stats().invalidated, 2);
        // The a⋈b query retains only b's selectivity signal: no edge
        // knowledge and no root prior for `a` itself.
        let p = store.seed(&qab, &deps()).unwrap();
        assert!(p.entries.iter().all(|e| e.prefix.len() == 1));
        assert!(p.entries.iter().all(|e| e.prefix != vec![0]));
    }

    #[test]
    fn capacity_evicts_least_observed() {
        let cat = catalog();
        let q = two_way(&cat, false);
        let mut store = KnowledgeStore::new(KnowledgeConfig {
            capacity: 1,
            prior_weight: 8,
        });
        store.record(&observe(&q, &deps(), &metrics_for(&q, 0.8, 0.2)));
        let (t, e) = store.len();
        assert!(t <= 1 && e <= 1, "capacity must bound both maps");
        assert!(store.stats().evicted > 0);
        assert!(store.approx_bytes() > 0);

        // capacity == 0 disables the store without panicking.
        let mut off = KnowledgeStore::new(KnowledgeConfig {
            capacity: 0,
            prior_weight: 8,
        });
        off.record(&observe(&q, &deps(), &metrics_for(&q, 0.8, 0.2)));
        assert!(off.is_empty());
    }

    #[test]
    fn single_table_and_unknown_queries_yield_none() {
        let cat = catalog();
        let mut qb = QueryBuilder::new(&cat);
        qb.table("a").unwrap();
        qb.select_col("a.v").unwrap();
        let single = qb.build().unwrap();
        let mut store = KnowledgeStore::default();
        assert!(store.seed(&single, &deps()).is_none());
        let q = two_way(&cat, false);
        assert!(store.seed(&q, &deps()).is_none(), "empty store");
        assert_eq!(store.stats().no_priors, 2);
    }
}
