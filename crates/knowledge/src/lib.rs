//! # skinner-knowledge
//!
//! Cross-query knowledge: learning that transfers to queries that have
//! *never run before*.
//!
//! The service layer's `LearningCache` reuses a complete learned state —
//! UCT snapshot plus bound plans — but only for an exact template match
//! ([`TemplateKey`](skinner_query::TemplateKey)). Every genuinely new
//! query still pays the full cold-start exploration cost, even when the
//! workload has joined the same tables on the same keys hundreds of
//! times. This crate closes that gap with a [`KnowledgeStore`] keyed by
//! *coarse* fingerprints ([`skinner_query::fingerprint`]) that recur
//! across templates:
//!
//! * per-(table, predicate-shape) **observed selectivities** — how many
//!   rows survived pre-processing, and
//! * per-join-edge **directed reward statistics** — the mean slice
//!   reward earned when one side of an equi-join edge preceded the
//!   other in the chosen order.
//!
//! After every finished run, [`observe`] extracts both from the
//! engine's [`ExecMetrics`](skinner_engine::ExecMetrics) and
//! [`KnowledgeStore::record`] folds them in. Before a cold run,
//! [`KnowledgeStore::seed`] assembles an
//! [`ArmPriors`](skinner_uct::ArmPriors) table for the query's
//! join-order space: optimistic initialization that biases UCT's
//! exploration *order* toward historically rewarding arms without ever
//! pruning one — prior-seeded runs produce results identical to cold
//! runs, only (usually) in fewer exploration slices.
//!
//! Knowledge is catalog-versioned: every entry carries the
//! `(table name, version)` pairs it was learned against, entries are
//! dropped eagerly when a table is re-registered
//! ([`KnowledgeStore::invalidate_table`]) and skipped lazily when their
//! versions no longer match at seed time. [`persist`] gives the store
//! the same crash-safe single-file durability as the learning cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;
pub mod store;

pub use persist::KnowledgeLoadReport;
pub use store::{
    observe, EdgeObs, EdgeStat, KnowledgeConfig, KnowledgeStats, KnowledgeStore, Observation,
    TableObs, TableStat,
};
