//! Progress-based reward calculation (paper §4.5).
//!
//! The reward for a time slice measures "how quickly execution proceeds
//! using the chosen join order". The paper's refined reward sums tuple
//! index deltas, "scaling each one down by the product of cardinality
//! values of its associated table and the preceding tables in the current
//! join order" — equivalently, the cursor's fractional position in the
//! lexicographic enumeration space, differenced across the slice. The
//! simple variant (progress in the left-most table only) matches the
//! formal analysis of §5.
//!
//! Rewards are *slice-normalized regardless of worker count*: with a
//! partitioned join phase (see [`crate::partition`]) the cursors fed in
//! here are the folded slice cursors, which live in the same
//! lexicographic space as sequential cursors, and every order's slices
//! run with the same worker count — so UCT comparisons between orders
//! stay fair and the `[0, 1]` clamp keeps the bandit contract either way.

use skinner_query::TableId;

/// Which reward function feeds the UCT tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RewardKind {
    /// Fractional progress of the whole cursor (the paper's refinement;
    /// default).
    #[default]
    ScaledDeltas,
    /// Left-most table progress only (used by the §5 analysis).
    LeftmostProgress,
}

/// Fractional position of `state` (indexed by table) in the enumeration
/// space of `order`: `Σ_i s[j_i] / Π_{q ≤ i} |R_{j_q}|`, a value in
/// `[0, 1]`.
pub fn fractional_position(order: &[TableId], state: &[u32], cards: &[u32]) -> f64 {
    let mut denom = 1.0f64;
    let mut f = 0.0f64;
    for &t in order {
        let card = cards[t].max(1) as f64;
        denom *= card;
        f += state[t] as f64 / denom;
    }
    f
}

/// Compute the slice reward given cursors before and after.
pub fn reward(
    kind: RewardKind,
    order: &[TableId],
    before: &[u32],
    after: &[u32],
    cards: &[u32],
) -> f64 {
    let r = match kind {
        RewardKind::ScaledDeltas => {
            fractional_position(order, after, cards) - fractional_position(order, before, cards)
        }
        RewardKind::LeftmostProgress => {
            let t = order[0];
            (after[t] as f64 - before[t] as f64) / cards[t].max(1) as f64
        }
    };
    r.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractional_bounds() {
        let order = [0usize, 1];
        let cards = [10u32, 10];
        assert_eq!(fractional_position(&order, &[0, 0], &cards), 0.0);
        let f = fractional_position(&order, &[9, 9], &cards);
        assert!(f < 1.0 && f > 0.98);
    }

    #[test]
    fn lexicographic_monotone() {
        // Cursor advancing lexicographically must increase the fraction.
        let order = [0usize, 1, 2];
        let cards = [4u32, 4, 4];
        let mut prev = -1.0;
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    let f = fractional_position(&order, &[a, b, c], &cards);
                    assert!(f > prev, "({a},{b},{c})");
                    prev = f;
                }
            }
        }
    }

    #[test]
    fn deeper_tables_weigh_less() {
        let order = [0usize, 1];
        let cards = [10u32, 100];
        let shallow = fractional_position(&order, &[1, 0], &cards);
        let deep = fractional_position(&order, &[0, 99], &cards);
        assert!(shallow > deep);
    }

    #[test]
    fn reward_kinds() {
        let order = [1usize, 0];
        let cards = [100u32, 10];
        let before = [0u32, 2];
        let after = [50u32, 3];
        // leftmost table is table 1 (cards 10): delta 1/10
        let r = reward(
            RewardKind::LeftmostProgress,
            &order,
            &before,
            &after,
            &cards,
        );
        assert!((r - 0.1).abs() < 1e-9);
        let r2 = reward(RewardKind::ScaledDeltas, &order, &before, &after, &cards);
        assert!(r2 > 0.1, "scaled reward also counts deep progress: {r2}");
    }

    #[test]
    fn reward_clamped_nonnegative() {
        // Deep coordinates reset on backtrack can make naive deltas
        // negative; the clamp keeps UCT's [0,1] contract.
        let order = [0usize, 1];
        let cards = [10u32, 10];
        let r = reward(RewardKind::ScaledDeltas, &order, &[3, 9], &[3, 0], &cards);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn zero_card_guard() {
        let order = [0usize];
        let cards = [0u32];
        let f = fractional_position(&order, &[0], &cards);
        assert!(f.is_finite());
    }
}
