//! Skinner-C main loop (Algorithm 3).
//!
//! ```text
//! while not finished:
//!     j ← UctChoice(T)
//!     s ← RestoreState(j, o, S); s_prior ← s
//!     finished ← ContinueJoin(q, j, o, b, s, R)
//!     RewardUpdate(T, j, Reward(s − s_prior, j))
//!     ⟨o, S⟩ ← BackupState(j, s, o, S)
//! ```
//!
//! Join orders are chosen by UCT with a very small exploration weight
//! (`w = 1e-6`; the fine-grained reward makes exploitation safe), or —
//! for the Table 5 ablation — uniformly at random.

use crate::metrics::ExecMetrics;
use crate::multiway::{ContinueResult, LimitSink, MultiwayJoin, ResultSet, ResultSink};
use crate::prepare::{OrderPlan, PreparedQuery};
use crate::progress::ProgressTracker;
use crate::reward::{reward, RewardKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_codegen::{CompiledKernel, KernelCache};
use skinner_query::{Query, TableId};
use skinner_storage::{FxHashMap, RowId};
use skinner_uct::{ArmPriors, JoinOrderSpace, SearchSpace, TreeSnapshot, UctConfig, UctTree};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Join-order selection policy (Table 5 compares Original=UCT against
/// Random).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// UCT learning (the SkinnerDB default).
    #[default]
    Uct,
    /// Uniform random valid order each slice (ablation baseline).
    Random,
}

/// Configuration of the Skinner-C engine.
#[derive(Debug, Clone, Copy)]
pub struct SkinnerCConfig {
    /// Step budget `b` per time slice (paper default: 500 outer-loop
    /// iterations, i.e. thousands of join-order switches per second).
    /// With parallel join workers the budget is divided across the
    /// slice's offset chunks, so a slice examines roughly `budget`
    /// tuples regardless of the worker count — larger budgets amortize
    /// the per-slice thread-spawn cost and are recommended when
    /// `threads > 1`.
    pub budget: u64,
    /// UCT exploration weight `w` (paper: 1e-6 for Skinner-C, whose
    /// fine-grained progress reward needs little forced exploration).
    pub exploration: f64,
    /// Reward function mapping per-slice cursor progress to the `[0, 1]`
    /// signal UCT expects (see [`RewardKind`]).
    pub reward: RewardKind,
    /// Build hash indexes on equi-join columns during pre-processing
    /// (Table 6 ablation).
    pub use_indexes: bool,
    /// Worker threads, used twice: one filter thread per table during
    /// pre-processing (Table 2, as in the paper's implementation), and —
    /// beyond the paper, whose join phase is single-threaded — offset-
    /// range-partitioned execution of every join slice (see
    /// [`crate::partition`]). `1` reproduces the paper's sequential join
    /// phase exactly.
    pub threads: usize,
    /// Execute join orders on the codegen tier (per-shape compiled
    /// kernels, see `skinner-codegen`) instead of the plan-bound
    /// kernel. Every multi-table jump shape compiles — integer, float,
    /// fused composite, and string/nullable keys — and orders above the
    /// kernel arity ceiling run a compiled 6-position prefix driving
    /// the plan-bound suffix (the split tier). Results are identical in
    /// every case (the differential properties enforce it), so this
    /// switch only trades compilation for interpretation.
    pub codegen: bool,
    /// Order selection policy (UCT, or uniform random for the Table 5
    /// ablation).
    pub policy: OrderPolicy,
    /// RNG seed (UCT tie-breaking / random policy).
    pub seed: u64,
    /// Sample the UCT tree size every this many slices (Fig. 7a);
    /// 0 disables sampling.
    pub tree_sample_every: u64,
}

impl Default for SkinnerCConfig {
    fn default() -> Self {
        SkinnerCConfig {
            budget: 500,
            exploration: 1e-6,
            reward: RewardKind::ScaledDeltas,
            use_indexes: true,
            threads: 1,
            codegen: true,
            policy: OrderPolicy::Uct,
            seed: 0x5EED,
            tree_sample_every: 64,
        }
    }
}

/// Why a Skinner-C run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The join ran to completion: the result set is the full distinct
    /// join result.
    #[default]
    Completed,
    /// [`RunOptions::target_rows`] distinct tuples were produced (LIMIT
    /// pushdown). The result is a valid LIMIT prefix, not the full join.
    RowTarget,
    /// [`RunOptions::cancel`] was raised between slices. The result is
    /// partial and must be discarded.
    Cancelled,
    /// [`RunOptions::deadline`] passed between slices. The result is
    /// partial and must be discarded.
    DeadlineExceeded,
    /// [`RunOptions::max_result_bytes`] was exceeded at a slice
    /// boundary. The result is a valid distinct prefix of the join —
    /// usable when a LIMIT made a prefix acceptable, otherwise the
    /// caller should fail the query cleanly instead of letting the
    /// arena grow until the OS kills the process.
    MemoryExceeded,
}

/// Per-run controls beyond the engine configuration: cross-execution
/// learning state in and out, cooperative cancellation, and sink-driven
/// early exit. `RunOptions::default()` reproduces the plain
/// [`SkinnerC::run`] behaviour exactly.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Warm-start the UCT tree from a prior execution of the same query
    /// template (see `skinner_query::TemplateKey`). Ignored when the
    /// snapshot does not match this query's join-order space.
    pub prior: Option<&'a TreeSnapshot<TableId>>,
    /// Seed a *cold* UCT tree with cross-query knowledge priors
    /// (optimistic arm initialization, see `skinner_uct::ArmPriors`).
    /// Only consulted when `prior` is absent — an exact-template
    /// snapshot always beats coarse cross-template knowledge. Priors
    /// shift exploration order without pruning, so results are
    /// identical to a cold run's.
    pub arm_priors: Option<&'a ArmPriors<TableId>>,
    /// Join orders to pre-bind into the plan cache (the orders a prior
    /// execution materialized). Non-permutations are skipped.
    pub planned_orders: &'a [Vec<TableId>],
    /// Cooperative cancel flag, checked at every slice boundary.
    pub cancel: Option<&'a AtomicBool>,
    /// Wall-clock deadline, checked at every slice boundary.
    pub deadline: Option<Instant>,
    /// Stop once this many distinct join tuples exist (LIMIT pushdown —
    /// callers must check `Query::join_limit` eligibility first). Both
    /// the sequential kernel and partitioned chunk workers suspend
    /// mid-slice on reaching the target (workers share one slice-wide
    /// emission counter).
    pub target_rows: Option<u64>,
    /// Cap on result-materialization bytes (flat tuple arena + dedup
    /// table), checked at every slice boundary like `cancel` and
    /// `deadline`. Exceeding it stops the run with
    /// [`StopReason::MemoryExceeded`]; the tuples produced so far are a
    /// valid distinct prefix. `None` (the default) is unbounded.
    pub max_result_bytes: Option<usize>,
    /// Capture a [`LearnedState`] in the outcome for the learning cache.
    pub capture_learning: bool,
    /// Cross-query kernel cache (see `skinner-codegen`): memoizes
    /// kernel-shape resolutions so repeated shapes — including the
    /// pre-bound orders of a warm service-layer template — skip
    /// kernel-construction analysis. `None` resolves shapes locally.
    pub kernel_cache: Option<&'a KernelCache>,
    /// Worker pool executing partitioned-slice morsels. The service
    /// wires its budget-sized pool here so every query shares one set
    /// of persistent threads; `None` uses the process-wide global pool.
    /// Irrelevant when `threads <= 1` (the sequential path never
    /// touches a pool).
    pub pool: Option<std::sync::Arc<skinner_pool::WorkerPool>>,
}

/// Learned join-order state captured from one execution, reusable by a
/// later execution of the same query template.
#[derive(Debug, Clone)]
pub struct LearnedState {
    /// The UCT tree at termination.
    pub snapshot: TreeSnapshot<TableId>,
    /// The most-visited (recommended) join order.
    pub best_order: Vec<TableId>,
    /// Every order that was bound into the plan cache.
    pub planned_orders: Vec<Vec<TableId>>,
}

/// Result of a Skinner-C join phase.
#[derive(Debug)]
pub struct SkinnerOutcome {
    /// Distinct result tuples, flat row-major (stride = num tables, slots
    /// in FROM order; values are base row ids).
    pub tuples: Vec<RowId>,
    /// Number of query tables (stride).
    pub num_tables: usize,
    /// Distinct result count.
    pub result_count: u64,
    /// The most-visited join order at termination (replayed in other
    /// engines for Tables 3/4).
    pub final_order: Vec<TableId>,
    /// Why the run ended ([`StopReason::Completed`] unless a
    /// [`RunOptions`] control fired).
    pub stop: StopReason,
    /// Learned state for the cross-query cache (present iff
    /// [`RunOptions::capture_learning`] was set).
    pub learning: Option<LearnedState>,
    /// Execution metrics.
    pub metrics: ExecMetrics,
}

/// The Skinner-C engine: regret-bounded evaluation of one SPJ query.
pub struct SkinnerC {
    config: SkinnerCConfig,
}

impl Default for SkinnerC {
    fn default() -> Self {
        SkinnerC::new(SkinnerCConfig::default())
    }
}

impl SkinnerC {
    /// Engine with the given configuration.
    pub fn new(config: SkinnerCConfig) -> SkinnerC {
        SkinnerC { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SkinnerCConfig {
        &self.config
    }

    /// Execute the join phase of `query` (pre-processing included;
    /// post-processing is the caller's job — see `skinner-core`).
    ///
    /// # Examples
    ///
    /// ```
    /// use skinner_engine::{SkinnerC, SkinnerCConfig};
    /// use skinner_query::QueryBuilder;
    /// use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
    ///
    /// let mut cat = Catalog::new();
    /// cat.register(Table::new(
    ///     "a",
    ///     Schema::new([ColumnDef::new("id", ValueType::Int)]),
    ///     vec![Column::from_ints(vec![1, 2, 3])],
    /// ).unwrap());
    /// cat.register(Table::new(
    ///     "b",
    ///     Schema::new([ColumnDef::new("a_id", ValueType::Int)]),
    ///     vec![Column::from_ints(vec![1, 1, 3])],
    /// ).unwrap());
    ///
    /// let mut qb = QueryBuilder::new(&cat);
    /// qb.table("a").unwrap();
    /// qb.table("b").unwrap();
    /// let join = qb.col("a.id").unwrap().eq(qb.col("b.a_id").unwrap());
    /// qb.filter(join);
    /// qb.select_col("a.id").unwrap();
    /// let query = qb.build().unwrap();
    ///
    /// // Paper defaults (sequential join phase). `threads: 4` would
    /// // additionally partition every join slice across 4 workers.
    /// let out = SkinnerC::new(SkinnerCConfig::default()).run(&query);
    /// assert_eq!(out.result_count, 3);
    /// assert_eq!(out.num_tables, 2);
    /// ```
    pub fn run(&self, query: &Query) -> SkinnerOutcome {
        self.run_with(query, &RunOptions::default())
    }

    /// [`run`](SkinnerC::run) with per-run controls: UCT warm start and
    /// plan pre-binding from a prior execution of the same template,
    /// cooperative cancel / deadline checks at slice boundaries, a
    /// distinct-tuple target for LIMIT pushdown, and capture of the
    /// learned state for the service layer's cross-query cache.
    pub fn run_with(&self, query: &Query, opts: &RunOptions<'_>) -> SkinnerOutcome {
        let cfg = &self.config;
        let m = query.num_tables();
        let pq = PreparedQuery::new(query, cfg.use_indexes, cfg.threads);
        let mut metrics = ExecMetrics {
            preprocess_time: pq.preprocess_time,
            index_bytes: pq.index_bytes(),
            // Selectivity observations for the knowledge store: how many
            // rows of each table survived its unary predicates.
            table_cards: (0..m)
                .map(|t| (pq.cards[t] as u64, query.tables[t].table.num_rows() as u64))
                .collect(),
            ..Default::default()
        };

        if pq.any_empty() || m == 0 {
            return SkinnerOutcome {
                tuples: Vec::new(),
                num_tables: m,
                result_count: 0,
                final_order: (0..m).collect(),
                stop: StopReason::Completed,
                learning: None,
                metrics,
            };
        }

        let join_start = Instant::now();
        let space = JoinOrderSpace::new(query);
        let uct_config = UctConfig {
            exploration: cfg.exploration,
            seed: cfg.seed,
        };
        let mut tree = match (opts.prior, opts.arm_priors) {
            (Some(snapshot), _) => UctTree::with_snapshot(space.clone(), uct_config, snapshot),
            (None, Some(priors)) => UctTree::with_priors(space.clone(), uct_config, priors),
            (None, None) => UctTree::new(space.clone(), uct_config),
        };
        // > 1 means the prior was actually adopted (a mismatched
        // snapshot — or an empty/invalid prior table — falls back to
        // the cold single-node tree).
        metrics.warm_start_nodes = match opts.prior {
            Some(_) if tree.num_nodes() > 1 => tree.num_nodes(),
            _ => 0,
        };
        metrics.prior_seeded_nodes = match (opts.prior, opts.arm_priors) {
            (None, Some(_)) if tree.num_nodes() > 1 => tree.num_nodes() - 1,
            _ => 0,
        };
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
        let mut tracker = ProgressTracker::new(m);
        let mut offsets = vec![0u32; m];
        let mut results = ResultSet::new();
        let mut join = MultiwayJoin::with_pool(&pq, cfg.threads, opts.pool.clone());
        // Pool-reuse accounting: the per-run delta of pool thread spawns
        // must be 0 after the pool's one-time warm-up. Both counters are
        // snapshotted so panic-driven worker replacements — which on a
        // shared pool may belong to a *concurrent* query — can be netted
        // out of this run's delta.
        let spawns_before = join.pool_spawned();
        let replaced_before = join.pool_replaced();
        // Per-order execution state: the bound plan plus, when the
        // codegen tier is on and the shape is supported, the compiled
        // kernel (tier three). Bound once per order, reused across every
        // slice and partitioned chunk.
        let mut plan_cache: FxHashMap<Vec<TableId>, PlannedOrder<'_>> = FxHashMap::default();
        for order in opts.planned_orders {
            if is_permutation(order, m) && !plan_cache.contains_key(order.as_slice()) {
                plan_cache.insert(
                    order.clone(),
                    bind_order(&pq, cfg.codegen, opts.kernel_cache, order, &mut metrics),
                );
            }
        }

        // Scratch cursors owned by the run loop, reused across slices.
        let mut state = vec![0u32; m];
        let mut before = vec![0u32; m];

        // Equi-joined table pairs (canonical a < b) for directed
        // precedence-reward capture; `pos` is per-slice scratch mapping
        // table → position in the chosen order.
        let mut edge_pairs: Vec<(TableId, TableId)> = query
            .equi_join_pairs()
            .iter()
            .map(|(ca, cb)| {
                if ca.table < cb.table {
                    (ca.table, cb.table)
                } else {
                    (cb.table, ca.table)
                }
            })
            .collect();
        edge_pairs.sort_unstable();
        edge_pairs.dedup();
        let mut pos = vec![0usize; m];

        // A budget below the walk-down depth could live-lock (the re-walk
        // repeats without advancing); clamp well above it.
        let budget = cfg.budget.max(4 * m as u64);

        let mut finished = false;
        let mut stop = StopReason::Completed;
        while !finished {
            // Cooperative interruption, checked at slice granularity
            // (a slice is bounded by the step budget, so these fire
            // promptly without a hot-loop cost).
            if let Some(cancel) = opts.cancel {
                if cancel.load(Ordering::Relaxed) {
                    stop = StopReason::Cancelled;
                    break;
                }
            }
            if let Some(deadline) = opts.deadline {
                if Instant::now() >= deadline {
                    stop = StopReason::DeadlineExceeded;
                    break;
                }
            }
            // Fault-injection sites (no-ops unless a test armed them):
            // `engine.slice` panics mid-run; `engine.cancel` acts as a
            // client cancellation raised at this slice boundary.
            crate::failpoints::fire("engine.slice");
            if crate::failpoints::check("engine.cancel") == Some(crate::failpoints::Fault::Cancel) {
                stop = StopReason::Cancelled;
                break;
            }

            metrics.slices += 1;
            let order = match cfg.policy {
                OrderPolicy::Uct => tree.choose(),
                OrderPolicy::Random => random_order(&space, &mut rng),
            };
            // Look up by slice first: cloning the order `Vec` only on the
            // first sighting, not on the thousands of cache hits.
            if !plan_cache.contains_key(order.as_slice()) {
                plan_cache.insert(
                    order.clone(),
                    bind_order(&pq, cfg.codegen, opts.kernel_cache, &order, &mut metrics),
                );
            }
            let planned = &plan_cache[order.as_slice()];

            tracker.restore_into(&order, &offsets, &mut state);
            before.copy_from_slice(&state);

            if planned.kernel.is_some() {
                metrics.codegen_slices += 1;
            }
            let (res, steps) = match opts.target_rows {
                Some(target) => {
                    let mut sink = LimitSink::new(&mut results, target);
                    planned.run_slice(&mut join, &order, &offsets, &mut state, budget, &mut sink)
                }
                None => planned.run_slice(
                    &mut join,
                    &order,
                    &offsets,
                    &mut state,
                    budget,
                    &mut results,
                ),
            };
            metrics.steps += steps;

            if res == ContinueResult::Exhausted {
                // Left-most table completely processed ⇒ result complete.
                let t0 = order[0];
                offsets[t0] = pq.cards[t0];
                state[t0] = pq.cards[t0];
                finished = true;
            } else {
                // Tuples before the left-most cursor are fully expanded.
                let t0 = order[0];
                offsets[t0] = offsets[t0].max(state[t0]);
            }

            if cfg.policy == OrderPolicy::Uct {
                let r = reward(cfg.reward, &order, &before, &state, &pq.cards);
                tree.update(&order, r);
                // Knowledge capture: credit this slice's (clamped) reward
                // to the precedence direction each join edge ran under.
                let rc = r.clamp(0.0, 1.0);
                for (i, &t) in order.iter().enumerate() {
                    pos[t] = i;
                }
                for &(a, b) in &edge_pairs {
                    let key = if pos[a] < pos[b] { (a, b) } else { (b, a) };
                    let e = metrics.edge_rewards.entry(key).or_insert((0.0, 0));
                    e.0 += rc;
                    e.1 += 1;
                }
            }
            tracker.backup(&order, &state);
            *metrics.order_selections.entry(order).or_insert(0) += 1;

            if cfg.tree_sample_every > 0 && metrics.slices.is_multiple_of(cfg.tree_sample_every) {
                metrics.tree_growth.push((metrics.slices, tree.num_nodes()));
            }

            // LIMIT pushdown: enough distinct tuples exist — a complete
            // join result is no longer needed.
            if !finished {
                if let Some(target) = opts.target_rows {
                    if results.len() as u64 >= target {
                        stop = StopReason::RowTarget;
                        finished = true;
                    }
                }
            }

            // Memory budget, checked after the LIMIT test so a run that
            // reaches its row target in the same slice reports the
            // stronger outcome. Like cancellation, a trip leaves a valid
            // distinct prefix; one slice can overshoot the cap by at
            // most its own emissions, which the step budget bounds.
            if !finished {
                if let Some(cap) = opts.max_result_bytes {
                    if ResultSink::approx_bytes(&results) > cap {
                        stop = StopReason::MemoryExceeded;
                        finished = true;
                    }
                }
            }
        }

        metrics.join_time = join_start.elapsed();
        metrics.join_chunks = join.chunks_run();
        metrics.join_threads = cfg.threads.max(1);
        // Net out panic-driven replacements: a run that reaches this
        // point hosted no panicking morsel of its own (a panic would
        // have unwound past us), so any replacement spawns observed on
        // a shared pool were another query's and must not be billed
        // here. The metric remains approximate under concurrency — a
        // racing query's pool warm-up is indistinguishable from ours —
        // but is exact for a private pool and in steady state.
        metrics.thread_spawns = (join.pool_spawned() - spawns_before)
            .saturating_sub(join.pool_replaced() - replaced_before);
        metrics.uct_nodes = tree.num_nodes();
        metrics.uct_bytes = tree.approx_bytes();
        metrics.tracker_nodes = tracker.num_nodes();
        metrics.tracker_bytes = tracker.approx_bytes();
        metrics.result_tuples = results.len();
        metrics.result_bytes = results.approx_bytes(m);
        metrics.result_attempts = results.attempts;

        let final_order = match cfg.policy {
            OrderPolicy::Uct => tree.best_path(),
            OrderPolicy::Random => {
                // Most-selected order under random policy.
                metrics
                    .top_orders(1)
                    .first()
                    .map(|(o, _)| o.clone())
                    .unwrap_or_else(|| (0..m).collect())
            }
        };

        let learning = if opts.capture_learning {
            Some(LearnedState {
                snapshot: tree.snapshot(),
                best_order: final_order.clone(),
                planned_orders: plan_cache.keys().cloned().collect(),
            })
        } else {
            None
        };

        let result_count = results.len() as u64;
        SkinnerOutcome {
            tuples: results.into_flat(m),
            num_tables: m,
            result_count,
            final_order,
            stop,
            learning,
            metrics,
        }
    }
}

/// One join order's bound execution state: the plan-bound tier plus the
/// compiled tier when the shape supports it.
struct PlannedOrder<'a> {
    plan: OrderPlan<'a>,
    kernel: Option<CompiledKernel<'a>>,
}

impl PlannedOrder<'_> {
    /// Run one slice on the best available tier: full compiled kernel
    /// when it covers the whole order, compiled prefix + plan-bound
    /// suffix (split tier) when the order is longer than the kernel,
    /// plan-bound otherwise.
    fn run_slice<R: ResultSink>(
        &self,
        join: &mut MultiwayJoin<'_>,
        order: &[TableId],
        offsets: &[u32],
        state: &mut [u32],
        budget: u64,
        results: &mut R,
    ) -> (ContinueResult, u64) {
        match &self.kernel {
            Some(kernel) if kernel.num_tables() == order.len() => {
                join.continue_join_compiled(kernel, offsets, state, budget, results)
            }
            Some(kernel) => {
                join.continue_join_split(kernel, &self.plan, offsets, state, budget, results)
            }
            None => join.continue_join(order, &self.plan, offsets, state, budget, results),
        }
    }
}

/// Bind one join order for execution: the plan-bound tier always, the
/// compiled tier when codegen is on (counted into the metrics either
/// way). Every multi-table shape compiles — integer, float, fused
/// composite, and string/nullable keys; orders above the kernel arity
/// ceiling compile a prefix for the split tier — so `fallback_orders`
/// only counts the reserved escape hatch no current binder produces.
/// Single-table orders have no join loop to specialize and are not
/// counted as fallbacks.
fn bind_order<'p>(
    pq: &'p PreparedQuery,
    codegen: bool,
    kernel_cache: Option<&KernelCache>,
    order: &[TableId],
    metrics: &mut ExecMetrics,
) -> PlannedOrder<'p> {
    let plan = pq.plan_order(order);
    let kernel = (codegen && order.len() >= skinner_codegen::MIN_KERNEL_TABLES)
        .then(|| plan.compile_kernel(kernel_cache));
    match &kernel {
        Some(Some(_)) => metrics.codegen_orders += 1,
        Some(None) => metrics.fallback_orders += 1,
        None => {}
    }
    PlannedOrder {
        plan,
        kernel: kernel.flatten(),
    }
}

/// Is `order` a permutation of `0..m`? Guards plan pre-binding against
/// stale cached orders from a differently-shaped query.
fn is_permutation(order: &[TableId], m: usize) -> bool {
    if order.len() != m || m > 64 {
        return false;
    }
    let mut seen = 0u64;
    for &t in order {
        if t >= m || seen >> t & 1 == 1 {
            return false;
        }
        seen |= 1 << t;
    }
    true
}

fn random_order(space: &JoinOrderSpace, rng: &mut SmallRng) -> Vec<TableId> {
    let mut path = Vec::with_capacity(space.depth());
    while path.len() < space.depth() {
        let actions = space.actions(&path);
        path.push(actions[rng.gen_range(0..actions.len())]);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{Expr, QueryBuilder};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn fk_catalog(n: usize) -> Catalog {
        // chain of tables t0 ← t1 ← t2 ... joined on k, each with n rows
        let mut cat = Catalog::new();
        for t in 0..4 {
            cat.register(
                Table::new(
                    format!("t{t}"),
                    Schema::new([
                        ColumnDef::new("k", ValueType::Int),
                        ColumnDef::new("v", ValueType::Int),
                    ]),
                    vec![
                        Column::from_ints((0..n as i64).map(|i| i % 16).collect()),
                        Column::from_ints((0..n as i64).collect()),
                    ],
                )
                .unwrap(),
            );
        }
        cat
    }

    fn chain_query(cat: &Catalog, tables: usize) -> Query {
        let mut qb = QueryBuilder::new(cat);
        for t in 0..tables {
            qb.table(&format!("t{t}")).unwrap();
        }
        for t in 0..tables - 1 {
            let j = qb
                .col(&format!("t{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("t0.v").unwrap();
        qb.build().unwrap()
    }

    /// Ground truth via the simple nested-loop semantics of the multiway
    /// join run to completion under one order.
    fn ground_truth(q: &Query) -> u64 {
        let pq = PreparedQuery::new(q, true, 1);
        let order: Vec<usize> = (0..q.num_tables()).collect();
        let plan = pq.plan_order(&order);
        let mut join = MultiwayJoin::new(&pq);
        let offsets = vec![0u32; q.num_tables()];
        let mut state = offsets.clone();
        let mut rs = ResultSet::new();
        join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
        rs.len() as u64
    }

    #[test]
    fn skinner_c_produces_complete_result() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        assert!(expected > 0);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
        assert!(out.metrics.slices > 1, "should need multiple slices");
        assert_eq!(out.tuples.len() as u64, expected * 3);
    }

    #[test]
    fn random_policy_also_correct() {
        let cat = fk_catalog(48);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            policy: OrderPolicy::Random,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn no_indexes_still_correct() {
        let cat = fk_catalog(32);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 100,
            use_indexes: false,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn empty_result_handled() {
        let cat = fk_catalog(16);
        let mut qb = QueryBuilder::new(&cat);
        qb.table("t0").unwrap();
        qb.table("t1").unwrap();
        let j = qb.col("t0.k").unwrap().eq(qb.col("t1.k").unwrap());
        let f = qb.col("t0.v").unwrap().gt(Expr::lit(10_000));
        qb.filter(j);
        qb.filter(f);
        qb.select_col("t0.v").unwrap();
        let q = qb.build().unwrap();
        let out = SkinnerC::default().run(&q);
        assert_eq!(out.result_count, 0);
    }

    #[test]
    fn four_table_join_correct() {
        let cat = fk_catalog(24);
        let q = chain_query(&cat, 4);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 200,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
        // final order is a valid permutation
        let mut o = out.final_order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_join_phase_correct() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 4);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 200,
            threads: 4,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
        assert_eq!(out.metrics.join_threads, 4);
        // partitioned slices fan out to more kernel runs than slices
        assert!(
            out.metrics.join_chunks > out.metrics.slices,
            "chunks {} slices {}",
            out.metrics.join_chunks,
            out.metrics.slices
        );
    }

    #[test]
    fn pool_reuse_means_zero_spawns_after_warmup() {
        // The acceptance criterion for the persistent pool: after the
        // pool's one-time warm-up, a run executes thousands of
        // partitioned slices with zero OS thread spawns.
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 4);
        let pool = skinner_pool::WorkerPool::new(4);
        let run = |pool: &std::sync::Arc<skinner_pool::WorkerPool>| {
            SkinnerC::new(SkinnerCConfig {
                budget: 200,
                threads: 4,
                ..Default::default()
            })
            .run_with(
                &q,
                &RunOptions {
                    pool: Some(pool.clone()),
                    ..Default::default()
                },
            )
        };
        let warm = run(&pool);
        // The private pool spawned its 4 workers at construction, before
        // the first run — even run one sees zero per-slice spawns.
        assert_eq!(warm.metrics.thread_spawns, 0, "warm-up run spawned");
        let steady = run(&pool);
        assert!(steady.metrics.slices > 0);
        assert!(
            steady.metrics.join_chunks > steady.metrics.slices,
            "expected partitioned fan-out"
        );
        assert_eq!(
            steady.metrics.thread_spawns, 0,
            "steady-state run must reuse pooled workers"
        );
        assert_eq!(pool.spawned(), 4, "only the construction-time spawns");
    }

    #[test]
    fn parallel_matches_sequential_outcome() {
        let cat = fk_catalog(48);
        let q = chain_query(&cat, 3);
        let seq = SkinnerC::new(SkinnerCConfig {
            budget: 64,
            ..Default::default()
        })
        .run(&q);
        let par = SkinnerC::new(SkinnerCConfig {
            budget: 64,
            threads: 3,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(par.result_count, seq.result_count);
        let mut a: Vec<&[u32]> = seq.tuples.chunks_exact(3).collect();
        let mut b: Vec<&[u32]> = par.tuples.chunks_exact(3).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_populated() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 3);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 25,
            tree_sample_every: 1,
            ..Default::default()
        })
        .run(&q);
        let m = &out.metrics;
        assert!(m.slices > 0);
        assert!(m.steps > 0);
        assert!(m.uct_nodes > 0);
        assert!(m.tracker_nodes > 0);
        assert!(!m.tree_growth.is_empty());
        assert!(m.total_aux_bytes() > 0);
        assert!(m.top_k_share(100) > 0.99);
        assert_eq!(m.result_tuples as u64, out.result_count);
    }

    #[test]
    fn codegen_tier_runs_and_can_be_disabled() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 4);
        let expected = ground_truth(&q);
        let on = SkinnerC::new(SkinnerCConfig {
            budget: 100,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(on.result_count, expected);
        // Int FK chain within 2..=6 tables: every order compiles.
        assert!(on.metrics.codegen_orders > 0);
        assert_eq!(on.metrics.fallback_orders, 0);
        assert_eq!(on.metrics.codegen_slices, on.metrics.slices);

        let off = SkinnerC::new(SkinnerCConfig {
            budget: 100,
            codegen: false,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(off.result_count, expected);
        assert_eq!(off.metrics.codegen_orders, 0);
        assert_eq!(off.metrics.fallback_orders, 0);
        assert_eq!(off.metrics.codegen_slices, 0);
        // Same distinct tuples either way.
        let mut a: Vec<&[u32]> = on.tuples.chunks_exact(4).collect();
        let mut b: Vec<&[u32]> = off.tuples.chunks_exact(4).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn string_keyed_join_compiles_and_stays_correct() {
        // String join keys bind to `KeyCol::Other` and compile to the
        // KeyEq jump (content-hash posting cursors, re-verified): the
        // codegen tier carries every slice and the answer is unchanged.
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "s1",
                Schema::new([ColumnDef::new("k", ValueType::Str)]),
                vec![Column::from_strs(["a", "b", "c", "a"])],
            )
            .unwrap(),
        );
        cat.register(
            Table::new(
                "s2",
                Schema::new([ColumnDef::new("k", ValueType::Str)]),
                vec![Column::from_strs(["b", "a", "a"])],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table("s1").unwrap();
        qb.table("s2").unwrap();
        let j = qb.col("s1.k").unwrap().eq(qb.col("s2.k").unwrap());
        qb.filter(j);
        qb.select_col("s1.k").unwrap();
        let q = qb.build().unwrap();
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 16,
            ..Default::default()
        })
        .run(&q);
        // a⋈a: 2×2, b⋈b: 1×1.
        assert_eq!(out.result_count, 5);
        assert!(out.metrics.codegen_orders > 0, "string keys must compile");
        assert_eq!(out.metrics.fallback_orders, 0, "no fallback remains");
        assert_eq!(out.metrics.codegen_slices, out.metrics.slices);
    }

    #[test]
    fn seven_table_chain_splits_and_stays_correct() {
        // Arity above MAX_KERNEL_TABLES: the compiled 6-position prefix
        // drives the plan-bound suffix (split tier); counted as a
        // codegen order, not a fallback.
        let mut cat = Catalog::new();
        for t in 0..7 {
            cat.register(
                Table::new(
                    format!("c{t}"),
                    Schema::new([ColumnDef::new("k", ValueType::Int)]),
                    vec![Column::from_ints((0..6).map(|i| i % 3).collect())],
                )
                .unwrap(),
            );
        }
        let mut qb = QueryBuilder::new(&cat);
        for t in 0..7 {
            qb.table(&format!("c{t}")).unwrap();
        }
        for t in 0..6 {
            let j = qb
                .col(&format!("c{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("c{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("c0.k").unwrap();
        let q = qb.build().unwrap();
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 200,
            ..Default::default()
        })
        .run(&q);
        // Each key appears twice per table; 3 keys × 2^7 combinations.
        assert_eq!(out.result_count, 3 * 128);
        assert!(out.metrics.codegen_orders > 0, "prefix must compile");
        assert_eq!(out.metrics.fallback_orders, 0);
        assert_eq!(out.metrics.codegen_slices, out.metrics.slices);
    }

    #[test]
    fn seven_table_chain_split_agrees_with_plan_bound_partitioned() {
        // The split tier under partitioning, checked byte-for-byte
        // against the plan-bound tier on the same 7-table query, with a
        // budget small enough to force many suspend/resume cycles
        // through the split cursor contract.
        let mut cat = Catalog::new();
        for t in 0..7 {
            cat.register(
                Table::new(
                    format!("c{t}"),
                    Schema::new([ColumnDef::new("k", ValueType::Int)]),
                    vec![Column::from_ints((0..6).map(|i| i % 3).collect())],
                )
                .unwrap(),
            );
        }
        let mut qb = QueryBuilder::new(&cat);
        for t in 0..7 {
            qb.table(&format!("c{t}")).unwrap();
        }
        for t in 0..6 {
            let j = qb
                .col(&format!("c{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("c{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("c0.k").unwrap();
        let q = qb.build().unwrap();
        for threads in [1, 4] {
            let split = SkinnerC::new(SkinnerCConfig {
                budget: 64,
                threads,
                ..Default::default()
            })
            .run(&q);
            let plan_bound = SkinnerC::new(SkinnerCConfig {
                budget: 64,
                threads,
                codegen: false,
                ..Default::default()
            })
            .run(&q);
            assert_eq!(split.result_count, 3 * 128, "threads={threads}");
            assert_eq!(plan_bound.result_count, 3 * 128);
            let mut a: Vec<&[u32]> = split.tuples.chunks_exact(7).collect();
            let mut b: Vec<&[u32]> = plan_bound.tuples.chunks_exact(7).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads={threads}");
            assert_eq!(split.metrics.fallback_orders, 0);
        }
    }

    #[test]
    fn kernel_cache_hits_across_runs() {
        let cache = KernelCache::new();
        let cat = fk_catalog(32);
        let q = chain_query(&cat, 3);
        let opts = || RunOptions {
            kernel_cache: Some(&cache),
            ..Default::default()
        };
        let cfg = SkinnerCConfig {
            budget: 50,
            ..Default::default()
        };
        let first = SkinnerC::new(cfg).run_with(&q, &opts());
        let misses_after_first = cache.stats().misses;
        assert!(misses_after_first > 0, "first run must analyze shapes");
        let second = SkinnerC::new(cfg).run_with(&q, &opts());
        assert_eq!(first.result_count, second.result_count);
        let stats = cache.stats();
        assert_eq!(
            stats.misses, misses_after_first,
            "second run must not re-analyze"
        );
        assert!(stats.hits > 0);
    }

    #[test]
    fn row_target_stops_early_with_valid_prefix() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        assert!(expected > 10);
        let full = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run(&q);
        let limited = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run_with(
            &q,
            &RunOptions {
                target_rows: Some(10),
                ..Default::default()
            },
        );
        assert_eq!(limited.stop, StopReason::RowTarget);
        assert!(limited.result_count >= 10);
        assert!(limited.result_count < expected);
        assert!(limited.metrics.steps < full.metrics.steps);
        // Every produced tuple is a member of the full result.
        let all: std::collections::HashSet<&[u32]> = full.tuples.chunks_exact(3).collect();
        for t in limited.tuples.chunks_exact(3) {
            assert!(all.contains(t), "tuple {t:?} not in the full result");
        }
    }

    #[test]
    fn row_target_beyond_result_completes() {
        let cat = fk_catalog(32);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run_with(
            &q,
            &RunOptions {
                target_rows: Some(expected + 1_000),
                ..Default::default()
            },
        );
        assert_eq!(out.stop, StopReason::Completed);
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn memory_budget_stops_with_valid_prefix() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 3);
        let full = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run(&q);
        assert!(full.metrics.result_bytes > 64);
        // A cap far below the full arena must trip at a slice boundary.
        let capped = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run_with(
            &q,
            &RunOptions {
                max_result_bytes: Some(64),
                ..Default::default()
            },
        );
        assert_eq!(capped.stop, StopReason::MemoryExceeded);
        assert!(capped.result_count < full.result_count);
        // Every produced tuple is a member of the full result.
        let all: std::collections::HashSet<&[u32]> = full.tuples.chunks_exact(3).collect();
        for t in capped.tuples.chunks_exact(3) {
            assert!(all.contains(t), "tuple {t:?} not in the full result");
        }
        // A generous cap never fires.
        let roomy = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run_with(
            &q,
            &RunOptions {
                max_result_bytes: Some(full.metrics.result_bytes * 4 + (1 << 20)),
                ..Default::default()
            },
        );
        assert_eq!(roomy.stop, StopReason::Completed);
        assert_eq!(roomy.result_count, full.result_count);
    }

    #[test]
    fn cancel_flag_interrupts() {
        use std::sync::atomic::AtomicBool;
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 4);
        let cancel = AtomicBool::new(true); // pre-raised: stop before slice 1
        let out = SkinnerC::default().run_with(
            &q,
            &RunOptions {
                cancel: Some(&cancel),
                ..Default::default()
            },
        );
        assert_eq!(out.stop, StopReason::Cancelled);
        assert_eq!(out.metrics.slices, 0);
    }

    #[test]
    fn deadline_interrupts() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 4);
        let out = SkinnerC::default().run_with(
            &q,
            &RunOptions {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
                ..Default::default()
            },
        );
        assert_eq!(out.stop, StopReason::DeadlineExceeded);
    }

    /// A 3-table chain where join-order quality differs sharply: `wide`
    /// (4 rows) fans out 1024× into `mid` (4096 rows), while `sel`
    /// (256 rows) joins `mid` 1:1 — so sel-first orders cost ~10× fewer
    /// steps than wide-first ones. This is the shape where learned-order
    /// reuse pays.
    fn skewed_catalog() -> (Catalog, Query) {
        let n_mid = 4096i64;
        let n_sel = 256i64;
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "wide",
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints(vec![0, 1, 2, 3])],
            )
            .unwrap(),
        );
        cat.register(
            Table::new(
                "mid",
                Schema::new([
                    ColumnDef::new("ka", ValueType::Int),
                    ColumnDef::new("kb", ValueType::Int),
                ]),
                vec![
                    Column::from_ints((0..n_mid).map(|i| i % 4).collect()),
                    Column::from_ints((0..n_mid).collect()),
                ],
            )
            .unwrap(),
        );
        cat.register(
            Table::new(
                "sel",
                Schema::new([ColumnDef::new("k", ValueType::Int)]),
                vec![Column::from_ints((0..n_sel).collect())],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table("wide").unwrap();
        qb.table("mid").unwrap();
        qb.table("sel").unwrap();
        let j1 = qb.col("wide.k").unwrap().eq(qb.col("mid.ka").unwrap());
        let j2 = qb.col("mid.kb").unwrap().eq(qb.col("sel.k").unwrap());
        qb.filter(j1);
        qb.filter(j2);
        qb.select_col("mid.kb").unwrap();
        let q = qb.build().unwrap();
        (cat, q)
    }

    #[test]
    fn warm_start_resumes_learning_in_fewer_slices() {
        let (_cat, q) = skewed_catalog();
        let expected = ground_truth(&q);
        assert_eq!(expected, 256);
        let cfg = SkinnerCConfig {
            budget: 200,
            ..Default::default()
        };
        let cold = SkinnerC::new(cfg).run_with(
            &q,
            &RunOptions {
                capture_learning: true,
                ..Default::default()
            },
        );
        assert_eq!(cold.result_count, expected);
        let learned = cold.learning.expect("learning captured");
        assert!(learned.snapshot.num_nodes() > 1);
        assert!(!learned.planned_orders.is_empty());
        assert_eq!(learned.best_order, cold.final_order);

        let warm = SkinnerC::new(cfg).run_with(
            &q,
            &RunOptions {
                prior: Some(&learned.snapshot),
                planned_orders: &learned.planned_orders,
                capture_learning: true,
                ..Default::default()
            },
        );
        assert_eq!(warm.result_count, expected, "warm result differs");
        assert_eq!(warm.metrics.warm_start_nodes, learned.snapshot.num_nodes());
        assert!(
            warm.metrics.slices < cold.metrics.slices,
            "warm start should converge in fewer slices (warm {} vs cold {})",
            warm.metrics.slices,
            cold.metrics.slices
        );
        // Learning keeps accumulating across executions.
        let relearned = warm.learning.expect("learning captured");
        assert!(relearned.snapshot.rounds() > learned.snapshot.rounds());
    }

    #[test]
    fn prior_seeded_run_matches_cold_and_converges_faster() {
        use skinner_uct::{ArmPriors, PriorEntry};
        let (_cat, q) = skewed_catalog();
        let expected = ground_truth(&q);
        let cfg = SkinnerCConfig {
            budget: 200,
            ..Default::default()
        };
        let cold = SkinnerC::new(cfg).run(&q);
        assert_eq!(cold.result_count, expected);
        // Cold runs carry the observations the knowledge store learns
        // from: per-table cardinalities and directed edge rewards.
        assert_eq!(cold.metrics.table_cards.len(), 3);
        assert!(cold
            .metrics
            .table_cards
            .iter()
            .all(|&(f, b)| f <= b && b > 0));
        assert!(!cold.metrics.edge_rewards.is_empty());
        // Each slice credits one direction of each of the 2 join edges.
        let total: u64 = cold.metrics.edge_rewards.values().map(|&(_, n)| n).sum();
        assert_eq!(total, 2 * cold.metrics.slices);

        // Knowledge-style priors: sel (id 2) first is the good order.
        let priors = ArmPriors {
            entries: vec![
                PriorEntry {
                    prefix: vec![2],
                    estimate: 0.9,
                },
                PriorEntry {
                    prefix: vec![1],
                    estimate: 0.1,
                },
                PriorEntry {
                    prefix: vec![0],
                    estimate: 0.05,
                },
            ],
            weight: 16,
        };
        let seeded = SkinnerC::new(cfg).run_with(
            &q,
            &RunOptions {
                arm_priors: Some(&priors),
                ..Default::default()
            },
        );
        assert_eq!(seeded.result_count, expected, "seeded result differs");
        assert!(seeded.metrics.prior_seeded_nodes > 0);
        assert_eq!(seeded.metrics.warm_start_nodes, 0);
        // Identical tuples modulo row order: priors shift exploration
        // order only, they never change what the join produces.
        let mut a: Vec<&[u32]> = cold.tuples.chunks_exact(1).collect();
        let mut b: Vec<&[u32]> = seeded.tuples.chunks_exact(1).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(
            seeded.metrics.slices < cold.metrics.slices,
            "priors should converge in fewer slices (seeded {} vs cold {})",
            seeded.metrics.slices,
            cold.metrics.slices
        );

        // An exact-template snapshot beats coarse priors when both are
        // offered; the run counts as a warm start, not a seeded one.
        let cap = SkinnerC::new(cfg).run_with(
            &q,
            &RunOptions {
                capture_learning: true,
                ..Default::default()
            },
        );
        let learned = cap.learning.expect("learning captured");
        let both = SkinnerC::new(cfg).run_with(
            &q,
            &RunOptions {
                prior: Some(&learned.snapshot),
                arm_priors: Some(&priors),
                ..Default::default()
            },
        );
        assert_eq!(both.result_count, expected);
        assert!(both.metrics.warm_start_nodes > 0);
        assert_eq!(both.metrics.prior_seeded_nodes, 0);
    }

    #[test]
    fn bogus_planned_orders_are_skipped() {
        let cat = fk_catalog(32);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        // Stale orders from a different template: wrong arity, out-of-
        // range ids, duplicates. None may panic or corrupt the run.
        let stale = vec![vec![0usize, 1], vec![0, 1, 7], vec![0, 0, 1], vec![2, 1, 0]];
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run_with(
            &q,
            &RunOptions {
                planned_orders: &stale,
                ..Default::default()
            },
        );
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn single_table_query() {
        let cat = fk_catalog(16);
        let mut qb = QueryBuilder::new(&cat);
        qb.table("t0").unwrap();
        let f = qb.col("t0.v").unwrap().lt(Expr::lit(5));
        qb.filter(f);
        qb.select_col("t0.v").unwrap();
        let q = qb.build().unwrap();
        let out = SkinnerC::default().run(&q);
        assert_eq!(out.result_count, 5);
    }
}
