//! Skinner-C main loop (Algorithm 3).
//!
//! ```text
//! while not finished:
//!     j ← UctChoice(T)
//!     s ← RestoreState(j, o, S); s_prior ← s
//!     finished ← ContinueJoin(q, j, o, b, s, R)
//!     RewardUpdate(T, j, Reward(s − s_prior, j))
//!     ⟨o, S⟩ ← BackupState(j, s, o, S)
//! ```
//!
//! Join orders are chosen by UCT with a very small exploration weight
//! (`w = 1e-6`; the fine-grained reward makes exploitation safe), or —
//! for the Table 5 ablation — uniformly at random.

use crate::metrics::ExecMetrics;
use crate::multiway::{ContinueResult, MultiwayJoin, ResultSet};
use crate::prepare::{OrderPlan, PreparedQuery};
use crate::progress::ProgressTracker;
use crate::reward::{reward, RewardKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use skinner_query::{Query, TableId};
use skinner_storage::{FxHashMap, RowId};
use skinner_uct::{JoinOrderSpace, SearchSpace, UctConfig, UctTree};
use std::time::Instant;

/// Join-order selection policy (Table 5 compares Original=UCT against
/// Random).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// UCT learning (the SkinnerDB default).
    #[default]
    Uct,
    /// Uniform random valid order each slice (ablation baseline).
    Random,
}

/// Configuration of the Skinner-C engine.
#[derive(Debug, Clone, Copy)]
pub struct SkinnerCConfig {
    /// Step budget `b` per time slice (paper default: 500 outer-loop
    /// iterations, i.e. thousands of join-order switches per second).
    /// With parallel join workers the budget is divided across the
    /// slice's offset chunks, so a slice examines roughly `budget`
    /// tuples regardless of the worker count — larger budgets amortize
    /// the per-slice thread-spawn cost and are recommended when
    /// `threads > 1`.
    pub budget: u64,
    /// UCT exploration weight `w` (paper: 1e-6 for Skinner-C, whose
    /// fine-grained progress reward needs little forced exploration).
    pub exploration: f64,
    /// Reward function mapping per-slice cursor progress to the `[0, 1]`
    /// signal UCT expects (see [`RewardKind`]).
    pub reward: RewardKind,
    /// Build hash indexes on equi-join columns during pre-processing
    /// (Table 6 ablation).
    pub use_indexes: bool,
    /// Worker threads, used twice: one filter thread per table during
    /// pre-processing (Table 2, as in the paper's implementation), and —
    /// beyond the paper, whose join phase is single-threaded — offset-
    /// range-partitioned execution of every join slice (see
    /// [`crate::partition`]). `1` reproduces the paper's sequential join
    /// phase exactly.
    pub threads: usize,
    /// Order selection policy (UCT, or uniform random for the Table 5
    /// ablation).
    pub policy: OrderPolicy,
    /// RNG seed (UCT tie-breaking / random policy).
    pub seed: u64,
    /// Sample the UCT tree size every this many slices (Fig. 7a);
    /// 0 disables sampling.
    pub tree_sample_every: u64,
}

impl Default for SkinnerCConfig {
    fn default() -> Self {
        SkinnerCConfig {
            budget: 500,
            exploration: 1e-6,
            reward: RewardKind::ScaledDeltas,
            use_indexes: true,
            threads: 1,
            policy: OrderPolicy::Uct,
            seed: 0x5EED,
            tree_sample_every: 64,
        }
    }
}

/// Result of a Skinner-C join phase.
#[derive(Debug)]
pub struct SkinnerOutcome {
    /// Distinct result tuples, flat row-major (stride = num tables, slots
    /// in FROM order; values are base row ids).
    pub tuples: Vec<RowId>,
    /// Number of query tables (stride).
    pub num_tables: usize,
    /// Distinct result count.
    pub result_count: u64,
    /// The most-visited join order at termination (replayed in other
    /// engines for Tables 3/4).
    pub final_order: Vec<TableId>,
    /// Execution metrics.
    pub metrics: ExecMetrics,
}

/// The Skinner-C engine: regret-bounded evaluation of one SPJ query.
pub struct SkinnerC {
    config: SkinnerCConfig,
}

impl Default for SkinnerC {
    fn default() -> Self {
        SkinnerC::new(SkinnerCConfig::default())
    }
}

impl SkinnerC {
    /// Engine with the given configuration.
    pub fn new(config: SkinnerCConfig) -> SkinnerC {
        SkinnerC { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SkinnerCConfig {
        &self.config
    }

    /// Execute the join phase of `query` (pre-processing included;
    /// post-processing is the caller's job — see `skinner-core`).
    ///
    /// # Examples
    ///
    /// ```
    /// use skinner_engine::{SkinnerC, SkinnerCConfig};
    /// use skinner_query::QueryBuilder;
    /// use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};
    ///
    /// let mut cat = Catalog::new();
    /// cat.register(Table::new(
    ///     "a",
    ///     Schema::new([ColumnDef::new("id", ValueType::Int)]),
    ///     vec![Column::from_ints(vec![1, 2, 3])],
    /// ).unwrap());
    /// cat.register(Table::new(
    ///     "b",
    ///     Schema::new([ColumnDef::new("a_id", ValueType::Int)]),
    ///     vec![Column::from_ints(vec![1, 1, 3])],
    /// ).unwrap());
    ///
    /// let mut qb = QueryBuilder::new(&cat);
    /// qb.table("a").unwrap();
    /// qb.table("b").unwrap();
    /// let join = qb.col("a.id").unwrap().eq(qb.col("b.a_id").unwrap());
    /// qb.filter(join);
    /// qb.select_col("a.id").unwrap();
    /// let query = qb.build().unwrap();
    ///
    /// // Paper defaults (sequential join phase). `threads: 4` would
    /// // additionally partition every join slice across 4 workers.
    /// let out = SkinnerC::new(SkinnerCConfig::default()).run(&query);
    /// assert_eq!(out.result_count, 3);
    /// assert_eq!(out.num_tables, 2);
    /// ```
    pub fn run(&self, query: &Query) -> SkinnerOutcome {
        let cfg = &self.config;
        let m = query.num_tables();
        let pq = PreparedQuery::new(query, cfg.use_indexes, cfg.threads);
        let mut metrics = ExecMetrics {
            preprocess_time: pq.preprocess_time,
            index_bytes: pq.index_bytes(),
            ..Default::default()
        };

        if pq.any_empty() || m == 0 {
            return SkinnerOutcome {
                tuples: Vec::new(),
                num_tables: m,
                result_count: 0,
                final_order: (0..m).collect(),
                metrics,
            };
        }

        let join_start = Instant::now();
        let space = JoinOrderSpace::new(query);
        let mut tree = UctTree::new(
            space.clone(),
            UctConfig {
                exploration: cfg.exploration,
                seed: cfg.seed,
            },
        );
        let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x9e3779b97f4a7c15);
        let mut tracker = ProgressTracker::new(m);
        let mut offsets = vec![0u32; m];
        let mut results = ResultSet::new();
        let mut join = MultiwayJoin::with_threads(&pq, cfg.threads);
        let mut plan_cache: FxHashMap<Vec<TableId>, OrderPlan<'_>> = FxHashMap::default();

        // Scratch cursors owned by the run loop, reused across slices.
        let mut state = vec![0u32; m];
        let mut before = vec![0u32; m];

        // A budget below the walk-down depth could live-lock (the re-walk
        // repeats without advancing); clamp well above it.
        let budget = cfg.budget.max(4 * m as u64);

        let mut finished = false;
        while !finished {
            metrics.slices += 1;
            let order = match cfg.policy {
                OrderPolicy::Uct => tree.choose(),
                OrderPolicy::Random => random_order(&space, &mut rng),
            };
            // Look up by slice first: cloning the order `Vec` only on the
            // first sighting, not on the thousands of cache hits.
            if !plan_cache.contains_key(order.as_slice()) {
                plan_cache.insert(order.clone(), pq.plan_order(&order));
            }
            let plan = &plan_cache[order.as_slice()];

            tracker.restore_into(&order, &offsets, &mut state);
            before.copy_from_slice(&state);

            let (res, steps) =
                join.continue_join(&order, plan, &offsets, &mut state, budget, &mut results);
            metrics.steps += steps;

            if res == ContinueResult::Exhausted {
                // Left-most table completely processed ⇒ result complete.
                let t0 = order[0];
                offsets[t0] = pq.cards[t0];
                state[t0] = pq.cards[t0];
                finished = true;
            } else {
                // Tuples before the left-most cursor are fully expanded.
                let t0 = order[0];
                offsets[t0] = offsets[t0].max(state[t0]);
            }

            if cfg.policy == OrderPolicy::Uct {
                let r = reward(cfg.reward, &order, &before, &state, &pq.cards);
                tree.update(&order, r);
            }
            tracker.backup(&order, &state);
            *metrics.order_selections.entry(order).or_insert(0) += 1;

            if cfg.tree_sample_every > 0 && metrics.slices.is_multiple_of(cfg.tree_sample_every) {
                metrics.tree_growth.push((metrics.slices, tree.num_nodes()));
            }
        }

        metrics.join_time = join_start.elapsed();
        metrics.join_chunks = join.chunks_run();
        metrics.join_threads = cfg.threads.max(1);
        metrics.uct_nodes = tree.num_nodes();
        metrics.uct_bytes = tree.approx_bytes();
        metrics.tracker_nodes = tracker.num_nodes();
        metrics.tracker_bytes = tracker.approx_bytes();
        metrics.result_tuples = results.len();
        metrics.result_bytes = results.approx_bytes(m);
        metrics.result_attempts = results.attempts;

        let final_order = match cfg.policy {
            OrderPolicy::Uct => tree.best_path(),
            OrderPolicy::Random => {
                // Most-selected order under random policy.
                metrics
                    .top_orders(1)
                    .first()
                    .map(|(o, _)| o.clone())
                    .unwrap_or_else(|| (0..m).collect())
            }
        };

        let result_count = results.len() as u64;
        SkinnerOutcome {
            tuples: results.into_flat(m),
            num_tables: m,
            result_count,
            final_order,
            metrics,
        }
    }
}

fn random_order(space: &JoinOrderSpace, rng: &mut SmallRng) -> Vec<TableId> {
    let mut path = Vec::with_capacity(space.depth());
    while path.len() < space.depth() {
        let actions = space.actions(&path);
        path.push(actions[rng.gen_range(0..actions.len())]);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use skinner_query::{Expr, QueryBuilder};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn fk_catalog(n: usize) -> Catalog {
        // chain of tables t0 ← t1 ← t2 ... joined on k, each with n rows
        let mut cat = Catalog::new();
        for t in 0..4 {
            cat.register(
                Table::new(
                    format!("t{t}"),
                    Schema::new([
                        ColumnDef::new("k", ValueType::Int),
                        ColumnDef::new("v", ValueType::Int),
                    ]),
                    vec![
                        Column::from_ints((0..n as i64).map(|i| i % 16).collect()),
                        Column::from_ints((0..n as i64).collect()),
                    ],
                )
                .unwrap(),
            );
        }
        cat
    }

    fn chain_query(cat: &Catalog, tables: usize) -> Query {
        let mut qb = QueryBuilder::new(cat);
        for t in 0..tables {
            qb.table(&format!("t{t}")).unwrap();
        }
        for t in 0..tables - 1 {
            let j = qb
                .col(&format!("t{t}.k"))
                .unwrap()
                .eq(qb.col(&format!("t{}.k", t + 1)).unwrap());
            qb.filter(j);
        }
        qb.select_col("t0.v").unwrap();
        qb.build().unwrap()
    }

    /// Ground truth via the simple nested-loop semantics of the multiway
    /// join run to completion under one order.
    fn ground_truth(q: &Query) -> u64 {
        let pq = PreparedQuery::new(q, true, 1);
        let order: Vec<usize> = (0..q.num_tables()).collect();
        let plan = pq.plan_order(&order);
        let mut join = MultiwayJoin::new(&pq);
        let offsets = vec![0u32; q.num_tables()];
        let mut state = offsets.clone();
        let mut rs = ResultSet::new();
        join.continue_join(&order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
        rs.len() as u64
    }

    #[test]
    fn skinner_c_produces_complete_result() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        assert!(expected > 0);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
        assert!(out.metrics.slices > 1, "should need multiple slices");
        assert_eq!(out.tuples.len() as u64, expected * 3);
    }

    #[test]
    fn random_policy_also_correct() {
        let cat = fk_catalog(48);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 50,
            policy: OrderPolicy::Random,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn no_indexes_still_correct() {
        let cat = fk_catalog(32);
        let q = chain_query(&cat, 3);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 100,
            use_indexes: false,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
    }

    #[test]
    fn empty_result_handled() {
        let cat = fk_catalog(16);
        let mut qb = QueryBuilder::new(&cat);
        qb.table("t0").unwrap();
        qb.table("t1").unwrap();
        let j = qb.col("t0.k").unwrap().eq(qb.col("t1.k").unwrap());
        let f = qb.col("t0.v").unwrap().gt(Expr::lit(10_000));
        qb.filter(j);
        qb.filter(f);
        qb.select_col("t0.v").unwrap();
        let q = qb.build().unwrap();
        let out = SkinnerC::default().run(&q);
        assert_eq!(out.result_count, 0);
    }

    #[test]
    fn four_table_join_correct() {
        let cat = fk_catalog(24);
        let q = chain_query(&cat, 4);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 200,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
        // final order is a valid permutation
        let mut o = out.final_order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_join_phase_correct() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 4);
        let expected = ground_truth(&q);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 200,
            threads: 4,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(out.result_count, expected);
        assert_eq!(out.metrics.join_threads, 4);
        // partitioned slices fan out to more kernel runs than slices
        assert!(
            out.metrics.join_chunks > out.metrics.slices,
            "chunks {} slices {}",
            out.metrics.join_chunks,
            out.metrics.slices
        );
    }

    #[test]
    fn parallel_matches_sequential_outcome() {
        let cat = fk_catalog(48);
        let q = chain_query(&cat, 3);
        let seq = SkinnerC::new(SkinnerCConfig {
            budget: 64,
            ..Default::default()
        })
        .run(&q);
        let par = SkinnerC::new(SkinnerCConfig {
            budget: 64,
            threads: 3,
            ..Default::default()
        })
        .run(&q);
        assert_eq!(par.result_count, seq.result_count);
        let mut a: Vec<&[u32]> = seq.tuples.chunks_exact(3).collect();
        let mut b: Vec<&[u32]> = par.tuples.chunks_exact(3).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn metrics_populated() {
        let cat = fk_catalog(64);
        let q = chain_query(&cat, 3);
        let out = SkinnerC::new(SkinnerCConfig {
            budget: 25,
            tree_sample_every: 1,
            ..Default::default()
        })
        .run(&q);
        let m = &out.metrics;
        assert!(m.slices > 0);
        assert!(m.steps > 0);
        assert!(m.uct_nodes > 0);
        assert!(m.tracker_nodes > 0);
        assert!(!m.tree_growth.is_empty());
        assert!(m.total_aux_bytes() > 0);
        assert!(m.top_k_share(100) > 0.99);
        assert_eq!(m.result_tuples as u64, out.result_count);
    }

    #[test]
    fn single_table_query() {
        let cat = fk_catalog(16);
        let mut qb = QueryBuilder::new(&cat);
        qb.table("t0").unwrap();
        let f = qb.col("t0.v").unwrap().lt(Expr::lit(5));
        qb.filter(f);
        qb.select_col("t0.v").unwrap();
        let q = qb.build().unwrap();
        let out = SkinnerC::default().run(&q);
        assert_eq!(out.result_count, 5);
    }
}
