//! Progress tracking and sharing across join orders (paper §4.5).
//!
//! # Cursor semantics
//!
//! The execution state of a join order is a *cursor*: one filtered-table
//! position per table, read in join-order sequence. The multi-way join
//! enumerates tuple combinations in lexicographic cursor order, so
//! "everything strictly lex-below the cursor has been fully expanded into
//! result tuples" is an invariant the tracker can rely on.
//!
//! Progress is shared through two mechanisms, both from the paper:
//!
//! * **Offsets** — `offset[t]` tuples of table `t` are *fully joined*:
//!   every result tuple containing them was emitted. All join orders skip
//!   below-offset positions everywhere. Offsets advance whenever a slice
//!   moves the left-most table's cursor (tuple-granularity sharing).
//! * **Prefix fast-forward** — a trie over join-order prefixes stores, at
//!   each prefix node, the lexicographically maximal cursor projection
//!   ever backed up through that node. Restoring an order walks its
//!   prefix path and may adopt `(prefix cursor, offsets...)` — resuming
//!   from the most advanced sibling rather than from scratch. Re-emission
//!   at the adoption boundary is possible and harmless: the result set
//!   dedups tuple-index vectors (Theorem 5.3's argument).

use skinner_query::TableId;
use skinner_storage::FxHashMap;

/// Sentinel for absent child in the trie.
const NO_NODE: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    children: FxHashMap<TableId, usize>,
    /// Lex-max cursor projection for this prefix (length = node depth).
    cursor: Vec<u32>,
}

/// Trie over join-order prefixes storing shared progress.
#[derive(Debug)]
pub struct ProgressTracker {
    nodes: Vec<Node>,
    num_tables: usize,
}

impl ProgressTracker {
    /// Tracker for an `m`-table query.
    pub fn new(num_tables: usize) -> ProgressTracker {
        ProgressTracker {
            nodes: vec![Node {
                children: FxHashMap::default(),
                cursor: Vec::new(),
            }],
            num_tables,
        }
    }

    /// Number of trie nodes (Figure 8b).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint in bytes (Figure 8d).
    pub fn approx_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.cursor.len() * 4
                    + n.children.len() * (std::mem::size_of::<(TableId, usize)>() + 8)
            })
            .sum()
    }

    /// Back up the state of `order` (cursor indexed **by table id**).
    ///
    /// Every prefix node along the order's path raises its stored cursor
    /// to the lex-max of itself and this state's projection.
    pub fn backup(&mut self, order: &[TableId], state_by_table: &[u32]) {
        let mut node = 0usize;
        let mut proj: Vec<u32> = Vec::with_capacity(order.len());
        for &t in order {
            proj.push(state_by_table[t]);
            let next = self.nodes[node]
                .children
                .get(&t)
                .copied()
                .unwrap_or(NO_NODE);
            let next = if next == NO_NODE {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    children: FxHashMap::default(),
                    cursor: proj.clone(),
                });
                self.nodes[node].children.insert(t, id);
                id
            } else {
                if lex_less(&self.nodes[next].cursor, &proj) {
                    self.nodes[next].cursor.clear();
                    self.nodes[next].cursor.extend_from_slice(&proj);
                }
                next
            };
            node = next;
        }
    }

    /// Restore the most advanced safe state for `order`, given the
    /// current global `offsets` (indexed by table id). Returns a cursor
    /// indexed by table id; positions of tables not in any shared prefix
    /// start at their offsets.
    pub fn restore(&self, order: &[TableId], offsets: &[u32]) -> Vec<u32> {
        let mut out = vec![0u32; self.num_tables];
        self.restore_into(order, offsets, &mut out);
        out
    }

    /// [`restore`](ProgressTracker::restore) into a caller-owned buffer,
    /// so the per-slice driver loop reuses one scratch cursor instead of
    /// allocating a fresh `Vec` every slice.
    pub fn restore_into(&self, order: &[TableId], offsets: &[u32], out: &mut [u32]) {
        let m = self.num_tables;
        debug_assert_eq!(order.len(), m);
        debug_assert_eq!(out.len(), m);
        // Order-position scratch on the stack (queries are capped at 64
        // tables by the `TableSet` bitset), keeping the per-slice restore
        // allocation-free.
        assert!(m <= 64, "more tables than TableSet supports");
        let mut best_buf = [0u32; 64];
        let mut candidate_buf = [0u32; 64];
        // Baseline: fresh start at the offsets.
        let best = &mut best_buf[..m];
        for (b, &t) in best.iter_mut().zip(order) {
            *b = offsets[t];
        }

        // Walk the trie along the order's path; every visited node's
        // cursor yields a candidate (cursor prefix clamped to offsets,
        // offsets below). Deeper candidates dominate shallower ones only
        // sometimes, so compare them all lexicographically.
        let mut node = 0usize;
        let candidate = &mut candidate_buf[..m];
        candidate.copy_from_slice(best);
        for (depth, &t) in order.iter().enumerate() {
            match self.nodes[node].children.get(&t) {
                Some(&next) => {
                    let cursor = &self.nodes[next].cursor;
                    // candidate = cursor, except: once an offset overtakes
                    // a cursor coordinate, that coordinate rises to the
                    // offset and everything deeper resets to offsets
                    // (below-offset tuples are globally complete, but the
                    // raised coordinate's own combinations are not — they
                    // must be rescanned from the floors).
                    let mut clamped = false;
                    for (i, &ot) in order.iter().enumerate() {
                        candidate[i] = if i > depth || clamped {
                            offsets[ot]
                        } else if offsets[ot] > cursor[i] {
                            clamped = true;
                            offsets[ot]
                        } else {
                            cursor[i]
                        };
                    }
                    if lex_less(best, candidate) {
                        best.copy_from_slice(candidate);
                    }
                    node = next;
                }
                None => break,
            }
        }

        // Re-index by table.
        for (i, &t) in order.iter().enumerate() {
            out[t] = best[i];
        }
    }
}

/// Is `a` lexicographically strictly less than `b`? Shorter prefixes are
/// compared on their common length, ties broken toward the longer vector.
fn lex_less(a: &[u32], b: &[u32]) -> bool {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_without_backup_is_offsets() {
        let tr = ProgressTracker::new(3);
        let s = tr.restore(&[0, 1, 2], &[5, 6, 7]);
        assert_eq!(s, vec![5, 6, 7]);
        let s = tr.restore(&[2, 0, 1], &[5, 6, 7]);
        assert_eq!(s, vec![5, 6, 7]);
    }

    #[test]
    fn exact_roundtrip() {
        let mut tr = ProgressTracker::new(3);
        tr.backup(&[0, 1, 2], &[4, 9, 2]);
        let s = tr.restore(&[0, 1, 2], &[0, 0, 0]);
        assert_eq!(s, vec![4, 9, 2]);
    }

    #[test]
    fn prefix_sharing_fast_forwards_sibling() {
        let mut tr = ProgressTracker::new(3);
        // Order A = [0,1,2] got far: cursor by table = [7, 3, 5]
        tr.backup(&[0, 1, 2], &[7, 3, 5]);
        // Order B = [0,1,2]'s sibling [0,2,1] shares prefix [0]:
        // adopt position 7 for table 0, offsets elsewhere.
        let s = tr.restore(&[0, 2, 1], &[0, 0, 0]);
        assert_eq!(s[0], 7);
        assert_eq!(s[1], 0);
        assert_eq!(s[2], 0);
    }

    #[test]
    fn deeper_shared_prefix_wins() {
        let mut tr = ProgressTracker::new(3);
        tr.backup(&[0, 1, 2], &[7, 3, 5]);
        // same first two tables, different last → shares prefix [0,1]
        let s = tr.restore(&[0, 1, 2], &[0, 0, 0]);
        assert_eq!(s, vec![7, 3, 5]);
    }

    #[test]
    fn offsets_clamp_restored_state() {
        let mut tr = ProgressTracker::new(2);
        tr.backup(&[0, 1], &[2, 4]);
        // offset for table 0 advanced past the stored cursor
        let s = tr.restore(&[0, 1], &[6, 0]);
        assert!(s[0] >= 6, "below-offset tuples are globally complete");
    }

    #[test]
    fn lex_max_kept_across_backups() {
        let mut tr = ProgressTracker::new(2);
        tr.backup(&[0, 1], &[3, 9]);
        tr.backup(&[0, 1], &[3, 2]); // behind: must not regress
        let s = tr.restore(&[0, 1], &[0, 0]);
        assert_eq!(s, vec![3, 9]);
        tr.backup(&[0, 1], &[4, 0]); // ahead on first coordinate
        let s = tr.restore(&[0, 1], &[0, 0]);
        assert_eq!(s, vec![4, 0]);
    }

    #[test]
    fn unrelated_orders_do_not_interfere() {
        let mut tr = ProgressTracker::new(3);
        tr.backup(&[1, 0, 2], &[8, 8, 8]);
        // order starting with table 2 shares no prefix
        let s = tr.restore(&[2, 1, 0], &[1, 1, 1]);
        assert_eq!(s, vec![1, 1, 1]);
    }

    #[test]
    fn node_count_grows_with_prefixes() {
        let mut tr = ProgressTracker::new(3);
        assert_eq!(tr.num_nodes(), 1);
        tr.backup(&[0, 1, 2], &[1, 1, 1]);
        assert_eq!(tr.num_nodes(), 4); // root + 3 path nodes
        tr.backup(&[0, 2, 1], &[1, 1, 1]);
        assert_eq!(tr.num_nodes(), 6); // shares the [0] node
        assert!(tr.approx_bytes() > 0);
    }

    #[test]
    fn lex_less_prefix_rule() {
        assert!(lex_less(&[1, 2], &[1, 2, 0]));
        assert!(!lex_less(&[1, 2, 0], &[1, 2]));
        assert!(lex_less(&[1, 2], &[1, 3]));
        assert!(!lex_less(&[2], &[1, 9]));
    }
}
