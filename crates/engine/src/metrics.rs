//! Execution metrics collected by Skinner-C.
//!
//! These feed the paper's analysis figures: search-tree growth over time
//! (Fig. 7a), the share of slices spent in the top-k join orders
//! (Fig. 7b), and the memory footprint of the auxiliary data structures
//! (Fig. 8).

use skinner_query::TableId;
use skinner_storage::FxHashMap;
use std::time::Duration;

/// Metrics for one Skinner-C query execution.
#[derive(Debug, Default, Clone)]
pub struct ExecMetrics {
    /// Number of time slices executed.
    pub slices: u64,
    /// Total multi-way-join steps across slices (summed over all workers
    /// when the join phase runs partitioned — the tuples-examined
    /// analogue of the paper's per-slice accounting).
    pub steps: u64,
    /// Join-kernel invocations: one per sequential slice, one per offset
    /// chunk of a partitioned slice. `join_chunks == slices` means the
    /// whole join ran single-threaded; the excess is parallel fan-out.
    pub join_chunks: u64,
    /// Configured join worker threads (1 = sequential, as in the paper).
    pub join_threads: usize,
    /// OS threads spawned by the worker pool during this run, net of
    /// panic-driven worker replacements (which a run that completes
    /// normally never caused — its own panic would have aborted it).
    /// The pool is persistent, so after its one-time warm-up this is 0
    /// for every run — partitioned slices reuse pooled workers instead
    /// of spawning per slice; non-zero means pool warm-up (first
    /// parallel run on that pool). On a pool shared across concurrent
    /// queries the attribution is approximate: a racing query's
    /// warm-up spawns land in whichever run's delta observes them.
    /// Exact for a private pool and in steady state.
    pub thread_spawns: u64,
    /// UCT nodes adopted from a prior execution's snapshot at run start
    /// (0 = cold start; see `RunOptions::prior`).
    pub warm_start_nodes: usize,
    /// UCT nodes materialized from cross-query knowledge priors at run
    /// start (see `RunOptions::arm_priors`). Mutually exclusive with
    /// `warm_start_nodes`: an exact-template snapshot always wins over
    /// coarse priors, so at most one of the two is non-zero.
    pub prior_seeded_nodes: usize,
    /// Per-table `(filtered_rows, base_rows)` observed after
    /// pre-processing, indexed by `TableId` — the selectivity
    /// observations the knowledge store learns from.
    pub table_cards: Vec<(u64, u64)>,
    /// Directed join-edge reward statistics: for every equi-joined table
    /// pair `(a, b)` of the query, the slices whose chosen order placed
    /// `a` before `b` accumulate `(reward_sum, count)` under key
    /// `(a, b)` (and vice versa under `(b, a)`), so the knowledge store
    /// can compare the two precedence directions of each edge.
    pub edge_rewards: FxHashMap<(TableId, TableId), (f64, u64)>,
    /// Join orders compiled to the codegen tier (specialized kernels),
    /// including orders above the kernel arity ceiling whose compiled
    /// prefix drives the plan-bound suffix (the split tier).
    pub codegen_orders: usize,
    /// Join orders that fell back to the plan-bound kernel because no
    /// compiled kernel exists for their shape. Every multi-table jump
    /// shape now compiles (integer, float, fused composite, and
    /// string/nullable keys; long orders split), so this stays 0 unless
    /// a plan produces the reserved escape-hatch jump kind. Only
    /// counted when the codegen tier is enabled.
    pub fallback_orders: usize,
    /// Slices executed on a compiled kernel (the rest ran plan-bound).
    pub codegen_slices: u64,
    /// Wall time in pre-processing.
    pub preprocess_time: Duration,
    /// Wall time in the join phase.
    pub join_time: Duration,
    /// Wall time in post-processing (set by the caller).
    pub postprocess_time: Duration,
    /// Selection count per join order (Fig. 7b).
    pub order_selections: FxHashMap<Vec<TableId>, u64>,
    /// (slice index, UCT node count) samples (Fig. 7a).
    pub tree_growth: Vec<(u64, usize)>,
    /// Final UCT tree node count (Fig. 8a).
    pub uct_nodes: usize,
    /// Final UCT tree bytes.
    pub uct_bytes: usize,
    /// Progress-trie node count (Fig. 8b).
    pub tracker_nodes: usize,
    /// Progress-trie bytes.
    pub tracker_bytes: usize,
    /// Distinct result tuples (Fig. 8c).
    pub result_tuples: usize,
    /// Result-set bytes.
    pub result_bytes: usize,
    /// Hash-index bytes.
    pub index_bytes: usize,
    /// Result-tuple insert attempts (duplicates included).
    pub result_attempts: u64,
}

impl ExecMetrics {
    /// Total bytes of auxiliary structures (Fig. 8d).
    pub fn total_aux_bytes(&self) -> usize {
        self.uct_bytes + self.tracker_bytes + self.result_bytes + self.index_bytes
    }

    /// The `k` most-selected join orders with their selection share.
    pub fn top_orders(&self, k: usize) -> Vec<(Vec<TableId>, f64)> {
        let total: u64 = self.order_selections.values().sum();
        let mut entries: Vec<(Vec<TableId>, u64)> = self
            .order_selections
            .iter()
            .map(|(o, &c)| (o.clone(), c))
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
            .into_iter()
            .take(k)
            .map(|(o, c)| (o, c as f64 / total.max(1) as f64))
            .collect()
    }

    /// Cumulative selection share of the top-k orders (Fig. 7b's y-axis).
    pub fn top_k_share(&self, k: usize) -> f64 {
        self.top_orders(k).iter().map(|(_, s)| s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_orders_ranking() {
        let mut m = ExecMetrics::default();
        m.order_selections.insert(vec![0, 1], 70);
        m.order_selections.insert(vec![1, 0], 20);
        m.order_selections.insert(vec![0, 2], 10);
        let top = m.top_orders(2);
        assert_eq!(top[0].0, vec![0, 1]);
        assert!((top[0].1 - 0.7).abs() < 1e-9);
        assert!((m.top_k_share(2) - 0.9).abs() < 1e-9);
        assert!((m.top_k_share(10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = ExecMetrics::default();
        assert_eq!(m.top_k_share(3), 0.0);
        assert_eq!(m.total_aux_bytes(), 0);
    }
}
