//! # skinner-engine
//!
//! Skinner-C: the customized execution engine of the SkinnerDB paper
//! (§4.5, Algorithms 2 and 3).
//!
//! A traditional engine executes one optimizer-chosen join order as a
//! pipeline of binary joins. Skinner-C instead runs the query in thousands
//! of tiny time slices, each executing a possibly different left-deep join
//! order chosen by UCT, and merges the result tuples. Making that cheap
//! requires three properties the paper calls out:
//!
//! 1. **Minimal switch overhead** — execution state is one tuple index per
//!    base table, so backup/restore copies a tiny vector.
//! 2. **No lost progress** — a depth-first *multi-way* join
//!    ([`multiway`]) keeps at most one in-flight intermediate tuple, so
//!    interrupting at any point loses nothing.
//! 3. **Progress sharing** — per-table offsets exclude fully-processed
//!    tuples for *every* order, and a progress trie ([`progress`])
//!    fast-forwards orders that share a prefix with a more advanced order.
//!
//! The main entry point is [`SkinnerC`], Algorithm 3: choose order via
//! UCT → restore state → run the multi-way join for a fixed step budget →
//! compute a progress-based reward → update UCT → back up state.
//!
//! Each chosen order executes on one of **three tiers** (see
//! `ARCHITECTURE.md`): the generic reference kernel (differential
//! oracle), the plan-bound kernel ([`OrderPlan`](prepare::OrderPlan):
//! typed slices, direct index references), or — for supported shapes —
//! a compiled kernel from [`skinner_codegen`] (const-generic arity,
//! posting-list cursors, elided index-implied predicates). Tier
//! selection is per order with automatic fallback; all tiers produce
//! byte-for-byte identical results.
//!
//! Beyond the paper's implementation, the join phase can run each slice
//! across multiple workers by offset-range partitioning of the
//! left-most table ([`partition`]): the remaining driver range splits
//! into disjoint chunk morsels executed on a persistent work-stealing
//! [`WorkerPool`] (no threads are spawned per slice), and the per-chunk
//! cursors fold back into one slice cursor, so the learned-order
//! semantics — and the regret analysis — are unchanged by the worker
//! count, the pool size, and the steal order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failpoints;
pub mod metrics;
pub mod multiway;
pub mod partition;
pub mod prepare;
pub mod progress;
pub mod reward;
pub mod skinner_c;

pub use metrics::ExecMetrics;
pub use multiway::{ContinueResult, LimitSink, MultiwayJoin, ResultSink};
pub use partition::PartitionSpec;
pub use prepare::PreparedQuery;
// The codegen tier's public surface, re-exported for drivers that
// compile kernels or share a cross-query kernel cache.
pub use progress::ProgressTracker;
pub use reward::RewardKind;
pub use skinner_c::{
    LearnedState, OrderPolicy, RunOptions, SkinnerC, SkinnerCConfig, SkinnerOutcome, StopReason,
};
pub use skinner_codegen::{
    CompiledKernel, JumpKind, KernelCache, KernelCacheStats, KernelClass, KernelJump, KernelKey,
    KernelPosition, DEFAULT_KERNEL_CACHE_CAPACITY,
};
// The persistent morsel pool and its schedule-perturbation test layer,
// re-exported so drivers and test harnesses need no direct dependency.
pub use skinner_pool::{schedule, WorkerPool};
