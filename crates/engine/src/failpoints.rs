//! # Fault-injection points
//!
//! A tiny failpoint registry used by the robustness test suites to
//! inject deterministic faults — panics, I/O errors, cancellations —
//! at named sites inside the engine and the service layer.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** A site check is one `Relaxed` atomic load
//!    when no failpoint has ever been armed (the common case: every
//!    production process and every test that doesn't inject faults).
//!    Sites sit at slice boundaries and I/O calls, never in per-tuple
//!    loops, so even the armed path (one mutex lock) is negligible.
//! 2. **Deterministic.** A failpoint fires after a configured number of
//!    hits (`@skip`) and a configured number of times (`*times`), so a
//!    test can say "panic on the third slice" and get exactly that.
//! 3. **Scopeable.** The registry is process-global, which would let a
//!    failpoint armed by one test leak into a concurrently running test
//!    in the same binary. Tests that share a process either serialize
//!    behind a mutex or arm with [`config_for_current_thread`], which
//!    only fires on the arming thread.
//!
//! ## Spec grammar
//!
//! `kind[@skip][*times]` where `kind` is `panic`, `err`, or `cancel`;
//! `@skip` passes through the first *skip* hits; `*times` fires at most
//! *times* times (default 1). Examples: `panic` (panic on first hit),
//! `cancel@3` (cancel on the 4th hit), `err*2` (I/O error on the first
//! two hits).
//!
//! The environment variable `SKINNER_FAILPOINTS` arms sites at process
//! start: `site=spec;site=spec`, e.g.
//! `SKINNER_FAILPOINTS="engine.slice=panic@2;persist.write=err*3"`.
//!
//! ## Known sites
//!
//! | site | layer | effect |
//! |------|-------|--------|
//! | `engine.slice` | slice loop top | `panic` aborts the query mid-run; `cancel` stops it as if the client cancelled |
//! | `partition.chunk` | parallel chunk worker | `panic` inside a scoped worker thread |
//! | `budget.acquire` | service admission | `panic` while the budget lock is held (poisons it) |
//! | `persist.write` / `persist.fsync` / `persist.rename` / `persist.read` | cache persistence I/O | `err` surfaces as `std::io::Error`, `panic` aborts mid-write |
//! | `net.read` / `net.write` | wire-protocol framing (`skinner-net`) | `err` surfaces as a transport failure; the connection unwinds, the server survives |

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::thread::ThreadId;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic with a message naming the site.
    Panic,
    /// Report an injected `std::io::Error` (for I/O sites).
    IoError,
    /// Behave as if the operation was cancelled (for sites that
    /// understand cooperative cancellation).
    Cancel,
}

#[derive(Debug, Clone)]
struct Site {
    fault: Fault,
    /// Hits to pass through before firing.
    skip: u64,
    /// Remaining fires; the site disarms at 0.
    remaining: u64,
    /// Hits observed so far.
    hits: u64,
    /// When set, only hits from this thread count or fire.
    thread: Option<ThreadId>,
}

/// `true` the moment any site is armed; cleared when the registry
/// empties. The only cost a disarmed process pays.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("SKINNER_FAILPOINTS") {
            for part in spec.split(';') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                match part.split_once('=') {
                    Some((site, spec)) => match parse_spec(spec) {
                        Some(s) => {
                            map.insert(site.trim().to_string(), s);
                        }
                        None => eprintln!("skinner: ignoring bad failpoint spec {part:?}"),
                    },
                    None => eprintln!("skinner: ignoring bad failpoint entry {part:?}"),
                }
            }
        }
        if !map.is_empty() {
            ACTIVE.store(true, Ordering::Relaxed);
        }
        Mutex::new(map)
    })
}

fn parse_spec(spec: &str) -> Option<Site> {
    let spec = spec.trim();
    let (head, times) = match spec.split_once('*') {
        Some((h, t)) => (h, t.parse().ok()?),
        None => (spec, 1u64),
    };
    let (kind, skip) = match head.split_once('@') {
        Some((k, s)) => (k, s.parse().ok()?),
        None => (head, 0u64),
    };
    let fault = match kind.trim() {
        "panic" => Fault::Panic,
        "err" => Fault::IoError,
        "cancel" => Fault::Cancel,
        _ => return None,
    };
    Some(Site {
        fault,
        skip,
        remaining: times,
        hits: 0,
        thread: None,
    })
}

fn lock() -> std::sync::MutexGuard<'static, HashMap<String, Site>> {
    // A panic injected while the registry lock is held (it never is,
    // but belt and braces) must not wedge every later site check.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

fn insert(site: &str, spec: &str, thread: Option<ThreadId>) {
    let mut parsed =
        parse_spec(spec).unwrap_or_else(|| panic!("bad failpoint spec {spec:?} for site {site:?}"));
    parsed.thread = thread;
    lock().insert(site.to_string(), parsed);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Arm `site` with `spec` (see module docs for the grammar) for all
/// threads. Panics on a malformed spec — failpoints are test plumbing,
/// and a typo should fail loudly.
pub fn config(site: &str, spec: &str) {
    insert(site, spec, None);
}

/// Arm `site` with `spec`, firing only for hits from the calling
/// thread. Lets a test inject faults into code running on its own
/// thread without perturbing concurrently running tests in the same
/// process.
pub fn config_for_current_thread(site: &str, spec: &str) {
    insert(site, spec, Some(std::thread::current().id()));
}

/// Disarm `site` (no-op if not armed).
pub fn clear(site: &str) {
    let mut map = lock();
    map.remove(site);
    if map.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

/// Disarm every site.
pub fn reset() {
    let mut map = lock();
    map.clear();
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Record a hit at `site` and return the fault to inject, if any.
///
/// This is the primitive the named sites call; sites that only make
/// sense for one fault kind ignore the others. Costs one relaxed
/// atomic load when nothing is armed.
pub fn check(site: &str) -> Option<Fault> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let mut map = lock();
    let s = map.get_mut(site)?;
    if let Some(t) = s.thread {
        if t != std::thread::current().id() {
            return None;
        }
    }
    s.hits += 1;
    if s.hits <= s.skip || s.remaining == 0 {
        return None;
    }
    s.remaining -= 1;
    let fault = s.fault;
    if s.remaining == 0 {
        map.remove(site);
        if map.is_empty() {
            ACTIVE.store(false, Ordering::Relaxed);
        }
    }
    Some(fault)
}

/// Site helper for plain code paths: panics if a `panic` fault fires
/// at `site`; other fault kinds are ignored.
pub fn fire(site: &str) {
    if check(site) == Some(Fault::Panic) {
        panic!("injected failpoint panic at {site}");
    }
}

/// Site helper for I/O paths: returns an injected error if an `err`
/// fault fires, panics on a `panic` fault, and otherwise succeeds.
pub fn io_check(site: &str) -> std::io::Result<()> {
    match check(site) {
        Some(Fault::IoError) => Err(std::io::Error::other(format!(
            "injected failpoint I/O error at {site}"
        ))),
        Some(Fault::Panic) => panic!("injected failpoint panic at {site}"),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The registry is process-global; serialize these tests.
    static GATE: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disarmed_site_is_silent() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        assert_eq!(check("nope"), None);
        fire("nope");
        io_check("nope").unwrap();
    }

    #[test]
    fn skip_and_times_are_honored() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        config("t.site", "cancel@2*2");
        assert_eq!(check("t.site"), None);
        assert_eq!(check("t.site"), None);
        assert_eq!(check("t.site"), Some(Fault::Cancel));
        assert_eq!(check("t.site"), Some(Fault::Cancel));
        // Exhausted and auto-disarmed.
        assert_eq!(check("t.site"), None);
        reset();
    }

    #[test]
    fn io_error_and_panic_helpers() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        config("t.io", "err");
        assert!(io_check("t.io").is_err());
        assert!(io_check("t.io").is_ok(), "err*1 must disarm after firing");

        config("t.panic", "panic");
        let r = std::panic::catch_unwind(|| fire("t.panic"));
        assert!(r.is_err(), "panic failpoint must panic");
        reset();
    }

    #[test]
    fn thread_scoped_arm_only_fires_locally() {
        let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        config_for_current_thread("t.local", "cancel*100");
        let other = std::thread::spawn(|| check("t.local"));
        assert_eq!(other.join().unwrap(), None, "foreign thread must not fire");
        assert_eq!(check("t.local"), Some(Fault::Cancel));
        reset();
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(parse_spec("explode").is_none());
        assert!(parse_spec("panic@x").is_none());
        assert!(parse_spec("err*").is_none());
        assert!(parse_spec("panic@1*3").is_some());
    }
}
