//! Depth-first multi-way join with O(1) intermediate state (Algorithm 2).
//!
//! The engine fixes one tuple per predecessor table before considering
//! tuples of the successor table — a depth-first search over tuple
//! combinations (Figure 5 of the paper). The *only* execution state is the
//! cursor: one filtered-table position per table. Each slice resumes by
//! walking down from position 0, re-verifying the restored coordinates'
//! predicates (O(m) work), then continues the lexicographic scan.
//!
//! With hash indexes available, tuple advances *jump* to the next position
//! whose key matches the applicable equality predicate (via
//! [`HashIndex::next_ge`](skinner_storage::HashIndex::next_ge)) instead of
//! incrementing by one — the §4.5 extension for equality predicates.

use crate::prepare::{OrderPlan, PreparedQuery};
use skinner_query::TableId;
use skinner_storage::{FxHashSet, RowId};

/// Why a slice ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContinueResult {
    /// The left-most table's tuples are exhausted: the join (under this
    /// order, with current offsets) is complete.
    Exhausted,
    /// The step budget ran out mid-search; state holds the cursor.
    BudgetSpent,
}

/// Deduplicating result set over tuple-index vectors (paper: "we add
/// tuple index vectors into a result set, avoiding duplicate entries").
#[derive(Debug, Default)]
pub struct ResultSet {
    set: FxHashSet<Box<[RowId]>>,
    /// Total insert attempts (including duplicates from order switches).
    pub attempts: u64,
}

impl ResultSet {
    /// Empty set.
    pub fn new() -> ResultSet {
        ResultSet::default()
    }

    /// Insert a tuple (base row ids in FROM order); false if duplicate.
    pub fn insert(&mut self, tuple: &[RowId]) -> bool {
        self.attempts += 1;
        self.set.insert(tuple.into())
    }

    /// Number of distinct result tuples.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True if no results.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterate distinct tuples (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &[RowId]> {
        self.set.iter().map(|b| b.as_ref())
    }

    /// Drain into a flat row-major vector with the given stride.
    pub fn into_flat(self, stride: usize) -> Vec<RowId> {
        let mut out = Vec::with_capacity(self.set.len() * stride);
        for t in &self.set {
            out.extend_from_slice(t);
        }
        out
    }

    /// Approximate heap footprint in bytes (Figure 8c).
    pub fn approx_bytes(&self, stride: usize) -> usize {
        self.set.len() * (stride * 4 + std::mem::size_of::<Box<[RowId]>>() + 8)
    }
}

/// One multi-way join executor bound to a prepared query.
pub struct MultiwayJoin<'a> {
    pq: &'a PreparedQuery,
}

impl<'a> MultiwayJoin<'a> {
    /// Bind to a prepared query.
    pub fn new(pq: &'a PreparedQuery) -> MultiwayJoin<'a> {
        MultiwayJoin { pq }
    }

    /// Execute `order` from cursor `state` (indexed by table id, filtered
    /// positions) for at most `budget` outer-loop steps. `offsets` are the
    /// global per-table floors. Result tuples are inserted into `results`.
    ///
    /// Returns the slice outcome and the number of steps consumed.
    pub fn continue_join(
        &self,
        order: &[TableId],
        plan: &OrderPlan,
        offsets: &[u32],
        state: &mut [u32],
        budget: u64,
        results: &mut ResultSet,
    ) -> (ContinueResult, u64) {
        let pq = self.pq;
        let m = order.len();
        let cards = &pq.cards;
        let tables = &pq.tables;
        let preds = &pq.join_preds;

        // Current base rows per table (slots beyond depth are stale but
        // never read: predicates at position i only touch order[0..=i]).
        let mut rows: Vec<RowId> = vec![0; m];

        let mut i = 0usize;
        let mut steps: u64 = 0;

        // Immediate exhaustion (restored past the end).
        if state[order[0]] >= cards[order[0]] {
            return (ContinueResult::Exhausted, 0);
        }

        loop {
            steps += 1;
            if steps > budget {
                return (ContinueResult::BudgetSpent, steps - 1);
            }
            let t = order[i];
            if state[t] >= cards[t] {
                // Restored coordinate beyond the end: backtrack.
                match self.next_tuple(order, plan, offsets, state, &mut i, &rows, true) {
                    true => continue,
                    false => return (ContinueResult::Exhausted, steps),
                }
            }
            rows[t] = pq.base_row(t, state[t]);
            let ok = plan.positions[i]
                .applicable
                .iter()
                .all(|&pi| preds[pi].eval(&rows, tables));
            if ok {
                if i + 1 == m {
                    results.insert(&rows);
                    if !self.next_tuple(order, plan, offsets, state, &mut i, &rows, false)
                    {
                        return (ContinueResult::Exhausted, steps);
                    }
                } else {
                    i += 1;
                }
            } else if !self.next_tuple(order, plan, offsets, state, &mut i, &rows, false) {
                return (ContinueResult::Exhausted, steps);
            }
        }
    }

    /// Advance the cursor at position `i` (with index jumps where
    /// available), backtracking on exhaustion. Returns false when the
    /// left-most table is exhausted (join complete). `skip_advance` is
    /// used when the current coordinate is already past the end.
    #[allow(clippy::too_many_arguments)]
    fn next_tuple(
        &self,
        order: &[TableId],
        plan: &OrderPlan,
        offsets: &[u32],
        state: &mut [u32],
        i: &mut usize,
        rows: &[RowId],
        mut skip_advance: bool,
    ) -> bool {
        let pq = self.pq;
        loop {
            let t = order[*i];
            if !skip_advance || state[t] < pq.cards[t] {
                state[t] = match &plan.positions[*i].jump {
                    Some(jump) if !skip_advance => {
                        // Jump to the next position matching the equality
                        // key of the current predecessor tuple.
                        let key = pq.tables[jump.src_table]
                            .column(jump.src_col)
                            .join_key(rows[jump.src_table] as usize);
                        match key {
                            Some(k) => pq.indexes[&(t, jump.index_col)]
                                .next_ge(k, state[t] + 1)
                                .unwrap_or(pq.cards[t]),
                            None => pq.cards[t],
                        }
                    }
                    _ => state[t].saturating_add(1),
                };
            }
            skip_advance = false;
            if state[t] < pq.cards[t] {
                return true;
            }
            if *i == 0 {
                return false;
            }
            state[t] = offsets[t];
            *i -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare::PreparedQuery;
    use skinner_query::{Expr, Query, QueryBuilder};
    use skinner_storage::{Catalog, Column, ColumnDef, Schema, Table, ValueType};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "a",
                Schema::new([
                    ColumnDef::new("id", ValueType::Int),
                    ColumnDef::new("v", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(vec![1, 2, 3, 4]),
                    Column::from_ints(vec![10, 20, 30, 40]),
                ],
            )
            .unwrap(),
        );
        cat.register(
            Table::new(
                "b",
                Schema::new([
                    ColumnDef::new("a_id", ValueType::Int),
                    ColumnDef::new("w", ValueType::Int),
                ]),
                vec![
                    Column::from_ints(vec![1, 1, 3, 5]),
                    Column::from_ints(vec![7, 8, 9, 6]),
                ],
            )
            .unwrap(),
        );
        cat.register(
            Table::new(
                "c",
                Schema::new([ColumnDef::new("w", ValueType::Int)]),
                vec![Column::from_ints(vec![7, 9, 9])],
            )
            .unwrap(),
        );
        cat
    }

    fn three_way(cat: &Catalog) -> Query {
        let mut qb = QueryBuilder::new(cat);
        qb.table("a").unwrap();
        qb.table("b").unwrap();
        qb.table("c").unwrap();
        let j1 = qb.col("a.id").unwrap().eq(qb.col("b.a_id").unwrap());
        let j2 = qb.col("b.w").unwrap().eq(qb.col("c.w").unwrap());
        qb.filter(j1);
        qb.filter(j2);
        qb.select_col("a.v").unwrap();
        qb.build().unwrap()
    }

    /// Run one order to completion in a single giant slice.
    fn run_order(q: &Query, order: &[usize], indexes: bool) -> Vec<Vec<u32>> {
        let pq = PreparedQuery::new(q, indexes, 1);
        let plan = pq.plan_order(order);
        let join = MultiwayJoin::new(&pq);
        let offsets = vec![0u32; pq.num_tables()];
        let mut state = offsets.clone();
        let mut rs = ResultSet::new();
        let (res, _) =
            join.continue_join(order, &plan, &offsets, &mut state, u64::MAX, &mut rs);
        assert_eq!(res, ContinueResult::Exhausted);
        let mut out: Vec<Vec<u32>> = rs.iter().map(|t| t.to_vec()).collect();
        out.sort();
        out
    }

    #[test]
    fn all_orders_same_result() {
        let cat = catalog();
        let q = three_way(&cat);
        let expected = run_order(&q, &[0, 1, 2], true);
        assert_eq!(expected.len(), 3);
        for order in [
            vec![0usize, 1, 2],
            vec![1, 0, 2],
            vec![1, 2, 0],
            vec![2, 1, 0],
        ] {
            assert_eq!(run_order(&q, &order, true), expected, "order {order:?}");
            assert_eq!(run_order(&q, &order, false), expected, "no-index {order:?}");
        }
    }

    #[test]
    fn matches_expected_tuples() {
        let cat = catalog();
        let q = three_way(&cat);
        let got = run_order(&q, &[0, 1, 2], true);
        // (a.id=1, b row0 w=7, c row0), (a.id=3, b row2 w=9, c rows 1,2)
        let expected = vec![vec![0u32, 0, 0], vec![2, 2, 1], vec![2, 2, 2]];
        assert_eq!(got, expected);
    }

    #[test]
    fn slicing_preserves_results() {
        let cat = catalog();
        let q = three_way(&cat);
        let expected = run_order(&q, &[0, 1, 2], true);
        // run the same order in 1-step slices with state persistence
        let pq = PreparedQuery::new(&q, true, 1);
        let plan = pq.plan_order(&[0, 1, 2]);
        let join = MultiwayJoin::new(&pq);
        let offsets = vec![0u32; 3];
        let mut state = vec![0u32; 3];
        let mut rs = ResultSet::new();
        let mut slices = 0;
        loop {
            slices += 1;
            assert!(slices < 10_000, "no termination");
            let (res, steps) =
                join.continue_join(&[0, 1, 2], &plan, &offsets, &mut state, 3, &mut rs);
            assert!(steps <= 3);
            if res == ContinueResult::Exhausted {
                break;
            }
        }
        let mut got: Vec<Vec<u32>> = rs.iter().map(|t| t.to_vec()).collect();
        got.sort();
        assert_eq!(got, expected);
        assert!(slices > 1, "test should actually slice");
    }

    #[test]
    fn switching_orders_with_offsets_preserves_results() {
        let cat = catalog();
        let q = three_way(&cat);
        let expected = run_order(&q, &[0, 1, 2], true);
        let pq = PreparedQuery::new(&q, true, 1);
        let join = MultiwayJoin::new(&pq);
        let orders: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![1, 2, 0], vec![2, 1, 0]];
        let plans: Vec<_> = orders.iter().map(|o| pq.plan_order(o)).collect();
        let tracker = &mut crate::progress::ProgressTracker::new(3);
        let mut offsets = vec![0u32; 3];
        let mut rs = ResultSet::new();
        let mut done = false;
        let mut round = 0usize;
        while !done {
            round += 1;
            assert!(round < 100_000, "no termination");
            let which = round % orders.len();
            let order = &orders[which];
            let mut state = tracker.restore(order, &offsets);
            let (res, _) =
                join.continue_join(order, &plans[which], &offsets, &mut state, 5, &mut rs);
            // offset advance for the left-most table
            let t0 = order[0];
            if res == ContinueResult::Exhausted {
                offsets[t0] = pq.cards[t0];
                done = true;
            } else {
                offsets[t0] = offsets[t0].max(state[t0]);
                tracker.backup(order, &state);
            }
        }
        let mut got: Vec<Vec<u32>> = rs.iter().map(|t| t.to_vec()).collect();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn unary_only_single_table() {
        let mut cat = Catalog::new();
        cat.register(
            Table::new(
                "t",
                Schema::new([ColumnDef::new("x", ValueType::Int)]),
                vec![Column::from_ints(vec![1, 5, 9, 5])],
            )
            .unwrap(),
        );
        let mut qb = QueryBuilder::new(&cat);
        qb.table("t").unwrap();
        let f = qb.col("t.x").unwrap().eq(Expr::lit(5));
        qb.filter(f);
        qb.select_col("t.x").unwrap();
        let q = qb.build().unwrap();
        let got = run_order(&q, &[0], true);
        assert_eq!(got, vec![vec![1u32], vec![3u32]]);
    }

    #[test]
    fn offsets_exclude_tuples() {
        let cat = catalog();
        let q = three_way(&cat);
        let pq = PreparedQuery::new(&q, true, 1);
        let plan = pq.plan_order(&[0, 1, 2]);
        let join = MultiwayJoin::new(&pq);
        // offset past a.id=1 (filtered position 0) excludes its result
        let offsets = vec![1u32, 0, 0];
        let mut state = vec![1u32, 0, 0];
        let mut rs = ResultSet::new();
        let (res, _) =
            join.continue_join(&[0, 1, 2], &plan, &offsets, &mut state, u64::MAX, &mut rs);
        assert_eq!(res, ContinueResult::Exhausted);
        assert_eq!(rs.len(), 2); // only the a.id=3 tuples
    }

    #[test]
    fn result_set_dedups_across_orders() {
        let mut rs = ResultSet::new();
        assert!(rs.insert(&[1, 2, 3]));
        assert!(!rs.insert(&[1, 2, 3]));
        assert!(rs.insert(&[1, 2, 4]));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.attempts, 3);
        let flat = rs.into_flat(3);
        assert_eq!(flat.len(), 6);
    }
}
